"""Additional hypothesis properties: join cuts, reverse enumeration, constraints.

These complement ``test_property_based.py`` with the invariants introduced by
the plan-space pieces: every cut position of the index join, the reverse
index DFS, and the equivalence between predicate-constrained evaluation and
evaluation on the explicitly filtered graph.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.constraints import PredicateConstraint
from repro.core.engine import IdxDfs, PathEnum
from repro.core.index import LightWeightIndex
from repro.core.join import run_idx_join
from repro.core.listener import ResultCollector, RunConfig
from repro.core.query import Query
from repro.core.reverse import IdxDfsReverse
from repro.graph.builder import GraphBuilder

from tests.helpers import brute_force_paths

MAX_VERTICES = 10

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graph_and_query(draw):
    num_vertices = draw(st.integers(min_value=2, max_value=MAX_VERTICES))
    possible_edges = [
        (u, v) for u in range(num_vertices) for v in range(num_vertices) if u != v
    ]
    edges = draw(
        st.lists(st.sampled_from(possible_edges), min_size=1, max_size=40, unique=True)
    )
    builder = GraphBuilder()
    for v in range(num_vertices):
        builder.add_vertex(v)
    for u, v in edges:
        builder.add_edge(u, v, weight=float((u * 7 + v * 3) % 5) + 0.5)
    graph = builder.build()
    source = draw(st.integers(min_value=0, max_value=num_vertices - 1))
    target = draw(
        st.integers(min_value=0, max_value=num_vertices - 1).filter(lambda v: v != source)
    )
    k = draw(st.integers(min_value=2, max_value=5))
    return graph, Query(source, target, k)


@given(case=graph_and_query())
@_SETTINGS
def test_every_cut_position_yields_the_same_results(case):
    graph, query = case
    expected = brute_force_paths(graph, query.source, query.target, query.k)
    index = LightWeightIndex.build(graph, query)
    for cut in range(1, query.k):
        collector = ResultCollector()
        run_idx_join(index, cut, collector)
        assert set(collector.paths) == expected, cut


@given(case=graph_and_query())
@_SETTINGS
def test_reverse_enumeration_matches_forward(case):
    graph, query = case
    forward = IdxDfs().run(graph, query)
    backward = IdxDfsReverse().run(graph, query)
    assert set(forward.paths) == set(backward.paths)


@given(case=graph_and_query(), threshold=st.sampled_from([1.0, 2.5, 4.0]))
@_SETTINGS
def test_predicate_constraint_equals_filtered_graph(case, threshold):
    """Constrained evaluation == plain evaluation on the materialised subgraph."""
    graph, query = case
    constraint = PredicateConstraint(lambda u, v, w, lbl: w >= threshold, graph)
    constrained = PathEnum().run(graph, query, RunConfig(constraint=constraint))

    filtered = graph.filter_edges(lambda u, v, w, lbl: w >= threshold)
    expected = brute_force_paths(filtered, query.source, query.target, query.k)
    assert set(constrained.paths) == expected
