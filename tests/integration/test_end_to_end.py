"""End-to-end scenarios mirroring the paper's motivating applications."""

from __future__ import annotations

import pytest

from repro.core.constraints import (
    AccumulativeConstraint,
    AutomatonConstraint,
    PredicateConstraint,
    SequenceAutomaton,
)
from repro.core.engine import PathEnum, enumerate_paths
from repro.core.listener import RunConfig
from repro.core.query import Query
from repro.graph.builder import GraphBuilder
from repro.graph.dynamic import DynamicGraph


@pytest.fixture()
def transaction_graph():
    """A toy bank-transaction graph: accounts as vertices, transfers as edges.

    Edge weights are risk scores; labels are transfer channels.
    """
    builder = GraphBuilder()
    transfers = [
        ("source_acct", "mule_1", 0.9, "wire"),
        ("source_acct", "shop", 0.1, "card"),
        ("mule_1", "mule_2", 0.8, "wire"),
        ("mule_2", "dest_acct", 0.9, "wire"),
        ("mule_1", "dest_acct", 0.7, "crypto"),
        ("shop", "dest_acct", 0.1, "card"),
        ("dest_acct", "source_acct", 0.2, "refund"),
        ("shop", "mule_2", 0.3, "card"),
    ]
    for src, dst, risk, channel in transfers:
        builder.add_edge(src, dst, weight=risk, label=channel)
    return builder.build()


class TestMoneyLaunderingScenario:
    """Application 1: short high-risk flows between two target accounts."""

    def test_all_short_flows_are_found(self, transaction_graph):
        paths = enumerate_paths(
            transaction_graph, "source_acct", "dest_acct", k=3, external_ids=True
        )
        assert ("source_acct", "mule_1", "dest_acct") in paths
        assert ("source_acct", "mule_1", "mule_2", "dest_acct") in paths
        assert ("source_acct", "shop", "dest_acct") in paths

    def test_risk_threshold_filters_benign_flows(self, transaction_graph):
        query = Query.from_external(transaction_graph, "source_acct", "dest_acct", 3)
        constraint = AccumulativeConstraint(
            transaction_graph, accept=lambda total_risk: total_risk >= 1.5
        )
        result = PathEnum().run(transaction_graph, query, RunConfig(constraint=constraint))
        named = {transaction_graph.translate_path(p) for p in result.paths}
        assert ("source_acct", "shop", "dest_acct") not in named
        assert ("source_acct", "mule_1", "mule_2", "dest_acct") in named

    def test_channel_predicate(self, transaction_graph):
        query = Query.from_external(transaction_graph, "source_acct", "dest_acct", 3)
        constraint = PredicateConstraint(
            lambda u, v, weight, label: label == "wire", transaction_graph
        )
        result = PathEnum().run(transaction_graph, query, RunConfig(constraint=constraint))
        named = {transaction_graph.translate_path(p) for p in result.paths}
        assert named == {("source_acct", "mule_1", "mule_2", "dest_acct")}


class TestFraudCycleScenario:
    """Application 2: cycles triggered by a new edge in a dynamic transaction graph."""

    def test_new_edge_triggers_cycle_query(self, transaction_graph):
        dynamic = DynamicGraph.from_graph(transaction_graph)
        # A new refund edge closes cycles through dest_acct -> mule_1.
        dynamic.add_edge("dest_acct", "mule_1", weight=0.5, label="refund")
        snapshot = dynamic.snapshot()
        # Cycles of length <= 4 through the new edge (v, v') are the paths
        # q(v', v, k - 1) = q(mule_1, dest_acct, 3).
        query = Query.from_external(snapshot, "mule_1", "dest_acct", 3)
        result = PathEnum().run(snapshot, query)
        named = {snapshot.translate_path(p) for p in result.paths}
        assert ("mule_1", "dest_acct") in named
        assert ("mule_1", "mule_2", "dest_acct") in named


class TestKnowledgeGraphScenario:
    """Application 3: paths constrained by a sequence of relation labels."""

    def test_action_sequence_constraint(self):
        builder = GraphBuilder()
        facts = [
            ("author", "paper", "write"),
            ("paper", "topic", "mention"),
            ("author", "workshop", "attend"),
            ("workshop", "topic", "mention"),
            ("author", "topic", "cite"),
        ]
        for head, tail, relation in facts:
            builder.add_edge(head, tail, label=relation)
        graph = builder.build()
        query = Query.from_external(graph, "author", "topic", 3)
        automaton = SequenceAutomaton.from_label_sequence(["write", "mention"])
        constraint = AutomatonConstraint(graph, automaton)
        result = PathEnum().run(graph, query, RunConfig(constraint=constraint))
        named = {graph.translate_path(p) for p in result.paths}
        assert named == {("author", "paper", "topic")}

    def test_unconstrained_paths_cover_all_relations(self):
        builder = GraphBuilder()
        builder.add_edge("a", "b", label="r1")
        builder.add_edge("b", "c", label="r2")
        builder.add_edge("a", "c", label="r3")
        graph = builder.build()
        paths = enumerate_paths(graph, "a", "c", k=2, external_ids=True)
        assert set(paths) == {("a", "c"), ("a", "b", "c")}
