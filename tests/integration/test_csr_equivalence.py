"""Property-based equivalence: CSR index vs. the dict-era reference semantics.

``_reference_index`` below is a faithful port of the original per-vertex
dict/list implementation of Algorithm 3 (the pre-CSR ``LightWeightIndex``).
Hypothesis drives random graphs and queries through both implementations and
asserts that every observable of the index is identical: candidate
partitions, neighbour lookups at every budget, gamma statistics, edge counts
and — through the engines — the enumerated path sets.  The batch executor is
held to the same standard against sequential runs.
"""

from __future__ import annotations

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.engine import BatchExecutor, PathEnum
from repro.core.index import LightWeightIndex
from repro.core.listener import RunConfig
from repro.core.query import Query
from repro.graph.builder import GraphBuilder
from repro.graph.traversal import UNREACHABLE, bfs_distances_bounded

from tests.helpers import brute_force_paths

MAX_VERTICES = 12


@st.composite
def graph_and_query(draw):
    """A random directed graph plus a valid query on it."""
    num_vertices = draw(st.integers(min_value=2, max_value=MAX_VERTICES))
    possible_edges = [
        (u, v) for u in range(num_vertices) for v in range(num_vertices) if u != v
    ]
    edges = draw(
        st.lists(st.sampled_from(possible_edges), min_size=1, max_size=60, unique=True)
    )
    builder = GraphBuilder()
    for v in range(num_vertices):
        builder.add_vertex(v)
    builder.add_edges(edges)
    graph = builder.build()
    source = draw(st.integers(min_value=0, max_value=num_vertices - 1))
    target = draw(
        st.integers(min_value=0, max_value=num_vertices - 1).filter(lambda v: v != source)
    )
    k = draw(st.integers(min_value=2, max_value=6))
    return graph, Query(source, target, k)


def _reference_index(graph, query):
    """The dict-backed Algorithm 3 exactly as the seed implemented it."""
    s, t, k = query.source, query.target, query.k
    ds = bfs_distances_bounded(graph, s, cutoff=k, no_expand=t)
    dt = bfs_distances_bounded(graph, t, cutoff=k, reverse=True, no_expand=s)

    in_x = [
        ds[v] != UNREACHABLE and dt[v] != UNREACHABLE and ds[v] + dt[v] <= k
        for v in range(graph.num_vertices)
    ]
    members = [v for v in range(graph.num_vertices) if in_x[v]]

    neighbors = {}
    ends = {}
    num_index_edges = 0
    for v in members:
        if v == t:
            continue
        budget = k - int(ds[v]) - 1
        if budget < 0:
            continue
        collected = []
        for v_next in graph.neighbors(v):
            v_next = int(v_next)
            if v_next == s:
                continue
            d_next = int(dt[v_next])
            if d_next == UNREACHABLE or d_next > budget:
                continue
            collected.append(v_next)
        collected.sort(key=lambda w: int(dt[w]))
        neighbors[v] = collected
        end_positions = [0] * (k + 1)
        position = 0
        for b in range(k + 1):
            while position < len(collected) and int(dt[collected[position]]) <= b:
                position += 1
            end_positions[b] = position
        ends[v] = end_positions
        num_index_edges += len(collected)

    if in_x[t]:
        neighbors[t] = [t]
        ends[t] = [1] * (k + 1)
        num_index_edges += 1

    partitions = [[] for _ in range(k + 1)]
    for v in members:
        for i in range(int(ds[v]), k - int(dt[v]) + 1):
            partitions[i].append(v)

    gamma = []
    for i in range(k):
        candidates = partitions[i]
        if not candidates:
            gamma.append(0.0)
            continue
        budget = k - i - 1
        total = 0
        for v in candidates:
            end_positions = ends.get(v)
            if end_positions is not None and budget >= 0:
                total += end_positions[budget]
        gamma.append(total / len(candidates))

    return {
        "neighbors": neighbors,
        "ends": ends,
        "partitions": partitions,
        "gamma": gamma,
        "num_index_edges": num_index_edges,
        "members": members,
    }


_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(case=graph_and_query())
@_SETTINGS
def test_csr_index_matches_reference_semantics(case):
    graph, query = case
    index = LightWeightIndex.build(graph, query)
    reference = _reference_index(graph, query)
    k = query.k

    # Vertex retention and candidate partitions.
    for v in range(graph.num_vertices):
        assert index.contains(v) == (v in reference["ends"]), v
    for i in range(k + 1):
        assert list(index.members(i)) == reference["partitions"][i], i
    assert index.candidate_counts() == [len(p) for p in reference["partitions"]]

    # Neighbour lookups at every budget, including the offset boundaries.
    for v in range(graph.num_vertices):
        stored = reference["neighbors"].get(v, [])
        stored_ends = reference["ends"].get(v)
        for budget in range(-1, k + 2):
            expected = (
                []
                if stored_ends is None or budget < 0
                else stored[: stored_ends[min(budget, k)]]
            )
            assert list(index.neighbors_within(v, budget)) == expected, (v, budget)
            assert index.count_neighbors_within(v, budget) == len(expected), (v, budget)

    # Statistics feeding the estimator and the memory accounting.
    assert index.num_index_edges == reference["num_index_edges"]
    assert index.num_index_vertices == len(reference["ends"])
    for i in range(k):
        assert math.isclose(index.gamma(i), reference["gamma"][i], abs_tol=1e-12), i


@given(case=graph_and_query())
@_SETTINGS
def test_csr_in_neighbors_match_reference(case):
    graph, query = case
    index = LightWeightIndex.build(graph, query)
    reference = _reference_index(graph, query)
    ds = index.dist_from_s
    k = query.k

    in_neighbors = {v: [] for v in reference["ends"]}
    for u, targets in reference["neighbors"].items():
        for v in targets:
            if v == u:
                continue
            in_neighbors.setdefault(v, []).append(u)
    for v, sources in in_neighbors.items():
        sources.sort(key=lambda w: int(ds[w]))
        for budget in range(k + 1):
            expected = [u for u in sources if int(ds[u]) <= budget]
            assert list(index.in_neighbors_within(v, budget)) == expected, (v, budget)


@given(case=graph_and_query())
@_SETTINGS
def test_batch_executor_matches_sequential_and_brute_force(case):
    graph, query = case
    # Two queries sharing the target: the second must hit the BFS cache and
    # still agree with both the sequential engine and the brute force.
    other_source = next(
        (v for v in range(graph.num_vertices) if v not in (query.source, query.target)),
        None,
    )
    queries = [query]
    if other_source is not None:
        queries.append(Query(other_source, query.target, query.k))

    config = RunConfig(store_paths=True)
    sequential = [PathEnum().run(graph, q, config) for q in queries]
    batch = BatchExecutor(graph).run(queries, config)

    assert batch.stats.reverse_bfs_runs == 1
    assert batch.stats.bfs_cache_hits == len(queries) - 1
    for seq_result, batch_result, q in zip(sequential, batch.results, queries):
        expected = brute_force_paths(graph, q.source, q.target, q.k)
        assert set(seq_result.paths) == expected
        assert set(batch_result.paths) == expected
        assert batch_result.count == seq_result.count
