"""Integration tests: every algorithm must produce the same result sets."""

from __future__ import annotations

import pytest

from repro.baselines.registry import available_algorithms, get_algorithm
from repro.core.listener import RunConfig
from repro.core.query import Query
from repro.core.result import paths_are_valid
from repro.graph.generators import erdos_renyi, power_law_graph, small_world_graph

from tests.helpers import brute_force_paths

#: Algorithms exercised in the full cross-check (Yen is excluded from the
#: larger sweeps because its per-result cost is quadratic, which is exactly
#: why the paper only discusses it as related work).
FAST_ALGORITHMS = ("IDX-DFS", "IDX-JOIN", "PathEnum", "BC-DFS", "BC-JOIN", "GenericDFS", "FullJoin")
ALL_ALGORITHMS = FAST_ALGORITHMS + ("T-DFS", "Yen-KSP")


@pytest.mark.parametrize("name", ALL_ALGORITHMS)
def test_paper_example_agreement(paper_graph, paper_query, name):
    expected = brute_force_paths(
        paper_graph, paper_query.source, paper_query.target, paper_query.k
    )
    result = get_algorithm(name).run(paper_graph, paper_query)
    assert set(result.paths) == expected


@pytest.mark.parametrize("name", FAST_ALGORITHMS)
@pytest.mark.parametrize(
    "graph_factory,endpoints",
    [
        (lambda: erdos_renyi(70, 3.5, seed=101), (0, 1)),
        (lambda: power_law_graph(90, 4.0, exponent=2.0, seed=102), (1, 2)),
        (lambda: small_world_graph(60, 3, rewire_probability=0.2, seed=103), (0, 30)),
    ],
)
@pytest.mark.parametrize("k", [3, 5])
def test_agreement_across_topologies(name, graph_factory, endpoints, k):
    graph = graph_factory()
    source, target = endpoints
    expected = brute_force_paths(graph, source, target, k)
    result = get_algorithm(name).run(graph, Query(source, target, k))
    assert set(result.paths) == expected, name
    assert paths_are_valid(result.paths, source, target, k)


@pytest.mark.parametrize("name", FAST_ALGORITHMS)
def test_counting_mode_matches_path_mode(paper_graph, paper_query, name):
    algorithm = get_algorithm(name)
    with_paths = algorithm.run(paper_graph, paper_query, RunConfig(store_paths=True))
    counting = algorithm.run(paper_graph, paper_query, RunConfig(store_paths=False))
    assert with_paths.count == counting.count == len(with_paths.paths)


def test_registry_covers_every_paper_algorithm():
    names = set(available_algorithms())
    assert {"BC-DFS", "BC-JOIN", "IDX-DFS", "IDX-JOIN", "PathEnum"} <= names


@pytest.mark.parametrize("k", [3, 4, 5, 6])
def test_k_sweep_agreement_on_skewed_graph(skewed_graph, k):
    """The hard-workload shape: hub-to-hub queries across a range of k."""
    degrees = [
        (skewed_graph.out_degree(v) + skewed_graph.in_degree(v), v)
        for v in skewed_graph.vertices()
    ]
    degrees.sort(reverse=True)
    source, target = degrees[0][1], degrees[1][1]
    if source == target:
        pytest.skip("degenerate degree ordering")
    expected = brute_force_paths(skewed_graph, source, target, k)
    for name in ("IDX-DFS", "IDX-JOIN", "PathEnum", "BC-DFS"):
        result = get_algorithm(name).run(skewed_graph, Query(source, target, k))
        assert set(result.paths) == expected, (name, k)
