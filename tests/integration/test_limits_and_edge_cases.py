"""Failure-injection and edge-case integration tests.

These exercise the behaviours the benchmark harness relies on: cooperative
deadlines firing in different phases, result limits, and degenerate graph
shapes (stars, complete graphs, minimal hop constraints).
"""

from __future__ import annotations

import pytest

from repro.baselines.registry import get_algorithm
from repro.core.engine import IdxDfs, IdxJoin, PathEnum
from repro.core.listener import Deadline, RunConfig
from repro.core.query import Query
from repro.errors import EnumerationTimeout
from repro.core.index import LightWeightIndex
from repro.graph.builder import GraphBuilder, from_edges
from repro.graph.generators import complete_graph

from tests.helpers import brute_force_paths

ALGORITHMS_WITH_LIMITS = ("IDX-DFS", "IDX-JOIN", "PathEnum", "BC-DFS", "BC-JOIN", "GenericDFS")


class TestDeadlines:
    def test_index_construction_respects_deadline(self):
        graph = complete_graph(40)
        query = Query(0, 39, 4)
        deadline = Deadline(0.0, poll_interval=1)
        with pytest.raises(EnumerationTimeout):
            LightWeightIndex.build(graph, query, deadline=deadline)

    @pytest.mark.parametrize("name", ALGORITHMS_WITH_LIMITS)
    def test_zero_time_limit_reports_timeout_not_crash(self, name):
        graph = complete_graph(10)
        config = RunConfig(store_paths=False, time_limit_seconds=0.0)
        result = get_algorithm(name).run(graph, Query(0, 9, 5), config)
        assert result.stats.timed_out
        assert result.count >= 0
        assert result.query_seconds >= 0.0

    def test_generous_time_limit_completes(self, paper_graph, paper_query):
        config = RunConfig(time_limit_seconds=60.0)
        result = PathEnum().run(paper_graph, paper_query, config)
        assert not result.stats.timed_out
        assert result.count == 5

    def test_timed_out_queries_still_record_enumeration_phase(self):
        """Regression test: phase timing must survive a mid-enumeration timeout."""
        from repro.core.result import Phase

        graph = complete_graph(10)
        config = RunConfig(store_paths=False, time_limit_seconds=0.01)
        result = IdxDfs().run(graph, Query(0, 9, 6), config)
        if result.stats.timed_out:
            assert result.stats.phase(Phase.ENUMERATION) > 0.0


class TestResultLimits:
    @pytest.mark.parametrize("name", ALGORITHMS_WITH_LIMITS)
    def test_limit_of_one(self, paper_graph, paper_query, name):
        config = RunConfig(result_limit=1)
        result = get_algorithm(name).run(paper_graph, paper_query, config)
        assert result.count == 1
        assert result.stats.truncated

    def test_limit_larger_than_result_set_is_not_truncation(self, paper_graph, paper_query):
        config = RunConfig(result_limit=10_000)
        result = PathEnum().run(paper_graph, paper_query, config)
        assert result.count == 5
        assert not result.stats.truncated


class TestDegenerateGraphShapes:
    def test_star_graph_has_no_long_paths(self):
        builder = GraphBuilder()
        for leaf in range(1, 20):
            builder.add_edge(0, leaf)
        graph = builder.build()
        result = PathEnum().run(graph, Query(0, 5, 4))
        assert result.count == 1
        assert result.paths == [(0, 5)]

    def test_two_vertex_graph(self):
        graph = from_edges([(0, 1)])
        result = PathEnum().run(graph, Query(0, 1, 2))
        assert result.paths == [(0, 1)]

    def test_bidirectional_pair(self):
        graph = from_edges([(0, 1), (1, 0)])
        assert PathEnum().run(graph, Query(0, 1, 4)).count == 1
        assert PathEnum().run(graph, Query(1, 0, 4)).count == 1

    def test_minimum_hop_constraint_on_complete_graph(self):
        graph = complete_graph(6)
        result = PathEnum().run(graph, Query(0, 5, 2))
        expected = brute_force_paths(graph, 0, 5, 2)
        assert set(result.paths) == expected
        assert result.count == 5  # the direct edge plus 4 two-hop paths

    def test_complete_graph_counts_match_closed_form(self):
        # Paths from 0 to n-1 of length exactly L in K_n: (n-2)!/(n-1-L)!.
        n, k = 7, 3
        graph = complete_graph(n)
        result = PathEnum().run(graph, Query(0, n - 1, k))
        expected = sum(
            1 if length == 1 else _falling_factorial(n - 2, length - 1)
            for length in range(1, k + 1)
        )
        assert result.count == expected

    def test_query_endpoints_with_no_outgoing_or_incoming_edges(self):
        graph = from_edges([(0, 1), (1, 2), (3, 0)])
        # Vertex 2 has no outgoing edges; vertex 3 has no incoming edges.
        assert PathEnum().run(graph, Query(2, 3, 4)).count == 0
        assert IdxJoin().run(graph, Query(2, 3, 4)).count == 0


def _falling_factorial(n: int, length: int) -> int:
    value = 1
    for i in range(length):
        value *= n - i
    return value
