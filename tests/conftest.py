"""Shared pytest fixtures for the whole test suite."""

from __future__ import annotations

import pytest

from repro.core.query import Query
from repro.graph.generators import erdos_renyi, grid_graph, power_law_graph

from tests.helpers import (
    PAPER_FIGURE5_G0_EDGES,
    PAPER_FIGURE5_G1_EDGES,
    build_graph,
    paper_figure1_graph,
)


@pytest.fixture(scope="session")
def paper_graph():
    """The paper's Figure 1 example graph."""
    return paper_figure1_graph()


@pytest.fixture(scope="session")
def paper_query(paper_graph):
    """The paper's example query q(s, t, 4) in internal ids."""
    return Query.from_external(paper_graph, "s", "t", 4)


@pytest.fixture(scope="session")
def figure5_g0():
    """Graph G0 of Figure 5 (every walk is a path)."""
    return build_graph(PAPER_FIGURE5_G0_EDGES)


@pytest.fixture(scope="session")
def figure5_g1():
    """Graph G1 of Figure 5 (most walks are not paths)."""
    return build_graph(PAPER_FIGURE5_G1_EDGES)


@pytest.fixture(scope="session")
def random_graph():
    """A moderately dense seeded random graph for cross-algorithm checks."""
    return erdos_renyi(80, 4.0, seed=42)


@pytest.fixture(scope="session")
def skewed_graph():
    """A power-law graph with heavy hubs (hard-query topology)."""
    return power_law_graph(150, 5.0, exponent=2.0, seed=7)


@pytest.fixture(scope="session")
def dag_grid():
    """A 4x5 directed grid: path counts are binomial coefficients."""
    return grid_graph(4, 5)
