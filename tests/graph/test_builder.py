"""Unit tests for GraphBuilder."""

from __future__ import annotations

import pytest

from repro.graph.builder import GraphBuilder, from_edges


class TestAddEdge:
    def test_duplicate_edges_are_dropped(self):
        builder = GraphBuilder()
        assert builder.add_edge("a", "b")
        assert not builder.add_edge("a", "b")
        assert builder.num_edges == 1

    def test_duplicate_keeps_first_attributes(self):
        builder = GraphBuilder()
        builder.add_edge("a", "b", weight=5.0)
        builder.add_edge("a", "b", weight=9.0)
        graph = builder.build()
        assert graph.edge_weight(graph.to_internal("a"), graph.to_internal("b")) == 5.0

    def test_self_loops_dropped_by_default(self):
        builder = GraphBuilder()
        assert not builder.add_edge("a", "a")
        assert builder.num_edges == 0
        # The vertex is still registered.
        assert builder.num_vertices == 1

    def test_self_loops_allowed_when_requested(self):
        builder = GraphBuilder(allow_self_loops=True)
        assert builder.add_edge("a", "a")
        graph = builder.build()
        assert graph.has_edge(0, 0)

    def test_add_edges_returns_inserted_count(self):
        builder = GraphBuilder()
        inserted = builder.add_edges([("a", "b"), ("a", "b"), ("b", "c"), ("c", "c")])
        assert inserted == 2

    def test_has_edge_before_build(self):
        builder = GraphBuilder()
        builder.add_edge(1, 2)
        assert builder.has_edge(1, 2)
        assert not builder.has_edge(2, 1)
        assert not builder.has_edge(5, 6)


class TestVertexRegistration:
    def test_add_vertex_is_idempotent(self):
        builder = GraphBuilder()
        first = builder.add_vertex("x")
        second = builder.add_vertex("x")
        assert first == second
        assert builder.num_vertices == 1

    def test_isolated_vertices_survive_build(self):
        builder = GraphBuilder()
        builder.add_vertex("isolated")
        builder.add_edge("a", "b")
        graph = builder.build()
        assert graph.num_vertices == 3
        isolated = graph.to_internal("isolated")
        assert graph.out_degree(isolated) == 0
        assert graph.in_degree(isolated) == 0

    def test_insertion_order_defines_internal_ids(self):
        builder = GraphBuilder()
        builder.add_edge("z", "y")
        builder.add_edge("a", "z")
        graph = builder.build()
        assert graph.to_internal("z") == 0
        assert graph.to_internal("y") == 1
        assert graph.to_internal("a") == 2


class TestBuildOutput:
    def test_adjacency_matches_inserted_edges(self):
        edges = [(0, 1), (0, 2), (1, 2), (2, 3), (3, 0)]
        graph = from_edges(edges)
        assert set(graph.edges()) == set(edges)

    def test_weights_permuted_consistently_with_csr(self):
        builder = GraphBuilder()
        # Insert in an order different from the CSR (sorted) order.
        builder.add_edge(2, 0, weight=20.0)
        builder.add_edge(0, 2, weight=2.0)
        builder.add_edge(0, 1, weight=1.0)
        graph = builder.build()

        def weight(u, v):
            return graph.edge_weight(graph.to_internal(u), graph.to_internal(v))

        assert weight(0, 1) == 1.0
        assert weight(0, 2) == 2.0
        assert weight(2, 0) == 20.0

    def test_labels_permuted_consistently_with_csr(self):
        builder = GraphBuilder()
        builder.add_edge("b", "a", label="back")
        builder.add_edge("a", "b", label="forward")
        graph = builder.build()
        a, b = graph.to_internal("a"), graph.to_internal("b")
        assert graph.edge_label(a, b) == "forward"
        assert graph.edge_label(b, a) == "back"

    def test_build_empty_builder(self):
        graph = GraphBuilder().build()
        assert graph.num_vertices == 0
        assert graph.num_edges == 0

    def test_build_reverse(self):
        builder = GraphBuilder()
        builder.add_edge(0, 1)
        builder.add_edge(1, 2)
        reversed_graph = builder.build_reverse()
        assert reversed_graph.has_edge(1, 0)
        assert reversed_graph.has_edge(2, 1)

    def test_mixed_external_ids(self):
        builder = GraphBuilder()
        builder.add_edge("acct:1", "acct:2")
        builder.add_edge("acct:2", "acct:3")
        graph = builder.build()
        assert graph.has_external_ids
        assert graph.to_external(graph.to_internal("acct:3")) == "acct:3"


class TestSortedRowInvariant:
    def test_rows_sorted_regardless_of_insertion_order(self):
        """The builder lexsorts edges, so every CSR row is sorted ascending —
        the invariant behind DiGraph's binary-search edge lookup."""
        builder = GraphBuilder()
        builder.add_edge(0, 5)
        builder.add_edge(0, 1)
        builder.add_edge(0, 3)
        builder.add_edge(2, 4)
        builder.add_edge(2, 0)
        graph = builder.build()
        indptr, indices = graph.out_csr()
        for v in graph.vertices():
            row = [int(w) for w in indices[indptr[v]:indptr[v + 1]]]
            assert row == sorted(row), v
        in_indptr, in_indices = graph.in_csr()
        for v in graph.vertices():
            row = [int(w) for w in in_indices[in_indptr[v]:in_indptr[v + 1]]]
            assert row == sorted(row), v

    def test_derived_graphs_keep_rows_sorted(self):
        builder = GraphBuilder()
        builder.add_edge(1, 0)
        builder.add_edge(0, 2)
        builder.add_edge(0, 1)
        builder.add_edge(2, 1)
        graph = builder.build()
        # The constructor itself validates sortedness, so surviving these
        # calls proves the derived graphs preserve the invariant.
        graph.reverse()
        graph.reverse().reverse()
        graph.filter_edges(lambda u, v, w, lbl: u != 2)
        graph.copy_with_edges([(2, 0), (1, 2)])
