"""Property tests for the snapshot file format and its storage backends.

Every storage backend must be observationally identical to the heap CSR
graph: byte-identical neighbour lists and degrees (forward and transpose),
identical reverse-BFS distances, and byte-identical enumeration payloads.
On top of equivalence, the suite pins the operational contract: mapped
views are read-only, handles attach across processes, close is idempotent
and fd-clean, and corrupt files fail loudly.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import struct

import numpy as np
import pytest

from repro.api import Database
from repro.errors import GraphError
from repro.graph.builder import GraphBuilder
from repro.graph.digraph import DiGraph
from repro.graph.generators import erdos_renyi
from repro.graph.snapshot import (
    SNAPSHOT_MAGIC,
    load_snapshot,
    read_snapshot_header,
    save_snapshot,
    snapshot_codec,
    write_snapshot,
)
from repro.graph.store import CompressedStore, MmapStore
from repro.graph.traversal import bfs_distances

#: Every load_snapshot store choice that must be equivalent to the heap.
STORES = ("mmap", "compressed", "heap", "shared_memory")


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(300, 8.0, seed=13)


@pytest.fixture(scope="module")
def raw_path(graph, tmp_path_factory):
    return save_snapshot(graph, tmp_path_factory.mktemp("snap") / "graph.rsnap")


@pytest.fixture(scope="module")
def compressed_path(graph, tmp_path_factory):
    return save_snapshot(
        graph, tmp_path_factory.mktemp("snap") / "graph.crsnap", codec="compressed"
    )


def _open_variant(store, raw_path, compressed_path):
    # Compressed loads come from the compressed file; everything else from raw.
    return load_snapshot(compressed_path if store == "compressed" else raw_path, store=store)


class TestFileFormat:
    def test_header_layout(self, raw_path, graph):
        header = read_snapshot_header(raw_path)
        assert header["codec"] == "raw"
        assert header["meta"]["num_vertices"] == graph.num_vertices
        for spec in header["arrays"].values():
            assert spec["offset"] % 4096 == 0

    def test_codec_sniffing(self, raw_path, compressed_path):
        assert snapshot_codec(raw_path) == "raw"
        assert snapshot_codec(compressed_path) == "compressed"

    def test_magic_prefix(self, raw_path):
        assert raw_path.read_bytes()[:8] == SNAPSHOT_MAGIC

    def test_bad_magic_is_rejected(self, tmp_path):
        path = tmp_path / "not_a_snapshot.rsnap"
        path.write_bytes(b"GARBAGE!" + b"\x00" * 64)
        with pytest.raises(GraphError, match="bad magic"):
            load_snapshot(path)

    def test_corrupt_header_is_rejected(self, tmp_path):
        path = tmp_path / "corrupt.rsnap"
        path.write_bytes(SNAPSHOT_MAGIC + struct.pack("<Q", 10) + b"\xff" * 10)
        with pytest.raises(GraphError, match="corrupt snapshot header"):
            load_snapshot(path)

    def test_codec_mismatch_is_rejected(self, raw_path, compressed_path):
        with pytest.raises(GraphError, match="codec"):
            MmapStore.open(compressed_path)
        with pytest.raises(GraphError, match="codec"):
            CompressedStore.open(raw_path)

    def test_unknown_codec_and_store_are_rejected(self, graph, raw_path, tmp_path):
        with pytest.raises(GraphError, match="unknown snapshot codec"):
            save_snapshot(graph, tmp_path / "bad.rsnap", codec="zstd")
        with pytest.raises(GraphError, match="unknown snapshot store"):
            load_snapshot(raw_path, store="tape")

    def test_exotic_vertex_ids_are_rejected(self, tmp_path):
        builder = GraphBuilder()
        builder.add_edge(("tuple", 1), ("tuple", 2))
        with pytest.raises(GraphError, match="vertex ids"):
            save_snapshot(builder.build(), tmp_path / "bad.rsnap")

    def test_empty_meta_write_read(self, tmp_path):
        path = write_snapshot(tmp_path / "arrays.rsnap", {"x": np.arange(10)})
        header = read_snapshot_header(path)
        assert header["meta"] == {}
        assert header["arrays"]["x"]["shape"] == [10]

    @pytest.mark.parametrize("codec", ("raw", "compressed"))
    def test_vertex_ids_live_in_arrays_not_header(self, codec, tmp_path):
        # The JSON header must stay O(1): ids go into data arrays, the
        # header only records how they are encoded.
        builder = GraphBuilder()
        for u, v in ((10, 20), (20, 30), (30, 10)):
            builder.add_edge(u, v)
        int_graph = builder.build()
        path = save_snapshot(int_graph, tmp_path / f"ids.{codec}.rsnap", codec=codec)
        header = read_snapshot_header(path)
        assert "vertex_ids" not in header["meta"]
        assert header["meta"]["vertex_ids_kind"] == "int"
        assert "vertex_ids" in header["arrays"]
        loaded = load_snapshot(path)
        try:
            assert [loaded.to_external(v) for v in loaded.vertices()] == [10, 20, 30]
            assert loaded.to_internal(30) == 2
        finally:
            loaded.close_store()

    @pytest.mark.parametrize("codec", ("raw", "compressed"))
    def test_string_vertex_ids_round_trip_as_arrays(self, codec, tmp_path):
        builder = GraphBuilder()
        ids = ["alpha", "", "βeta", "x" * 300]
        for u, v in zip(ids, ids[1:] + ids[:1]):
            builder.add_edge(u, v)
        original = builder.build()
        path = save_snapshot(original, tmp_path / f"sids.{codec}.rsnap", codec=codec)
        header = read_snapshot_header(path)
        assert "vertex_ids" not in header["meta"]
        assert header["meta"]["vertex_ids_kind"] == "str"
        assert "vertex_id_offsets" in header["arrays"]
        assert "vertex_id_bytes" in header["arrays"]
        loaded = load_snapshot(path)
        try:
            original_ids = [original.to_external(v) for v in original.vertices()]
            assert [loaded.to_external(v) for v in loaded.vertices()] == original_ids
            assert loaded.to_internal("βeta") == original.to_internal("βeta")
        finally:
            loaded.close_store()

    def test_legacy_header_vertex_ids_still_load(self, tmp_path):
        # Snapshots from before the id arrays existed carry the ids inline
        # in the JSON header; they must keep loading unchanged.
        indptr = np.array([0, 1, 2], dtype=np.int64)
        indices = np.array([1, 0], dtype=np.int64)
        path = write_snapshot(
            tmp_path / "legacy.rsnap",
            {
                "out_indptr": indptr,
                "out_indices": indices,
                "in_indptr": indptr,
                "in_indices": indices,
            },
            {"num_vertices": 2, "vertex_ids": ["north", "south"]},
        )
        loaded = load_snapshot(path)
        try:
            assert loaded.to_external(0) == "north"
            assert loaded.to_internal("south") == 1
        finally:
            loaded.close_store()


class TestCorruptAttach:
    def _write(self, tmp_path, arrays, num_vertices):
        return write_snapshot(
            tmp_path / "corrupt.rsnap", arrays, {"num_vertices": num_vertices}
        )

    def test_truncated_indices_rejected(self, tmp_path):
        # indptr promises more edges than the indices array holds.
        indptr = np.array([0, 2, 4], dtype=np.int64)
        path = self._write(
            tmp_path,
            {
                "out_indptr": indptr,
                "out_indices": np.array([1, 0, 1], dtype=np.int64),
                "in_indptr": indptr,
                "in_indices": np.array([1, 0, 1], dtype=np.int64),
            },
            2,
        )
        with pytest.raises(GraphError, match="corrupt graph store"):
            load_snapshot(path)

    def test_non_monotone_indptr_rejected(self, tmp_path):
        indices = np.array([1, 0], dtype=np.int64)
        path = self._write(
            tmp_path,
            {
                "out_indptr": np.array([0, 2, 2], dtype=np.int64),
                "out_indices": indices,
                "in_indptr": np.array([0, 3, 2], dtype=np.int64),
                "in_indices": indices,
            },
            2,
        )
        with pytest.raises(GraphError, match="monotone"):
            load_snapshot(path)

    def test_vertex_count_mismatch_rejected(self, tmp_path):
        indptr = np.array([0, 1, 2], dtype=np.int64)
        indices = np.array([1, 0], dtype=np.int64)
        path = self._write(
            tmp_path,
            {
                "out_indptr": indptr,
                "out_indices": indices,
                "in_indptr": indptr,
                "in_indices": indices,
            },
            5,
        )
        with pytest.raises(GraphError, match="vertex count"):
            load_snapshot(path)


class TestEquivalence:
    @pytest.mark.parametrize("store", STORES)
    def test_neighbour_lists_and_degrees(self, store, graph, raw_path, compressed_path):
        loaded = _open_variant(store, raw_path, compressed_path)
        try:
            assert loaded.num_vertices == graph.num_vertices
            assert loaded.num_edges == graph.num_edges
            assert np.array_equal(loaded.out_degrees(), graph.out_degrees())
            assert np.array_equal(loaded.in_degrees(), graph.in_degrees())
            for v in range(graph.num_vertices):
                assert np.array_equal(loaded.neighbors(v), graph.neighbors(v))
                assert np.array_equal(loaded.in_neighbors(v), graph.in_neighbors(v))
        finally:
            loaded.close_store()

    @pytest.mark.parametrize("store", STORES)
    def test_transpose_view_matches(self, store, graph, raw_path, compressed_path):
        loaded = _open_variant(store, raw_path, compressed_path)
        try:
            view = loaded.reverse_view()
            assert view.num_edges == graph.num_edges
            for v in range(0, graph.num_vertices, 7):
                assert np.array_equal(view.neighbors(v), graph.in_neighbors(v))
                assert np.array_equal(view.in_neighbors(v), graph.neighbors(v))
            # The view is cached and swaps back to the original.
            assert loaded.reverse_view() is view
            assert view.reverse_view() is loaded
        finally:
            loaded.close_store()

    @pytest.mark.parametrize("store", STORES)
    def test_reverse_bfs_distances_match(self, store, graph, raw_path, compressed_path):
        loaded = _open_variant(store, raw_path, compressed_path)
        try:
            for target in (0, 17, 123):
                expected = bfs_distances(graph, target, reverse=True)
                assert np.array_equal(bfs_distances(loaded, target, reverse=True), expected)
                # Forward BFS on the transpose view is the same computation.
                assert np.array_equal(
                    bfs_distances(loaded.reverse_view(), target), expected
                )
        finally:
            loaded.close_store()

    def test_attributes_round_trip(self, tmp_path):
        builder = GraphBuilder()
        builder.add_edge("a", "b", weight=2.0, label="x")
        builder.add_edge("b", "c", weight=0.5, label=None)
        builder.add_edge("c", "a", weight=1.0, label="")
        original = builder.build()
        for codec in ("raw", "compressed"):
            path = save_snapshot(original, tmp_path / f"attrs.{codec}.rsnap", codec=codec)
            loaded = load_snapshot(path)
            try:
                a, b = loaded.to_internal("a"), loaded.to_internal("b")
                assert loaded.edge_weight(a, b) == pytest.approx(2.0)
                assert loaded.edge_label(a, b) == "x"
                b, c = loaded.to_internal("b"), loaded.to_internal("c")
                assert loaded.edge_label(b, c, default=None) is None
            finally:
                loaded.close_store()

    def test_compressed_from_raw_matches(self, graph, raw_path):
        loaded = load_snapshot(raw_path, store="compressed")
        try:
            assert loaded.store_backend == "compressed"
            for v in range(0, graph.num_vertices, 11):
                assert np.array_equal(loaded.neighbors(v), graph.neighbors(v))
        finally:
            loaded.close_store()


class TestEnumerationPayloads:
    @pytest.mark.parametrize("store", STORES)
    def test_payloads_byte_identical(self, store, graph, raw_path, compressed_path):
        queries = [(0, 25, 4), (3, 200, 5), (17, 40, 3)]
        with Database(graph) as db:
            reference = db.batch(queries).payload()
        loaded = _open_variant(store, raw_path, compressed_path)
        try:
            with Database(loaded) as db:
                assert db.batch(queries).payload() == reference
        finally:
            loaded.close_store()

    @pytest.mark.parametrize("store", ("mmap", "compressed"))
    def test_threaded_backend_payloads_match(self, store, graph, raw_path, compressed_path):
        # `repro serve --snapshot <file> --threads N` runs several worker
        # threads over one mapped graph object; with the compressed store
        # that hammers the shared single-slot decode cache, so the threaded
        # payload must stay byte-identical to the inline heap reference.
        queries = [(0, 25, 4), (3, 200, 5), (17, 40, 3), (42, 7, 4), (99, 150, 5)]
        with Database(graph) as db:
            reference = db.batch(queries).payload()
        loaded = _open_variant(store, raw_path, compressed_path)
        try:
            with Database(loaded, backend="threads", workers=4) as db:
                for _ in range(3):
                    assert db.batch(queries).payload() == reference
        finally:
            loaded.close_store()

    @pytest.mark.parametrize("store", ("mmap", "compressed"))
    def test_interrupted_payloads_match(self, store, graph, raw_path, compressed_path):
        # limit and an already-expired deadline interrupt deterministically.
        loaded = _open_variant(store, raw_path, compressed_path)
        try:
            for options in ({"limit": 5}, {"deadline": 0.0}):
                with Database(graph) as db:
                    reference = db.query((0, 25, 4), **options).result()
                with Database(loaded) as db:
                    result = db.query((0, 25, 4), **options).result()
                assert result.count == reference.count
                assert result.paths == reference.paths
        finally:
            loaded.close_store()


class TestReadOnly:
    def test_mmap_views_reject_writes(self, raw_path):
        loaded = load_snapshot(raw_path, store="mmap")
        try:
            indptr, indices = loaded.out_csr()
            with pytest.raises(ValueError):
                indices[0] = 99
            with pytest.raises(ValueError):
                indptr[0] = 99
        finally:
            loaded.close_store()

    def test_compressed_flat_views_reject_writes(self, compressed_path):
        loaded = load_snapshot(compressed_path)
        try:
            indptr, _ = loaded.out_csr()
            with pytest.raises(ValueError):
                indptr[0] = 99
        finally:
            loaded.close_store()


def _attach_and_probe(payload, vertex, queue):
    handle = pickle.loads(payload)
    twin = DiGraph.from_handle(handle)
    try:
        neighbours = twin.neighbors(vertex)
        writable = neighbours.flags.writeable if hasattr(neighbours, "flags") else False
        queue.put((list(map(int, neighbours)), int(twin.num_edges), writable))
    finally:
        twin.close_store()


class TestCrossProcess:
    @pytest.mark.parametrize("store", ("mmap", "compressed"))
    def test_concurrent_attach(self, store, graph, raw_path, compressed_path):
        loaded = _open_variant(store, raw_path, compressed_path)
        try:
            payload = pickle.dumps(loaded.share())
            ctx = multiprocessing.get_context()
            queue = ctx.Queue()
            vertex = 5
            workers = [
                ctx.Process(target=_attach_and_probe, args=(payload, vertex, queue))
                for _ in range(3)
            ]
            for worker in workers:
                worker.start()
            results = [queue.get(timeout=30) for _ in workers]
            for worker in workers:
                worker.join(timeout=30)
                assert worker.exitcode == 0
            expected = list(map(int, graph.neighbors(vertex)))
            for neighbours, num_edges, writable in results:
                assert neighbours == expected
                assert num_edges == graph.num_edges
                assert not writable
        finally:
            loaded.close_store()

    def test_handle_survives_pickle_locally(self, raw_path):
        loaded = load_snapshot(raw_path)
        try:
            handle = pickle.loads(pickle.dumps(loaded.share()))
            twin = DiGraph.from_handle(handle)
            try:
                assert twin.num_edges == loaded.num_edges
            finally:
                twin.close_store()
        finally:
            loaded.close_store()


class TestLifecycle:
    @pytest.mark.parametrize("store", ("mmap", "compressed"))
    def test_close_is_idempotent(self, store, raw_path, compressed_path):
        loaded = _open_variant(store, raw_path, compressed_path)
        loaded.close_store()
        loaded.close_store()

    def test_attach_holds_no_fd(self, raw_path):
        fd_dir = "/proc/self/fd"
        if not os.path.isdir(fd_dir):
            pytest.skip("needs /proc")
        before = len(os.listdir(fd_dir))
        loaded = load_snapshot(raw_path)
        open_delta = len(os.listdir(fd_dir)) - before
        loaded.close_store()
        del loaded
        after = len(os.listdir(fd_dir))
        # The opening fd is closed immediately; only the mapping's internal
        # dup remains while attached, and close releases it.
        assert open_delta <= 1
        assert after == before

    def test_database_owns_and_closes_file_stores(self, raw_path):
        db = Database(str(raw_path))
        graph = db.graph
        assert graph.store_backend == "mmap"
        db.close()
        # The database opened the store, so closing the database closed it.
        assert graph._store._closed
        # A caller-supplied graph is NOT closed with the database.
        supplied = load_snapshot(raw_path)
        try:
            with Database(supplied):
                pass
            assert not supplied._store._closed
            assert supplied.num_edges > 0
        finally:
            supplied.close_store()

    def test_memory_usage_reports_mapping(self, graph, raw_path, compressed_path):
        mapped = load_snapshot(raw_path)
        try:
            usage = mapped.memory_usage()
            assert usage["backend"] == "mmap"
            assert usage["resident_bytes"] == 0
            assert usage["mapped_bytes"] == usage["total_bytes"] > 0
        finally:
            mapped.close_store()
        packed = load_snapshot(compressed_path)
        try:
            usage = packed.memory_usage()
            assert usage["backend"] == "compressed"
            assert usage["logical_bytes"] > usage["total_bytes"]
            assert usage["compression_ratio"] < 1.0
        finally:
            packed.close_store()
        assert graph.memory_usage()["resident_bytes"] == graph.memory_usage()["total_bytes"]
