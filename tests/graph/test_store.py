"""Tests for the pluggable array-storage backends (graph/store.py).

Covers the contract the process-parallel executor depends on: pack /
handle / attach round trips are lossless and zero-copy, attachments are
read-only, handles survive pickling, and the unlink lifecycle leaves no
segment behind.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.builder import GraphBuilder
from repro.graph.digraph import DiGraph
from repro.graph.generators import erdos_renyi
from repro.graph.store import (
    HeapStore,
    SharedMemoryStore,
    StoreHandle,
    open_store,
)


@pytest.fixture()
def sample_arrays():
    return {
        "indptr": np.arange(5, dtype=np.int64),
        "values": np.asarray([2.5, -1.0, 0.0], dtype=np.float64),
        "empty": np.empty(0, dtype=np.int64),
    }


class TestHeapStore:
    def test_roundtrip_and_nbytes(self, sample_arrays):
        store = HeapStore.pack(sample_arrays)
        assert set(store.arrays()) == set(sample_arrays)
        for name, array in sample_arrays.items():
            assert np.array_equal(store.get(name), array)
        assert store.nbytes()["indptr"] == 5 * 8
        assert not store.shareable

    def test_handle_is_refused(self, sample_arrays):
        store = HeapStore.pack(sample_arrays)
        with pytest.raises(GraphError):
            store.handle()

    def test_unknown_backend_is_refused(self, sample_arrays):
        with pytest.raises(GraphError):
            open_store("carrier-pigeon", sample_arrays)


class TestSharedMemoryStore:
    def test_pack_attach_roundtrip(self, sample_arrays):
        owner = SharedMemoryStore.pack(sample_arrays, meta={"note": "hi"})
        try:
            handle = owner.handle()
            reader = SharedMemoryStore.attach(handle)
            try:
                for name, array in sample_arrays.items():
                    assert np.array_equal(reader.get(name), array)
                assert reader.meta["note"] == "hi"
                assert not reader.is_owner
            finally:
                reader.close()
        finally:
            owner.close(unlink=True)

    def test_attached_views_are_read_only(self, sample_arrays):
        owner = SharedMemoryStore.pack(sample_arrays)
        try:
            reader = SharedMemoryStore.attach(owner.handle())
            try:
                with pytest.raises(ValueError):
                    reader.get("indptr")[0] = 99
            finally:
                reader.close()
        finally:
            owner.close(unlink=True)

    def test_handle_pickle_roundtrip(self, sample_arrays):
        owner = SharedMemoryStore.pack(sample_arrays)
        try:
            handle = pickle.loads(pickle.dumps(owner.handle()))
            assert isinstance(handle, StoreHandle)
            reader = handle.attach()
            try:
                assert np.array_equal(reader.get("values"), sample_arrays["values"])
            finally:
                reader.close()
        finally:
            owner.close(unlink=True)

    def test_unlink_removes_the_segment(self, sample_arrays):
        owner = SharedMemoryStore.pack(sample_arrays)
        handle = owner.handle()
        owner.close(unlink=True)
        assert owner.is_unlinked
        with pytest.raises(GraphError):
            SharedMemoryStore.attach(handle)

    def test_only_owner_may_unlink(self, sample_arrays):
        owner = SharedMemoryStore.pack(sample_arrays)
        try:
            reader = SharedMemoryStore.attach(owner.handle())
            try:
                with pytest.raises(GraphError):
                    reader.unlink()
            finally:
                reader.close()
        finally:
            owner.close(unlink=True)

    def test_all_empty_arrays_pack(self):
        owner = SharedMemoryStore.pack({"nothing": np.empty(0, dtype=np.int64)})
        try:
            reader = SharedMemoryStore.attach(owner.handle())
            try:
                assert len(reader.get("nothing")) == 0
            finally:
                reader.close()
        finally:
            owner.close(unlink=True)

    def test_close_is_idempotent(self, sample_arrays):
        owner = SharedMemoryStore.pack(sample_arrays)
        owner.close(unlink=True)
        owner.close(unlink=True)


class TestDiGraphSharing:
    @pytest.fixture()
    def graph(self):
        return erdos_renyi(60, 3.0, seed=7)

    def test_share_and_attach_preserve_structure(self, graph):
        handle = graph.share()
        try:
            twin = DiGraph.from_handle(handle)
            try:
                assert twin.num_vertices == graph.num_vertices
                assert twin.num_edges == graph.num_edges
                assert np.array_equal(twin.out_csr()[0], graph.out_csr()[0])
                assert np.array_equal(twin.out_csr()[1], graph.out_csr()[1])
                assert np.array_equal(twin.in_csr()[1], graph.in_csr()[1])
                assert twin.store_backend == "shared_memory"
            finally:
                twin.close_store()
        finally:
            graph.store.unlink()

    def test_share_preserves_attributes_and_ids(self):
        builder = GraphBuilder()
        builder.add_edge("a", "b", weight=2.0, label="x")
        builder.add_edge("b", "c", weight=0.5, label=None)
        builder.add_edge("a", "c", weight=1.5, label="y")
        graph = builder.build()
        handle = graph.share()
        try:
            twin = DiGraph.from_handle(handle)
            try:
                ab = twin.to_internal("a"), twin.to_internal("b")
                assert twin.edge_weight(*ab) == 2.0
                assert twin.edge_label(*ab) == "x"
                assert twin.translate_path([0, 1]) == ("a", "b")
            finally:
                twin.close_store()
        finally:
            graph.store.unlink()

    def test_share_is_idempotent_until_unlinked(self, graph):
        first = graph.share()
        second = graph.share()
        assert first.segment_name == second.segment_name
        graph.store.unlink()
        third = graph.share()
        assert third.segment_name != first.segment_name
        graph.store.unlink()

    def test_sharing_keeps_queries_working_in_publisher(self, graph):
        from repro.core.engine import PathEnum
        from repro.core.listener import RunConfig
        from repro.core.query import Query

        before = PathEnum().run(graph, Query(0, 1, 4), RunConfig(store_paths=True))
        graph.share()
        try:
            after = PathEnum().run(graph, Query(0, 1, 4), RunConfig(store_paths=True))
            assert before.paths == after.paths
        finally:
            graph.store.unlink()

    def test_repr_and_memory_usage(self, graph):
        text = repr(graph)
        assert "num_vertices=60" in text
        assert "backend='heap'" in text
        usage = graph.memory_usage()
        assert usage["backend"] == "heap"
        assert usage["num_vertices"] == 60
        assert usage["num_edges"] == graph.num_edges
        expected = {"out_indptr", "out_indices", "in_indptr", "in_indices"}
        assert set(usage["arrays"]) == expected
        assert usage["arrays"]["out_indptr"] == (60 + 1) * 8
        assert usage["total_bytes"] == sum(usage["arrays"].values())

    def test_memory_usage_counts_weights(self):
        builder = GraphBuilder()
        builder.add_edge(0, 1, weight=1.0)
        builder.add_edge(1, 2, weight=2.0)
        graph = builder.build()
        usage = graph.memory_usage()
        assert usage["arrays"]["edge_weights"] == 2 * 8
        assert "weighted" in repr(graph)

    def test_heap_store_backend_via_constructor(self, graph):
        indptr, indices = graph.out_csr()
        in_indptr, in_indices = graph.in_csr()
        shared = DiGraph(
            graph.num_vertices, indptr, indices, in_indptr, in_indices,
            store="shared_memory",
        )
        try:
            assert shared.store_backend == "shared_memory"
            assert np.array_equal(shared.out_csr()[1], indices)
        finally:
            shared.close_store(unlink=True)
