"""Unit tests for BFS traversals, distances and shortest paths."""

from __future__ import annotations

import pytest

from repro.graph.builder import from_edges
from repro.graph.generators import chain_graph, grid_graph
from repro.graph.traversal import (
    UNREACHABLE,
    bfs_distances,
    bfs_distances_bounded,
    distance,
    has_path_within,
    shortest_path,
)

from tests.helpers import paper_figure1_graph


class TestBfsDistances:
    def test_chain_distances(self):
        graph = chain_graph(6)
        dist = bfs_distances(graph, 0)
        assert list(dist) == [0, 1, 2, 3, 4, 5]

    def test_reverse_distances(self):
        graph = chain_graph(6)
        dist = bfs_distances(graph, 5, reverse=True)
        assert list(dist) == [5, 4, 3, 2, 1, 0]

    def test_unreachable_marked(self):
        graph = from_edges([(0, 1), (2, 3)])
        dist = bfs_distances(graph, 0)
        assert dist[1] == 1
        assert dist[2] == UNREACHABLE
        assert dist[3] == UNREACHABLE

    def test_cutoff_limits_expansion(self):
        graph = chain_graph(10)
        dist = bfs_distances_bounded(graph, 0, cutoff=3)
        assert dist[3] == 3
        assert dist[4] == UNREACHABLE

    def test_excluded_vertex_is_removed(self):
        # 0 -> 1 -> 2 and 0 -> 2 via 3: excluding 1 forces the longer route.
        graph = from_edges([(0, 1), (1, 2), (0, 3), (3, 4), (4, 2)])
        dist = bfs_distances(graph, 0, excluded=1)
        assert dist[1] == UNREACHABLE
        assert dist[2] == 3

    def test_excluding_the_source_yields_all_unreachable(self):
        graph = chain_graph(4)
        dist = bfs_distances(graph, 0, excluded=0)
        assert all(d == UNREACHABLE for d in dist)

    def test_no_expand_vertex_gets_distance_but_is_not_expanded(self):
        # 0 -> 1 -> 2: with no_expand=1, vertex 1 is labelled but 2 stays
        # unreachable because paths through 1 are forbidden.
        graph = from_edges([(0, 1), (1, 2)])
        dist = bfs_distances(graph, 0, no_expand=1)
        assert dist[1] == 1
        assert dist[2] == UNREACHABLE

    def test_no_expand_on_paper_graph_matches_interior_exclusion(self):
        graph = paper_figure1_graph()
        s = graph.to_internal("s")
        t = graph.to_internal("t")
        dist = bfs_distances(graph, s, no_expand=t)
        # v2 is reachable without passing through t.
        assert dist[graph.to_internal("v2")] == 2
        # t itself still receives its distance.
        assert dist[t] == 2

    def test_edge_filter_restricts_traversal(self):
        graph = from_edges([(0, 1), (1, 2), (0, 2)])
        dist = bfs_distances_bounded(graph, 0, edge_filter=lambda u, v: (u, v) != (0, 2))
        assert dist[2] == 2

    def test_edge_filter_in_reverse_direction_uses_original_orientation(self):
        graph = from_edges([(0, 1), (1, 2)])
        seen = []

        def record(u, v):
            seen.append((u, v))
            return True

        bfs_distances_bounded(graph, 2, reverse=True, edge_filter=record)
        assert (1, 2) in seen and (0, 1) in seen


class TestDistance:
    def test_distance_simple(self):
        graph = chain_graph(5)
        assert distance(graph, 0, 4) == 4
        assert distance(graph, 4, 0) == UNREACHABLE

    def test_distance_to_self_is_zero(self):
        graph = chain_graph(3)
        assert distance(graph, 1, 1) == 0

    def test_distance_with_cutoff(self):
        graph = chain_graph(10)
        assert distance(graph, 0, 9, cutoff=5) == UNREACHABLE
        assert distance(graph, 0, 4, cutoff=5) == 4

    def test_distance_with_excluded_vertex(self):
        graph = from_edges([(0, 1), (1, 2), (0, 3), (3, 4), (4, 2)])
        assert distance(graph, 0, 2) == 2
        assert distance(graph, 0, 2, excluded=1) == 3

    def test_has_path_within(self):
        graph = chain_graph(6)
        assert has_path_within(graph, 0, 3, 3)
        assert not has_path_within(graph, 0, 5, 3)


class TestShortestPath:
    def test_shortest_path_on_grid(self):
        graph = grid_graph(3, 3)
        path = shortest_path(graph, 0, 8)
        assert path is not None
        assert path[0] == 0 and path[-1] == 8
        assert len(path) - 1 == 4

    def test_shortest_path_respects_forbidden_vertices(self):
        graph = from_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
        path = shortest_path(graph, 0, 3, forbidden=[1])
        assert path == [0, 2, 3]

    def test_shortest_path_none_when_disconnected(self):
        graph = from_edges([(0, 1), (2, 3)])
        assert shortest_path(graph, 0, 3) is None

    def test_shortest_path_source_equals_target(self):
        graph = chain_graph(3)
        assert shortest_path(graph, 1, 1) == [1]

    def test_shortest_path_none_when_source_forbidden(self):
        graph = chain_graph(3)
        assert shortest_path(graph, 0, 2, forbidden=[0]) is None
