"""Unit tests for the CSR DiGraph."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import EdgeNotFoundError, GraphError, VertexNotFoundError
from repro.graph.builder import GraphBuilder, from_edges
from repro.graph.digraph import DiGraph


@pytest.fixture()
def small_graph():
    builder = GraphBuilder()
    builder.add_edge("a", "b", weight=2.0, label="x")
    builder.add_edge("a", "c", weight=1.0, label="y")
    builder.add_edge("b", "c", weight=3.0, label="x")
    builder.add_edge("c", "d")
    return builder.build()


class TestBasicProperties:
    def test_vertex_and_edge_counts(self, small_graph):
        assert small_graph.num_vertices == 4
        assert small_graph.num_edges == 4
        assert len(small_graph) == 4

    def test_vertices_iterates_dense_range(self, small_graph):
        assert list(small_graph.vertices()) == [0, 1, 2, 3]

    def test_has_vertex_bounds(self, small_graph):
        assert small_graph.has_vertex(0)
        assert small_graph.has_vertex(3)
        assert not small_graph.has_vertex(4)
        assert not small_graph.has_vertex(-1)

    def test_edges_iterator_matches_count(self, small_graph):
        edges = list(small_graph.edges())
        assert len(edges) == small_graph.num_edges
        assert len(set(edges)) == len(edges)


class TestAdjacency:
    def test_out_neighbors(self, small_graph):
        a = small_graph.to_internal("a")
        neighbors = {small_graph.to_external(int(v)) for v in small_graph.neighbors(a)}
        assert neighbors == {"b", "c"}

    def test_in_neighbors(self, small_graph):
        c = small_graph.to_internal("c")
        sources = {small_graph.to_external(int(v)) for v in small_graph.in_neighbors(c)}
        assert sources == {"a", "b"}

    def test_degrees(self, small_graph):
        a = small_graph.to_internal("a")
        c = small_graph.to_internal("c")
        assert small_graph.out_degree(a) == 2
        assert small_graph.in_degree(a) == 0
        assert small_graph.out_degree(c) == 1
        assert small_graph.in_degree(c) == 2
        assert small_graph.degree(c) == 3

    def test_degree_vectors_sum_to_edge_count(self, small_graph):
        assert int(small_graph.out_degrees().sum()) == small_graph.num_edges
        assert int(small_graph.in_degrees().sum()) == small_graph.num_edges

    def test_has_edge(self, small_graph):
        a = small_graph.to_internal("a")
        b = small_graph.to_internal("b")
        d = small_graph.to_internal("d")
        assert small_graph.has_edge(a, b)
        assert not small_graph.has_edge(b, a)
        assert not small_graph.has_edge(d, a)
        assert not small_graph.has_edge(a, 99)

    def test_neighbors_of_unknown_vertex_raises(self, small_graph):
        with pytest.raises(VertexNotFoundError):
            small_graph.neighbors(17)
        with pytest.raises(VertexNotFoundError):
            small_graph.in_neighbors(-3)


class TestEdgeAttributes:
    def test_edge_weight_lookup(self, small_graph):
        a = small_graph.to_internal("a")
        b = small_graph.to_internal("b")
        assert small_graph.edge_weight(a, b) == pytest.approx(2.0)

    def test_missing_weight_defaults_to_one(self, small_graph):
        c = small_graph.to_internal("c")
        d = small_graph.to_internal("d")
        assert small_graph.edge_weight(c, d) == pytest.approx(1.0)

    def test_edge_weight_of_missing_edge_raises(self, small_graph):
        a = small_graph.to_internal("a")
        d = small_graph.to_internal("d")
        with pytest.raises(EdgeNotFoundError):
            small_graph.edge_weight(d, a)

    def test_edge_weight_default_argument(self, small_graph):
        a = small_graph.to_internal("a")
        d = small_graph.to_internal("d")
        assert small_graph.edge_weight(d, a, default=0.5) == pytest.approx(0.5)

    def test_edge_labels(self, small_graph):
        a = small_graph.to_internal("a")
        b = small_graph.to_internal("b")
        c = small_graph.to_internal("c")
        assert small_graph.edge_label(a, b) == "x"
        assert small_graph.edge_label(a, c) == "y"

    def test_unlabelled_graph_reports_flags(self):
        graph = from_edges([(0, 1), (1, 2)])
        assert not graph.has_edge_weights
        assert not graph.has_edge_labels
        assert graph.edge_weight(0, 1) == pytest.approx(1.0)
        assert graph.edge_label(0, 1) is None


class TestExternalIds:
    def test_round_trip(self, small_graph):
        for name in ("a", "b", "c", "d"):
            internal = small_graph.to_internal(name)
            assert small_graph.to_external(internal) == name

    def test_unknown_external_id(self, small_graph):
        with pytest.raises(VertexNotFoundError):
            small_graph.to_internal("zzz")

    def test_translate_path(self, small_graph):
        path = [small_graph.to_internal(v) for v in ("a", "b", "c")]
        assert small_graph.translate_path(path) == ("a", "b", "c")

    def test_dense_int_ids_have_no_mapping_overhead(self):
        graph = from_edges([(0, 1), (1, 2), (2, 3)])
        assert not graph.has_external_ids
        assert graph.to_internal(2) == 2
        assert graph.to_external(2) == 2


class TestDerivedGraphs:
    def test_reverse_swaps_directions(self, small_graph):
        reversed_graph = small_graph.reverse()
        a = small_graph.to_internal("a")
        b = small_graph.to_internal("b")
        assert reversed_graph.has_edge(b, a)
        assert not reversed_graph.has_edge(a, b)
        assert reversed_graph.num_edges == small_graph.num_edges

    def test_reverse_twice_is_identity(self, small_graph):
        double = small_graph.reverse().reverse()
        assert set(double.edges()) == set(small_graph.edges())

    def test_filter_edges_by_weight(self, small_graph):
        filtered = small_graph.filter_edges(lambda u, v, w, lbl: w >= 2.0)
        a = filtered.to_internal("a")
        b = filtered.to_internal("b")
        c = filtered.to_internal("c")
        assert filtered.has_edge(a, b)
        assert not filtered.has_edge(a, c)
        assert filtered.num_vertices == small_graph.num_vertices

    def test_copy_with_edges(self):
        graph = from_edges([(0, 1), (1, 2)])
        extended = graph.copy_with_edges([(2, 0)])
        assert extended.has_edge(2, 0)
        assert extended.num_edges == 3

    def test_filter_edges_preserves_weights_labels_and_ids(self, small_graph):
        filtered = small_graph.filter_edges(lambda u, v, w, lbl: lbl in ("x", "y"))
        a = filtered.to_internal("a")
        b = filtered.to_internal("b")
        c = filtered.to_internal("c")
        d = filtered.to_internal("d")
        assert filtered.num_edges == 3
        assert filtered.edge_weight(a, b) == pytest.approx(2.0)
        assert filtered.edge_label(a, b) == "x"
        assert filtered.edge_weight(b, c) == pytest.approx(3.0)
        assert filtered.edge_label(a, c) == "y"
        assert not filtered.has_edge(c, d)
        assert filtered.to_external(a) == "a"

    def test_filter_edges_keep_all_and_drop_all(self, small_graph):
        everything = small_graph.filter_edges(lambda u, v, w, lbl: True)
        assert set(everything.edges()) == set(small_graph.edges())
        nothing = small_graph.filter_edges(lambda u, v, w, lbl: False)
        assert nothing.num_edges == 0
        assert nothing.num_vertices == small_graph.num_vertices

    def test_filter_edges_keeps_reverse_adjacency_consistent(self, small_graph):
        filtered = small_graph.filter_edges(lambda u, v, w, lbl: w >= 2.0)
        for u, v in filtered.edges():
            assert u in (int(w) for w in filtered.in_neighbors(v))
        assert sum(filtered.in_degrees()) == filtered.num_edges

    def test_copy_with_edges_preserves_attributes_and_external_ids(self, small_graph):
        a = small_graph.to_internal("a")
        d = small_graph.to_internal("d")
        extended = small_graph.copy_with_edges([(d, a)])
        assert extended.num_edges == small_graph.num_edges + 1
        assert extended.has_edge(d, a)
        assert extended.to_external(a) == "a"
        assert extended.edge_weight(a, extended.to_internal("b")) == pytest.approx(2.0)
        assert extended.edge_label(a, extended.to_internal("b")) == "x"
        # Added edges default to weight 1.0 on weighted graphs.
        assert extended.edge_weight(d, a) == pytest.approx(1.0)

    def test_copy_with_edges_ignores_duplicates_and_self_loops(self):
        graph = from_edges([(0, 1), (1, 2)])
        extended = graph.copy_with_edges([(0, 1), (1, 1), (2, 0), (2, 0)])
        assert extended.num_edges == 3
        assert extended.has_edge(2, 0)

    def test_copy_with_edges_rejects_unknown_vertices(self, small_graph):
        with pytest.raises(VertexNotFoundError):
            small_graph.copy_with_edges([(0, 99)])


class TestConstructionValidation:
    def test_inconsistent_indptr_rejected(self):
        with pytest.raises(GraphError):
            DiGraph(
                2,
                np.array([0, 1, 3]),
                np.array([1]),
                np.array([0, 0, 1]),
                np.array([0]),
            )

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(GraphError):
            DiGraph(-1, np.array([0]), np.array([]), np.array([0]), np.array([]))

    def test_mismatched_vertex_ids_rejected(self):
        with pytest.raises(GraphError):
            DiGraph(
                2,
                np.array([0, 1, 2]),
                np.array([1, 0]),
                np.array([0, 1, 2]),
                np.array([1, 0]),
                vertex_ids=["only-one"],
            )

    def test_empty_graph(self):
        graph = DiGraph(0, np.array([0]), np.array([]), np.array([0]), np.array([]))
        assert graph.num_vertices == 0
        assert graph.num_edges == 0

    def test_unsorted_rows_rejected(self):
        # The binary-search edge lookup relies on sorted adjacency rows.
        with pytest.raises(GraphError):
            DiGraph(
                3,
                np.array([0, 2, 2, 2]),
                np.array([2, 1]),
                np.array([0, 0, 1, 2]),
                np.array([0, 0]),
            )


class TestEdgeLookup:
    def test_edge_index_via_binary_search(self, small_graph):
        indptr, indices = small_graph.out_csr()
        for u in small_graph.vertices():
            for position in range(int(indptr[u]), int(indptr[u + 1])):
                assert small_graph._edge_index(u, int(indices[position])) == position

    def test_missing_edges_return_none(self, small_graph):
        a = small_graph.to_internal("a")
        d = small_graph.to_internal("d")
        assert small_graph._edge_index(d, a) is None

    def test_csr_accessors_expose_storage(self, small_graph):
        out_indptr, out_indices = small_graph.out_csr()
        in_indptr, in_indices = small_graph.in_csr()
        assert len(out_indptr) == small_graph.num_vertices + 1
        assert len(out_indices) == small_graph.num_edges
        assert len(in_indptr) == small_graph.num_vertices + 1
        assert len(in_indices) == small_graph.num_edges

    def test_edge_sources_expands_indptr(self, small_graph):
        sources = small_graph.edge_sources()
        assert len(sources) == small_graph.num_edges
        assert list(sources) == [u for u, _ in small_graph.edges()]
