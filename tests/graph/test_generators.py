"""Unit tests for the synthetic graph generators."""

from __future__ import annotations

import math

import pytest

from repro.errors import GraphError
from repro.graph.generators import (
    bipartite_graph,
    chain_graph,
    complete_graph,
    erdos_renyi,
    grid_graph,
    layered_graph,
    power_law_graph,
    small_world_graph,
)
from repro.graph.properties import summarize


class TestErdosRenyi:
    def test_edge_count_close_to_target(self):
        graph = erdos_renyi(200, 4.0, seed=1)
        assert graph.num_vertices == 200
        assert abs(graph.num_edges - 800) <= 80

    def test_deterministic_for_seed(self):
        first = erdos_renyi(100, 3.0, seed=9)
        second = erdos_renyi(100, 3.0, seed=9)
        assert set(first.edges()) == set(second.edges())

    def test_different_seeds_differ(self):
        first = erdos_renyi(100, 3.0, seed=1)
        second = erdos_renyi(100, 3.0, seed=2)
        assert set(first.edges()) != set(second.edges())

    def test_no_self_loops(self):
        graph = erdos_renyi(50, 5.0, seed=3)
        assert all(u != v for u, v in graph.edges())

    def test_weighted_and_labeled_generation(self):
        graph = erdos_renyi(30, 2.0, seed=4, weighted=True, labels=["a", "b"])
        assert graph.has_edge_weights
        assert graph.has_edge_labels
        u, v = next(iter(graph.edges()))
        assert 0.0 <= graph.edge_weight(u, v) <= 1.0
        assert graph.edge_label(u, v) in {"a", "b"}

    def test_invalid_parameters(self):
        with pytest.raises(GraphError):
            erdos_renyi(1, 2.0)
        with pytest.raises(GraphError):
            erdos_renyi(10, 0.0)


class TestPowerLaw:
    def test_degree_skew(self):
        graph = power_law_graph(500, 5.0, exponent=2.0, seed=11)
        degrees = sorted((graph.out_degree(v) + graph.in_degree(v) for v in graph.vertices()),
                         reverse=True)
        average = sum(degrees) / len(degrees)
        # The top hub should dominate the average degree by a wide margin.
        assert degrees[0] > 4 * average

    def test_deterministic_for_seed(self):
        first = power_law_graph(100, 4.0, seed=5)
        second = power_law_graph(100, 4.0, seed=5)
        assert set(first.edges()) == set(second.edges())

    def test_invalid_exponent(self):
        with pytest.raises(GraphError):
            power_law_graph(10, 2.0, exponent=1.0)


class TestStructuredGenerators:
    def test_complete_graph_edge_count(self):
        graph = complete_graph(6)
        assert graph.num_edges == 6 * 5

    def test_chain_graph(self):
        graph = chain_graph(5)
        assert graph.num_edges == 4
        assert graph.has_edge(0, 1) and graph.has_edge(3, 4)

    def test_grid_graph_path_count_is_binomial(self):
        from tests.helpers import brute_force_paths

        rows, cols = 3, 4
        graph = grid_graph(rows, cols)
        paths = brute_force_paths(graph, 0, rows * cols - 1, rows + cols)
        assert len(paths) == math.comb(rows + cols - 2, rows - 1)

    def test_layered_graph_source_and_sink(self):
        graph = layered_graph(3, 4, seed=2)
        assert graph.to_internal("source") == 0
        sink = graph.to_internal("sink")
        assert graph.out_degree(sink) == 0
        assert graph.in_degree(0) == 0

    def test_layered_graph_full_connectivity_path_count(self):
        from tests.helpers import brute_force_paths

        width, layers = 3, 3
        graph = layered_graph(layers, width)
        sink = graph.to_internal("sink")
        paths = brute_force_paths(graph, 0, sink, layers + 1)
        assert len(paths) == width ** layers

    def test_small_world_degree(self):
        graph = small_world_graph(100, 3, rewire_probability=0.2, seed=8)
        assert graph.num_edges <= 100 * 3
        assert graph.num_edges >= 100 * 3 * 0.8  # a few rewires may collide

    def test_bipartite_graph_sides(self):
        graph = bipartite_graph(10, 15, connection_probability=0.5, seed=6)
        assert graph.num_vertices == 25
        # No edge stays within the left side or within the right side.
        for u, v in graph.edges():
            assert (u < 10) != (v < 10)

    def test_invalid_structured_parameters(self):
        with pytest.raises(GraphError):
            grid_graph(0, 3)
        with pytest.raises(GraphError):
            layered_graph(0, 2)
        with pytest.raises(GraphError):
            small_world_graph(2, 1)
        with pytest.raises(GraphError):
            bipartite_graph(1, 1, connection_probability=0.0)


class TestSummaries:
    def test_summary_consistency(self):
        graph = erdos_renyi(80, 3.0, seed=12)
        summary = summarize(graph)
        assert summary.num_vertices == 80
        assert summary.num_edges == graph.num_edges
        assert summary.avg_degree == pytest.approx(graph.num_edges / 80)
        assert 0.0 < summary.density < 1.0
