"""Unit tests for graph summary statistics."""

from __future__ import annotations

import pytest

from repro.graph.builder import from_edges
from repro.graph.generators import complete_graph
from repro.graph.properties import GraphSummary, degree_histogram, summarize


class TestSummarize:
    def test_simple_graph(self):
        graph = from_edges([(0, 1), (0, 2), (1, 2)])
        summary = summarize(graph)
        assert summary.num_vertices == 3
        assert summary.num_edges == 3
        assert summary.avg_degree == pytest.approx(1.0)
        assert summary.max_out_degree == 2
        assert summary.max_in_degree == 2

    def test_complete_graph_density_is_one(self):
        summary = summarize(complete_graph(5))
        assert summary.density == pytest.approx(1.0)

    def test_as_row_keys(self):
        row = summarize(from_edges([(0, 1)])).as_row()
        assert set(row) == {"|V|", "|E|", "d_avg", "d_out_max", "d_in_max", "density"}

    def test_summary_is_frozen(self):
        summary = summarize(from_edges([(0, 1)]))
        with pytest.raises(AttributeError):
            summary.num_vertices = 5  # type: ignore[misc]


class TestDegreeHistogram:
    def test_out_histogram(self):
        graph = from_edges([(0, 1), (0, 2), (1, 2)])
        histogram = degree_histogram(graph, direction="out")
        assert histogram == {0: 1, 1: 1, 2: 1}

    def test_in_histogram(self):
        graph = from_edges([(0, 1), (0, 2), (1, 2)])
        histogram = degree_histogram(graph, direction="in")
        assert histogram == {0: 1, 1: 1, 2: 1}

    def test_invalid_direction(self):
        graph = from_edges([(0, 1)])
        with pytest.raises(ValueError):
            degree_histogram(graph, direction="sideways")
