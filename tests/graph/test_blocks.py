"""Unit tests for the delta + varint block codec behind CompressedStore."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.graph.blocks import (
    BLOCK_VALUES,
    CompressedIndices,
    decode_varints,
    encode_blocked,
    encode_varints,
)
from repro.graph.generators import erdos_renyi


def _random_csr(num_rows, max_degree, num_cols, seed):
    rng = np.random.default_rng(seed)
    rows = []
    for _ in range(num_rows):
        degree = int(rng.integers(0, max_degree + 1))
        rows.append(np.unique(rng.integers(0, num_cols, size=degree)))
    indptr = np.zeros(num_rows + 1, dtype=np.int64)
    indptr[1:] = np.cumsum([len(r) for r in rows])
    indices = (
        np.concatenate(rows).astype(np.int64) if indptr[-1] else np.empty(0, dtype=np.int64)
    )
    return indptr, indices


class TestVarints:
    def test_round_trip_boundary_values(self):
        # 0 and 127 fit in one byte; 128 needs two; the rest exercise
        # every continuation length up to the int64 maximum.
        values = np.array(
            [0, 1, 127, 128, 129, 16383, 16384, 2**31 - 1, 2**40, 2**62], dtype=np.int64
        )
        stream, ends = encode_varints(values)
        assert np.array_equal(decode_varints(stream), values)
        # Byte sizing: ceil(bit_length / 7), minimum 1.
        sizes = np.diff(np.concatenate([[0], ends]))
        expected = [max(1, -(-int(v).bit_length() // 7)) for v in values]
        assert sizes.tolist() == expected

    def test_round_trip_random(self):
        rng = np.random.default_rng(7)
        values = rng.integers(0, 2**45, size=5000).astype(np.int64)
        stream, _ = encode_varints(values)
        assert np.array_equal(decode_varints(stream), values)

    def test_empty_round_trip(self):
        stream, ends = encode_varints(np.empty(0, dtype=np.int64))
        assert stream.size == 0 and ends.size == 0
        assert decode_varints(stream).size == 0

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            encode_varints(np.array([3, -1], dtype=np.int64))

    def test_truncated_stream_rejected(self):
        stream, _ = encode_varints(np.array([300], dtype=np.int64))
        with pytest.raises(ValueError, match="truncated"):
            decode_varints(stream[:-1])


class TestEncodeBlocked:
    def test_empty_csr(self):
        parts = encode_blocked(np.zeros(5, dtype=np.int64), np.empty(0, dtype=np.int64))
        assert parts["stream"].size == 0
        assert parts["anchors"].size == 0
        assert parts["offsets"].tolist() == [0]
        assert parts["starts"].tolist() == [0]

    def test_blocks_never_span_rows(self):
        indptr, indices = _random_csr(40, 3 * BLOCK_VALUES, 10_000, seed=11)
        parts = encode_blocked(indptr, indices)
        starts = parts["starts"][:-1]
        # Every row boundary with a non-empty row must start a block.
        row_starts = indptr[:-1][np.diff(indptr) > 0]
        assert np.isin(row_starts, starts).all()

    def test_anchors_are_block_first_values(self):
        indptr, indices = _random_csr(30, 200, 5_000, seed=3)
        parts = encode_blocked(indptr, indices)
        assert np.array_equal(parts["anchors"], indices[parts["starts"][:-1]])

    def test_unsorted_rows_rejected(self):
        indptr = np.array([0, 3], dtype=np.int64)
        indices = np.array([5, 2, 9], dtype=np.int64)
        with pytest.raises(ValueError, match="ascending"):
            encode_blocked(indptr, indices)


class TestCompressedIndices:
    @pytest.fixture(scope="class")
    def csr(self):
        graph = erdos_renyi(400, 12.0, seed=21)
        indptr, indices = graph.out_csr()
        return np.asarray(indptr), np.asarray(indices)

    @pytest.fixture(scope="class")
    def compressed(self, csr):
        indptr, indices = csr
        return CompressedIndices.from_csr(indptr, indices)

    def test_full_decode_matches(self, csr, compressed):
        _, indices = csr
        assert np.array_equal(np.asarray(compressed), indices)
        assert np.array_equal(compressed.materialize(), indices)
        assert len(compressed) == len(indices)
        assert compressed.shape == indices.shape

    def test_every_row_slice_matches(self, csr, compressed):
        indptr, indices = csr
        for row in range(len(indptr) - 1):
            lo, hi = int(indptr[row]), int(indptr[row + 1])
            assert np.array_equal(compressed[lo:hi], indices[lo:hi])

    def test_integer_and_negative_indexing(self, csr, compressed):
        _, indices = csr
        for position in (0, 1, len(indices) // 2, len(indices) - 1):
            assert compressed[position] == indices[position]
        assert compressed[-1] == indices[-1]
        with pytest.raises(IndexError):
            compressed[len(indices)]

    def test_strided_slice(self, csr, compressed):
        _, indices = csr
        assert np.array_equal(compressed[10:500:7], indices[10:500:7])

    def test_negative_step_slices(self, csr, compressed):
        _, indices = csr
        for key in (
            slice(None, None, -1),
            slice(None, None, -3),
            slice(500, 10, -1),
            slice(500, 10, -7),
            slice(-1, None, -2),
            slice(5, 5, -1),
            slice(10, 500, -1),  # empty: start below stop
        ):
            assert np.array_equal(compressed[key], indices[key]), key

    def test_gather_unsorted_with_repeats(self, csr, compressed):
        _, indices = csr
        rng = np.random.default_rng(5)
        positions = rng.integers(0, len(indices), size=3000)
        assert np.array_equal(compressed[positions], indices[positions])

    def test_boolean_mask(self, csr, compressed):
        _, indices = csr
        mask = (np.arange(len(indices)) % 3) == 0
        assert np.array_equal(compressed[mask], indices[mask])
        with pytest.raises(IndexError, match="mask length"):
            compressed[mask[:-1]]

    def test_byte_accounting(self, csr, compressed):
        _, indices = csr
        assert compressed.logical_nbytes == indices.nbytes
        assert 0 < compressed.nbytes < compressed.logical_nbytes
        parts = compressed.arrays()
        assert compressed.nbytes == sum(a.nbytes for a in parts.values())

    def test_copy_is_writable_and_detached(self, csr, compressed):
        _, indices = csr
        copied = compressed.copy()
        assert copied.flags.writeable
        copied[0] = -1
        assert compressed[0] == indices[0]

    def test_decode_range_cache_is_read_only(self, compressed):
        values = compressed.decode_range(0, BLOCK_VALUES)
        with pytest.raises(ValueError):
            values[0] = 99

    def test_single_row_graph(self):
        # One row longer than several blocks, including gap 1 runs.
        indices = np.unique(np.concatenate([np.arange(100), np.arange(200, 1000, 3)]))
        indptr = np.array([0, len(indices)], dtype=np.int64)
        compressed = CompressedIndices.from_csr(indptr, indices.astype(np.int64))
        assert np.array_equal(np.asarray(compressed), indices)

    def test_empty_indices(self):
        compressed = CompressedIndices.from_csr(
            np.zeros(4, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        assert len(compressed) == 0
        assert np.asarray(compressed).size == 0
        assert compressed.logical_nbytes == 0

    def test_concurrent_readers_never_see_torn_cache(self, csr):
        # The thread execution backend runs many workers over one graph
        # object; the single-slot decode cache must never pair a fresh
        # buffer with a stale range.  Hammer one instance from several
        # threads with overlapping row reads and gathers and compare every
        # result against the flat reference.
        indptr, indices = csr
        compressed = CompressedIndices.from_csr(indptr, indices)
        rows = len(indptr) - 1
        errors = []
        barrier = threading.Barrier(4)

        def worker(seed):
            rng = np.random.default_rng(seed)
            barrier.wait()
            for _ in range(400):
                row = int(rng.integers(0, rows))
                lo, hi = int(indptr[row]), int(indptr[row + 1])
                if not np.array_equal(compressed[lo:hi], indices[lo:hi]):
                    errors.append(f"slice mismatch at row {row}")
                    return
                positions = rng.integers(0, len(indices), size=64)
                if not np.array_equal(compressed[positions], indices[positions]):
                    errors.append(f"gather mismatch (seed {seed})")
                    return

        threads = [threading.Thread(target=worker, args=(seed,)) for seed in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
