"""Unit tests for the mutable DynamicGraph."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.errors import EdgeNotFoundError, GraphError, VertexNotFoundError
from repro.graph.builder import GraphBuilder, from_edges
from repro.graph.dynamic import DynamicGraph
from repro.graph.generators import erdos_renyi


class TestMutation:
    def test_add_edge_and_counts(self):
        graph = DynamicGraph()
        assert graph.add_edge(1, 2)
        assert graph.add_edge(2, 3)
        assert not graph.add_edge(1, 2)  # duplicate
        assert not graph.add_edge(4, 4)  # self loop
        assert graph.num_vertices == 4
        assert graph.num_edges == 2

    def test_remove_edge(self):
        graph = DynamicGraph.from_edges([(1, 2), (2, 3)])
        graph.remove_edge(1, 2)
        assert not graph.has_edge(1, 2)
        assert graph.num_edges == 1
        with pytest.raises(EdgeNotFoundError):
            graph.remove_edge(1, 2)

    def test_remove_vertex_removes_incident_edges(self):
        graph = DynamicGraph.from_edges([(1, 2), (2, 3), (3, 1)])
        graph.remove_vertex(2)
        assert not graph.has_vertex(2)
        assert graph.num_edges == 1
        assert graph.has_edge(3, 1)

    def test_remove_unknown_vertex_raises(self):
        graph = DynamicGraph()
        with pytest.raises(VertexNotFoundError):
            graph.remove_vertex("missing")

    def test_neighbors(self):
        graph = DynamicGraph.from_edges([(1, 2), (1, 3), (4, 1)])
        assert graph.neighbors(1) == {2, 3}
        assert graph.in_neighbors(1) == {4}
        with pytest.raises(VertexNotFoundError):
            graph.neighbors(99)

    def test_apply_updates(self):
        graph = DynamicGraph.from_edges([(1, 2)])
        applied = graph.apply_updates(
            [("add", 2, 3), ("add", 1, 2), ("remove", 1, 2), ("remove", 5, 6)]
        )
        assert applied == [("add", 2, 3), ("remove", 1, 2)]
        with pytest.raises(GraphError):
            graph.apply_updates([("rename", 1, 2)])


class TestSnapshot:
    def test_snapshot_matches_dynamic_state(self):
        graph = DynamicGraph.from_edges([("a", "b"), ("b", "c")])
        graph.add_edge("c", "a")
        snapshot = graph.snapshot()
        assert snapshot.num_vertices == 3
        assert snapshot.num_edges == 3
        a, b = snapshot.to_internal("a"), snapshot.to_internal("b")
        assert snapshot.has_edge(a, b)

    def test_snapshot_keeps_vertex_ids_stable_across_growth(self):
        graph = DynamicGraph.from_edges([("a", "b")])
        first = graph.snapshot()
        graph.add_edge("b", "c")
        second = graph.snapshot()
        assert first.to_internal("a") == second.to_internal("a")
        assert first.to_internal("b") == second.to_internal("b")

    def test_snapshot_of_empty_graph_raises(self):
        with pytest.raises(GraphError):
            DynamicGraph().snapshot()

    def test_snapshot_preserves_attributes(self):
        graph = DynamicGraph()
        graph.add_edge("a", "b", weight=7.0, label="wire")
        snapshot = graph.snapshot()
        a, b = snapshot.to_internal("a"), snapshot.to_internal("b")
        assert snapshot.edge_weight(a, b) == 7.0
        assert snapshot.edge_label(a, b) == "wire"

    def test_from_graph_round_trip(self):
        original = from_edges([(0, 1), (1, 2), (2, 0)])
        dynamic = DynamicGraph.from_graph(original)
        snapshot = dynamic.snapshot()
        assert set(snapshot.edges()) == set(original.edges())


def _loop_from_graph(graph):
    """Reference per-edge copy, the pre-vectorisation ``from_graph``."""
    dynamic = DynamicGraph()
    for v in graph.vertices():
        dynamic.add_vertex(graph.to_external(v))
    for u, v in graph.edges():
        dynamic.add_edge(graph.to_external(u), graph.to_external(v))
    return dynamic


def _loop_snapshot(dynamic):
    """Reference per-edge snapshot via GraphBuilder's scalar path."""
    builder = GraphBuilder()
    for vertex in dynamic.vertices():
        builder.add_vertex(vertex)
    for source, target in dynamic.edges():
        builder.add_edge(source, target)
    return builder.build()


def _csr_equal(left, right):
    return all(
        np.array_equal(a, b)
        for a, b in zip(left.out_csr() + left.in_csr(), right.out_csr() + right.in_csr())
    )


class TestBulkFromGraph:
    """The vectorised copy-on-write ``from_graph`` / ``snapshot`` path."""

    def test_round_trip_matches_loop_version(self):
        graph = erdos_renyi(500, 4.0, seed=7)
        fast = DynamicGraph.from_graph(graph).snapshot()
        loop = _loop_snapshot(_loop_from_graph(graph))
        assert _csr_equal(fast, loop)

    def test_round_trip_matches_loop_version_after_mutation(self):
        graph = erdos_renyi(500, 4.0, seed=7)
        fast_dyn = DynamicGraph.from_graph(graph)
        loop_dyn = _loop_from_graph(graph)
        for dyn in (fast_dyn, loop_dyn):
            dyn.add_edge(3, 499)
            edge = next(iter(sorted(dyn.neighbors(0))), None)
            if edge is not None:
                dyn.remove_edge(0, edge)
        assert fast_dyn.num_edges == loop_dyn.num_edges
        assert _csr_equal(fast_dyn.snapshot(), _loop_snapshot(loop_dyn))

    def test_pending_copy_reads_match_materialised(self):
        graph = erdos_renyi(200, 3.0, seed=11)
        pending = DynamicGraph.from_graph(graph)
        thawed = DynamicGraph.from_graph(graph)
        assert pending.num_vertices == thawed.num_vertices == graph.num_vertices
        assert pending.num_edges == graph.num_edges
        thawed._thaw()
        assert pending.neighbors(5) == thawed.neighbors(5)
        assert pending.in_neighbors(5) == thawed.in_neighbors(5)
        assert sorted(pending.edges()) == sorted(thawed.edges())

    def test_50k_edge_round_trip_is_10x_faster_than_loop(self):
        graph = erdos_renyi(12_500, 4.0, seed=1)
        assert graph.num_edges >= 50_000 * 0.95

        def best_of(fn, reps=3):
            times = []
            for _ in range(reps):
                start = time.perf_counter()
                fn()
                times.append(time.perf_counter() - start)
            return min(times)

        loop_s = best_of(lambda: _loop_snapshot(_loop_from_graph(graph)))
        fast_s = best_of(lambda: DynamicGraph.from_graph(graph).snapshot())
        assert loop_s > 10 * fast_s, (
            f"bulk round trip only {loop_s / fast_s:.1f}x faster "
            f"(loop {loop_s * 1e3:.1f} ms, bulk {fast_s * 1e3:.1f} ms)"
        )
