"""Unit tests for the mutable DynamicGraph."""

from __future__ import annotations

import pytest

from repro.errors import EdgeNotFoundError, GraphError, VertexNotFoundError
from repro.graph.builder import from_edges
from repro.graph.dynamic import DynamicGraph


class TestMutation:
    def test_add_edge_and_counts(self):
        graph = DynamicGraph()
        assert graph.add_edge(1, 2)
        assert graph.add_edge(2, 3)
        assert not graph.add_edge(1, 2)  # duplicate
        assert not graph.add_edge(4, 4)  # self loop
        assert graph.num_vertices == 4
        assert graph.num_edges == 2

    def test_remove_edge(self):
        graph = DynamicGraph.from_edges([(1, 2), (2, 3)])
        graph.remove_edge(1, 2)
        assert not graph.has_edge(1, 2)
        assert graph.num_edges == 1
        with pytest.raises(EdgeNotFoundError):
            graph.remove_edge(1, 2)

    def test_remove_vertex_removes_incident_edges(self):
        graph = DynamicGraph.from_edges([(1, 2), (2, 3), (3, 1)])
        graph.remove_vertex(2)
        assert not graph.has_vertex(2)
        assert graph.num_edges == 1
        assert graph.has_edge(3, 1)

    def test_remove_unknown_vertex_raises(self):
        graph = DynamicGraph()
        with pytest.raises(VertexNotFoundError):
            graph.remove_vertex("missing")

    def test_neighbors(self):
        graph = DynamicGraph.from_edges([(1, 2), (1, 3), (4, 1)])
        assert graph.neighbors(1) == {2, 3}
        assert graph.in_neighbors(1) == {4}
        with pytest.raises(VertexNotFoundError):
            graph.neighbors(99)

    def test_apply_updates(self):
        graph = DynamicGraph.from_edges([(1, 2)])
        applied = graph.apply_updates(
            [("add", 2, 3), ("add", 1, 2), ("remove", 1, 2), ("remove", 5, 6)]
        )
        assert applied == [("add", 2, 3), ("remove", 1, 2)]
        with pytest.raises(GraphError):
            graph.apply_updates([("rename", 1, 2)])


class TestSnapshot:
    def test_snapshot_matches_dynamic_state(self):
        graph = DynamicGraph.from_edges([("a", "b"), ("b", "c")])
        graph.add_edge("c", "a")
        snapshot = graph.snapshot()
        assert snapshot.num_vertices == 3
        assert snapshot.num_edges == 3
        a, b = snapshot.to_internal("a"), snapshot.to_internal("b")
        assert snapshot.has_edge(a, b)

    def test_snapshot_keeps_vertex_ids_stable_across_growth(self):
        graph = DynamicGraph.from_edges([("a", "b")])
        first = graph.snapshot()
        graph.add_edge("b", "c")
        second = graph.snapshot()
        assert first.to_internal("a") == second.to_internal("a")
        assert first.to_internal("b") == second.to_internal("b")

    def test_snapshot_of_empty_graph_raises(self):
        with pytest.raises(GraphError):
            DynamicGraph().snapshot()

    def test_snapshot_preserves_attributes(self):
        graph = DynamicGraph()
        graph.add_edge("a", "b", weight=7.0, label="wire")
        snapshot = graph.snapshot()
        a, b = snapshot.to_internal("a"), snapshot.to_internal("b")
        assert snapshot.edge_weight(a, b) == 7.0
        assert snapshot.edge_label(a, b) == "wire"

    def test_from_graph_round_trip(self):
        original = from_edges([(0, 1), (1, 2), (2, 0)])
        dynamic = DynamicGraph.from_graph(original)
        snapshot = dynamic.snapshot()
        assert set(snapshot.edges()) == set(original.edges())
