"""Unit tests for edge-list reading and writing."""

from __future__ import annotations

import gzip

import pytest

from repro.errors import GraphError
from repro.graph.builder import from_edges
from repro.graph.io import parse_edge_lines, read_edge_list, write_edge_list


class TestParseEdgeLines:
    def test_skips_comments_and_blank_lines(self):
        lines = ["# header", "", "% other header", "// c-style", "1 2", "2 3"]
        parsed = list(parse_edge_lines(lines))
        assert [(p[0], p[1]) for p in parsed] == [("1", "2"), ("2", "3")]

    def test_comma_separated_values(self):
        parsed = list(parse_edge_lines(["a,b", "b,c"]))
        assert [(p[0], p[1]) for p in parsed] == [("a", "b"), ("b", "c")]

    def test_weighted_parsing(self):
        parsed = list(parse_edge_lines(["1 2 0.5"], weighted=True))
        assert parsed[0][2] == pytest.approx(0.5)

    def test_labeled_parsing(self):
        parsed = list(parse_edge_lines(["1 2 pays"], labeled=True))
        assert parsed[0][3] == "pays"

    def test_weighted_and_labeled(self):
        parsed = list(parse_edge_lines(["1 2 3.5 transfer"], weighted=True, labeled=True))
        assert parsed[0][2] == pytest.approx(3.5)
        assert parsed[0][3] == "transfer"

    def test_missing_column_raises(self):
        with pytest.raises(GraphError):
            list(parse_edge_lines(["only-one-token"]))
        with pytest.raises(GraphError):
            list(parse_edge_lines(["1 2"], weighted=True))

    def test_invalid_weight_raises(self):
        with pytest.raises(GraphError):
            list(parse_edge_lines(["1 2 notanumber"], weighted=True))


class TestReadWriteRoundTrip:
    def test_round_trip_plain(self, tmp_path):
        graph = from_edges([(0, 1), (1, 2), (2, 0), (0, 3)])
        path = tmp_path / "graph.txt"
        written = write_edge_list(graph, path, header="round trip test")
        assert written == graph.num_edges
        loaded = read_edge_list(path)

        def external_edges(g):
            return {(g.to_external(u), g.to_external(v)) for u, v in g.edges()}

        assert external_edges(loaded) == external_edges(graph)

    def test_round_trip_gzip(self, tmp_path):
        graph = from_edges([(0, 1), (1, 2)])
        path = tmp_path / "graph.txt.gz"
        write_edge_list(graph, path)
        loaded = read_edge_list(path)
        assert loaded.num_edges == 2
        # The file really is gzip-compressed.
        with gzip.open(path, "rt") as handle:
            assert "0 1" in handle.read()

    def test_round_trip_with_weights_and_labels(self, tmp_path):
        from repro.graph.builder import GraphBuilder

        builder = GraphBuilder()
        builder.add_edge("x", "y", weight=2.5, label="wire")
        builder.add_edge("y", "z", weight=0.25, label="ach")
        path = tmp_path / "weighted.txt"
        write_edge_list(builder.build(), path, include_weights=True, include_labels=True)
        loaded = read_edge_list(path, weighted=True, labeled=True, as_int_ids=False)
        x, y = loaded.to_internal("x"), loaded.to_internal("y")
        assert loaded.edge_weight(x, y) == pytest.approx(2.5)
        assert loaded.edge_label(x, y) == "wire"

    def test_read_string_ids(self, tmp_path):
        path = tmp_path / "names.txt"
        path.write_text("# names\nalice bob\nbob carol\n")
        graph = read_edge_list(path)
        assert graph.num_vertices == 3
        assert graph.has_edge(graph.to_internal("alice"), graph.to_internal("bob"))

    def test_read_numeric_ids_are_compacted(self, tmp_path):
        path = tmp_path / "sparse_ids.txt"
        path.write_text("1000 2000\n2000 3000\n")
        graph = read_edge_list(path)
        assert graph.num_vertices == 3
        assert graph.to_external(graph.to_internal(1000)) == 1000

    def test_read_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing here\n")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_self_loops_dropped_on_read(self, tmp_path):
        path = tmp_path / "loops.txt"
        path.write_text("1 1\n1 2\n")
        graph = read_edge_list(path)
        assert graph.num_edges == 1


class TestNpzSnapshots:
    def test_public_api_is_deprecated(self, tmp_path):
        from repro.graph.generators import erdos_renyi
        from repro.graph.io import load_npz, save_npz

        graph = erdos_renyi(10, 2.0, seed=1)
        with pytest.warns(DeprecationWarning, match="save_snapshot"):
            path = save_npz(graph, tmp_path / "dep.npz")
        with pytest.warns(DeprecationWarning, match="load_snapshot"):
            loaded = load_npz(path)
        assert loaded.num_edges == graph.num_edges

    def test_round_trip_structure(self, tmp_path):
        from repro.graph.generators import erdos_renyi
        from repro.graph.io import _load_npz as load_npz
        from repro.graph.io import _save_npz as save_npz

        graph = erdos_renyi(40, 3.0, seed=2)
        path = save_npz(graph, tmp_path / "graph.npz")
        loaded = load_npz(path)
        assert loaded.num_vertices == graph.num_vertices
        assert loaded.num_edges == graph.num_edges
        assert list(loaded.edges()) == list(graph.edges())

    def test_round_trip_attributes_and_ids(self, tmp_path):
        from repro.graph.builder import GraphBuilder
        from repro.graph.io import _load_npz as load_npz
        from repro.graph.io import _save_npz as save_npz

        builder = GraphBuilder()
        builder.add_edge("a", "b", weight=2.0, label="x")
        builder.add_edge("b", "c", weight=0.5, label=None)
        builder.add_edge("c", "a", weight=1.0, label="")
        graph = builder.build()
        path = save_npz(graph, tmp_path / "attrs.npz")
        loaded = load_npz(path)
        a, b = loaded.to_internal("a"), loaded.to_internal("b")
        assert loaded.edge_weight(a, b) == pytest.approx(2.0)
        assert loaded.edge_label(a, b) == "x"
        b, c = loaded.to_internal("b"), loaded.to_internal("c")
        assert loaded.edge_label(b, c, default=None) is None
        c, a = loaded.to_internal("c"), loaded.to_internal("a")
        assert loaded.edge_label(c, a) == ""

    def test_load_into_shared_memory_store(self, tmp_path):
        from repro.graph.generators import erdos_renyi
        from repro.graph.io import _load_npz as load_npz
        from repro.graph.io import _save_npz as save_npz

        graph = erdos_renyi(30, 3.0, seed=4)
        path = save_npz(graph, tmp_path / "shared.npz")
        loaded = load_npz(path, store="shared_memory")
        try:
            assert loaded.store_backend == "shared_memory"
            assert list(loaded.edges()) == list(graph.edges())
            handle = loaded.share()
            from repro.graph.digraph import DiGraph

            twin = DiGraph.from_handle(handle)
            try:
                assert twin.num_edges == graph.num_edges
            finally:
                twin.close_store()
        finally:
            loaded.close_store(unlink=True)

    def test_exotic_vertex_ids_are_rejected(self, tmp_path):
        from repro.graph.builder import GraphBuilder
        from repro.graph.io import _save_npz as save_npz

        builder = GraphBuilder()
        builder.add_edge(("tuple", 1), ("tuple", 2))
        with pytest.raises(GraphError):
            save_npz(builder.build(), tmp_path / "bad.npz")
