"""Unit tests for the cardinality-estimation accuracy harness (Figure 18)."""

from __future__ import annotations

import pytest

from repro.bench.cardinality import estimation_accuracy


class TestEstimationAccuracy:
    def test_figure18_series_shape(self, bench_graph, bench_workload, bench_settings):
        accuracy = estimation_accuracy(
            bench_graph, bench_workload, ks=(3, 4), settings=bench_settings
        )
        assert set(accuracy) == {3, 4}
        for k, row in accuracy.items():
            assert row.k == k
            assert row.actual >= 0.0
            assert row.full_fledged >= 0.0
            assert row.preliminary >= 0.0

    def test_full_fledged_upper_bounds_actual(self, bench_graph, bench_workload, bench_settings):
        """The walk count can only over-estimate the simple-path count."""
        accuracy = estimation_accuracy(
            bench_graph, bench_workload, ks=(4,), settings=bench_settings
        )
        row = accuracy[4]
        assert row.full_fledged >= row.actual
        assert row.full_fledged_ratio >= 1.0

    def test_estimates_grow_with_k(self, bench_graph, bench_workload, bench_settings):
        accuracy = estimation_accuracy(
            bench_graph, bench_workload, ks=(3, 5), settings=bench_settings
        )
        assert accuracy[5].actual >= accuracy[3].actual
        assert accuracy[5].full_fledged >= accuracy[3].full_fledged

    def test_as_row(self, bench_graph, bench_workload, bench_settings):
        accuracy = estimation_accuracy(
            bench_graph, bench_workload, ks=(3,), settings=bench_settings
        )
        row = accuracy[3].as_row()
        assert {"k", "#results", "full_fledged", "preliminary"} == set(row)

    def test_ratio_handles_zero_actual(self):
        from repro.bench.cardinality import EstimationAccuracy

        empty = EstimationAccuracy(k=3, actual=0.0, full_fledged=0.0, preliminary=0.0)
        assert empty.full_fledged_ratio == 1.0
        nonzero = EstimationAccuracy(k=3, actual=0.0, full_fledged=5.0, preliminary=0.0)
        assert nonzero.full_fledged_ratio == float("inf")
