"""Unit tests for the memory-consumption harness (Table 7)."""

from __future__ import annotations

import pytest

from repro.bench.memory import memory_consumption


class TestMemoryConsumption:
    def test_table7_shape(self, bench_graph, bench_workload, bench_settings):
        footprints = memory_consumption(
            bench_graph, bench_workload, ks=(3, 4), settings=bench_settings
        )
        assert set(footprints) == {3, 4}
        for k, footprint in footprints.items():
            assert footprint.k == k
            assert footprint.index_mb > 0.0
            assert footprint.partial_results_mb >= 0.0

    def test_memory_grows_with_k(self, bench_graph, bench_workload, bench_settings):
        footprints = memory_consumption(
            bench_graph, bench_workload, ks=(3, 5), settings=bench_settings
        )
        assert footprints[5].index_mb >= footprints[3].index_mb
        assert footprints[5].partial_results_mb >= footprints[3].partial_results_mb

    def test_as_row(self, bench_graph, bench_workload, bench_settings):
        footprints = memory_consumption(
            bench_graph, bench_workload, ks=(3,), settings=bench_settings
        )
        assert {"k", "index_mb", "partial_results_mb"} == set(footprints[3].as_row())
