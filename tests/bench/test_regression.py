"""Unit tests for the log-log regression analysis (Figures 10 and 11)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.regression import index_size_vs_time, loglog_fit, result_count_vs_time


class TestLogLogFit:
    def test_perfect_power_law_recovered(self):
        xs = np.array([1.0, 10.0, 100.0, 1000.0])
        ys = 3.0 * xs**2
        fit = loglog_fit(xs, ys)
        assert fit.slope == pytest.approx(2.0, abs=1e-9)
        assert 10**fit.intercept == pytest.approx(3.0, rel=1e-6)
        assert fit.correlation == pytest.approx(1.0, abs=1e-9)

    def test_non_positive_values_dropped(self):
        fit = loglog_fit([0.0, 1.0, 10.0, 100.0], [5.0, 1.0, 10.0, 100.0])
        assert fit.num_points == 3

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            loglog_fit([1.0], [2.0])
        with pytest.raises(ValueError):
            loglog_fit([0.0, -1.0], [1.0, 1.0])

    def test_as_row(self):
        row = loglog_fit([1.0, 10.0], [2.0, 20.0]).as_row()
        assert {"slope", "intercept", "correlation", "points"} == set(row)


class TestFigureHarnesses:
    def test_index_size_points_and_fit(self, bench_graph, bench_workload, bench_settings):
        points, fit = index_size_vs_time(
            bench_graph, bench_workload, settings=bench_settings
        )
        assert len(points) >= 2
        assert fit.num_points == len(points)
        assert all(size > 0 and ms > 0 for size, ms in points)

    def test_result_count_points_and_fit(self, bench_graph, bench_workload, bench_settings):
        points, fit = result_count_vs_time(
            bench_graph, bench_workload, settings=bench_settings
        )
        assert len(points) >= 2
        assert all(count > 0 for count, _ in points)

    def test_result_count_correlates_positively(self, bench_graph, bench_workload, bench_settings):
        """Figure 11's observation: more results means more enumeration time."""
        _, fit = result_count_vs_time(bench_graph, bench_workload, settings=bench_settings)
        assert fit.correlation > 0.0
