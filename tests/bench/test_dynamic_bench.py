"""Unit tests for the dynamic-graph latency harness (Figure 8)."""

from __future__ import annotations

import pytest

from repro.bench.dynamic import dynamic_latency
from repro.bench.runner import BenchmarkSettings
from repro.workloads.dynamic import build_dynamic_workload


@pytest.fixture(scope="module")
def dynamic_workload(request):
    bench_graph = request.getfixturevalue("bench_graph")
    return build_dynamic_workload(bench_graph, update_fraction=0.05, max_updates=5, k=4, seed=11)


class TestDynamicLatency:
    def test_figure8_series_shape(self, dynamic_workload):
        settings = BenchmarkSettings(time_limit_seconds=1.0, response_k=10, store_paths=False)
        latency = dynamic_latency(
            dynamic_workload, ["IDX-DFS"], ks=(3, 4), settings=settings, percentile=99.9
        )
        assert set(latency) == {3, 4}
        for per_algorithm in latency.values():
            assert per_algorithm["IDX-DFS"] > 0.0

    def test_multiple_algorithms(self, dynamic_workload):
        settings = BenchmarkSettings(time_limit_seconds=1.0, response_k=10, store_paths=False)
        latency = dynamic_latency(
            dynamic_workload, ["IDX-DFS", "BC-DFS"], ks=(4,), settings=settings
        )
        assert set(latency[4]) == {"IDX-DFS", "BC-DFS"}
