"""Unit tests for the per-phase breakdown harnesses (Figures 6, 7, 17; Table 4)."""

from __future__ import annotations

import pytest

from repro.bench.breakdown import (
    detailed_metrics,
    phase_breakdown,
    query_time_distribution,
    technique_breakdown,
)


class TestPhaseBreakdown:
    def test_figure7_shape(self, bench_graph, bench_workload, bench_settings):
        breakdown = phase_breakdown(
            bench_graph, bench_workload, ["IDX-DFS", "BC-DFS"], ks=(3, 4),
            settings=bench_settings,
        )
        assert set(breakdown) == {3, 4}
        for per_algorithm in breakdown.values():
            assert set(per_algorithm) == {"IDX-DFS", "BC-DFS"}
            for timings in per_algorithm.values():
                assert timings["preprocessing_ms"] >= 0.0
                assert timings["enumeration_ms"] >= 0.0


class TestTechniqueBreakdown:
    def test_figure17_columns(self, bench_graph, bench_workload, bench_settings):
        breakdown = technique_breakdown(
            bench_graph, bench_workload, ks=(4,), settings=bench_settings
        )
        row = breakdown[4]
        expected_columns = {
            "bfs_ms",
            "index_construction_ms",
            "optimization_ms",
            "dfs_ms",
            "join_ms",
            "idx_dfs_throughput",
            "idx_join_throughput",
        }
        assert expected_columns == set(row)
        # BFS is a sub-phase of index construction.
        assert row["bfs_ms"] <= row["index_construction_ms"] + 1e-6
        assert row["idx_dfs_throughput"] > 0.0


class TestDetailedMetrics:
    def test_figure6_shape_and_index_advantage(self, bench_graph, bench_workload, bench_settings):
        metrics = detailed_metrics(
            bench_graph, bench_workload, ["BC-DFS", "IDX-DFS"], ks=(4,),
            settings=bench_settings,
        )
        row = metrics[4]
        assert row["BC-DFS"]["results"] == pytest.approx(row["IDX-DFS"]["results"])
        # The light-weight index reads no more edges than the raw adjacency scan.
        assert row["IDX-DFS"]["edges"] <= row["BC-DFS"]["edges"]


class TestQueryTimeDistribution:
    def test_table4_fractions(self, bench_graph, bench_workload, bench_settings):
        distribution = query_time_distribution(
            bench_graph, bench_workload, ["IDX-DFS"], ks=(4,), settings=bench_settings
        )
        row = distribution[4]["IDX-DFS"]
        assert 0.0 <= row["fast"] <= 1.0
        assert 0.0 <= row["slow"] <= 1.0
        assert row["fast"] + row["slow"] <= 1.0 + 1e-9
