"""Unit tests for benchmark metric aggregation."""

from __future__ import annotations

import pytest

from repro.bench.metrics import (
    aggregate,
    cumulative_distribution,
    latency_percentile,
    latency_summary,
    time_distribution,
)
from repro.core.result import EnumerationStats, Phase, QueryResult


def _result(ms: float, count: int = 10, timed_out: bool = False, response_ms=None):
    stats = EnumerationStats(timed_out=timed_out)
    stats.add_phase(Phase.TOTAL, ms / 1e3)
    return QueryResult(
        source=0,
        target=1,
        k=4,
        algorithm="IDX-DFS",
        count=count,
        paths=None,
        stats=stats,
        response_seconds=None if response_ms is None else response_ms / 1e3,
    )


class TestAggregate:
    def test_mean_query_time(self):
        metrics = aggregate([_result(10.0), _result(30.0)])
        assert metrics.mean_query_ms == pytest.approx(20.0)
        assert metrics.num_queries == 2
        assert metrics.total_results == 20

    def test_throughput_mean(self):
        metrics = aggregate([_result(1000.0, count=100), _result(1000.0, count=300)])
        assert metrics.mean_throughput == pytest.approx(200.0)

    def test_response_time_mixes_probe_and_total(self):
        metrics = aggregate([_result(50.0, response_ms=5.0), _result(30.0)])
        # First query responded at 5 ms; second had fewer than response_k
        # results so its full query time counts.
        assert metrics.mean_response_ms == pytest.approx((5.0 + 30.0) / 2)

    def test_timeout_fraction(self):
        metrics = aggregate([_result(10.0), _result(10.0, timed_out=True)])
        assert metrics.timeout_fraction == pytest.approx(0.5)

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            aggregate([])

    def test_as_row_keys(self):
        row = aggregate([_result(10.0)]).as_row()
        assert {"algorithm", "query_ms", "throughput", "response_ms", "timeout_frac"} <= set(row)


class TestDistributions:
    def test_latency_percentile(self):
        results = [_result(float(ms)) for ms in range(1, 101)]
        assert latency_percentile(results, 50.0) == pytest.approx(50.5, abs=1.0)
        assert latency_percentile(results, 99.9) > 99.0

    def test_latency_percentile_prefers_response_probe(self):
        results = [_result(1000.0, response_ms=1.0) for _ in range(10)]
        assert latency_percentile(results, 99.9) == pytest.approx(1.0)

    def test_time_distribution_buckets(self):
        results = [_result(10.0), _result(10.0), _result(90.0), _result(200.0, timed_out=True)]
        buckets = time_distribution(results, fast_threshold_ms=60.0, slow_threshold_ms=120.0)
        assert buckets["fast"] == pytest.approx(0.5)
        assert buckets["slow"] == pytest.approx(0.25)

    def test_cumulative_distribution_monotone(self):
        results = [_result(float(ms)) for ms in (5, 1, 9, 3, 7)]
        cdf = cumulative_distribution(results)
        times = [point[0] for point in cdf]
        fractions = [point[1] for point in cdf]
        assert times == sorted(times)
        assert fractions[-1] == pytest.approx(1.0)

    def test_cumulative_distribution_downsampling(self):
        results = [_result(float(ms)) for ms in range(200)]
        cdf = cumulative_distribution(results, points=20)
        assert len(cdf) == 20

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            latency_percentile([])
        with pytest.raises(ValueError):
            time_distribution([], fast_threshold_ms=1.0, slow_threshold_ms=2.0)
        with pytest.raises(ValueError):
            cumulative_distribution([])


class TestLatencySummary:
    def test_default_keys_and_values(self):
        values = [float(ms) for ms in range(1, 1001)]
        summary = latency_summary(values)
        assert set(summary) == {
            "count", "mean_ms", "p50_ms", "p95_ms", "p99_ms", "p99_9_ms", "max_ms",
        }
        assert summary["count"] == 1000
        assert summary["mean_ms"] == pytest.approx(500.5)
        assert summary["p50_ms"] == pytest.approx(500.5)
        assert summary["p95_ms"] == pytest.approx(950.05, abs=1.0)
        assert summary["max_ms"] == pytest.approx(1000.0)
        # Percentiles are monotone by construction.
        assert summary["p50_ms"] <= summary["p95_ms"] <= summary["p99_ms"] <= summary["p99_9_ms"]

    def test_matches_latency_percentile_on_the_same_series(self):
        import numpy as np

        rng = np.random.default_rng(5)
        values = rng.exponential(scale=10.0, size=500).tolist()
        summary = latency_summary(values)
        assert summary["p99_9_ms"] == pytest.approx(float(np.percentile(values, 99.9)))

    def test_custom_percentiles(self):
        summary = latency_summary([1.0, 2.0, 3.0, 4.0], percentiles=(25.0, 75.0))
        assert set(summary) == {"count", "mean_ms", "p25_ms", "p75_ms", "max_ms"}

    def test_single_sample(self):
        summary = latency_summary([42.0])
        assert summary["p50_ms"] == summary["p99_9_ms"] == summary["max_ms"] == 42.0

    def test_accepts_numpy_input(self):
        import numpy as np

        summary = latency_summary(np.asarray([5.0, 1.0, 3.0]))
        assert summary["count"] == 3
        assert summary["max_ms"] == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            latency_summary([])
