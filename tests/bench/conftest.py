"""Shared fixtures for the benchmark-harness tests: a small, fast workload."""

from __future__ import annotations

import pytest

from repro.bench.runner import BenchmarkSettings
from repro.graph.generators import power_law_graph
from repro.workloads.queries import QuerySetting, generate_query_set


@pytest.fixture(scope="package")
def bench_graph():
    """A small skewed graph so every harness test completes quickly."""
    return power_law_graph(250, 5.0, exponent=2.1, seed=99)


@pytest.fixture(scope="package")
def bench_workload(bench_graph):
    return generate_query_set(
        bench_graph,
        count=4,
        k=4,
        setting=QuerySetting.HIGH_HIGH,
        seed=0,
        graph_name="bench",
    )


@pytest.fixture(scope="package")
def bench_settings():
    return BenchmarkSettings(time_limit_seconds=1.0, response_k=10, store_paths=False)
