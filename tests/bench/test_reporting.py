"""Unit tests for the table/series text rendering."""

from __future__ import annotations

from repro.bench.reporting import (
    format_latency_summary,
    format_series,
    format_table,
    format_value,
    print_series,
    print_table,
)


class TestFormatValue:
    def test_scientific_float(self):
        assert format_value(0.228) == "2.28e-01"

    def test_plain_float(self):
        assert format_value(0.228, scientific=False) == "0.228"

    def test_none_and_bool(self):
        assert format_value(None) == "-"
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_integers_and_strings_pass_through(self):
        assert format_value(42) == "42"
        assert format_value("IDX-DFS") == "IDX-DFS"


class TestFormatTable:
    def test_columns_inferred_from_first_row(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 3, "b": None}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert "2.50e+00" in text
        assert "-" in lines[-1]

    def test_title_and_explicit_columns(self):
        text = format_table([{"x": 1, "y": 2}], columns=["y"], title="Table 3")
        assert text.startswith("Table 3")
        assert "x" not in text.splitlines()[1]

    def test_empty_rows(self):
        assert "(no rows)" in format_table([], title="Nothing")

    def test_alignment_is_consistent(self):
        rows = [{"name": "a", "value": 1}, {"name": "longer-name", "value": 22}]
        lines = format_table(rows).splitlines()
        assert len({len(line) for line in lines[1:]}) <= 2  # header sep + rows align


class TestFormatSeries:
    def test_series_by_k(self):
        series = {
            "BC-DFS": {3: 1.0, 4: 10.0},
            "IDX-DFS": {3: 0.5, 4: 2.0},
        }
        text = format_series(series, x_label="k", title="Figure 13")
        lines = text.splitlines()
        assert lines[0] == "Figure 13"
        assert lines[1].split() == ["k", "BC-DFS", "IDX-DFS"]
        assert len(lines) == 2 + 1 + 2  # title + header + separator + two rows

    def test_missing_points_rendered_as_dash(self):
        series = {"A": {3: 1.0}, "B": {4: 2.0}}
        text = format_series(series)
        assert "-" in text

    def test_empty_series(self):
        assert "(no series)" in format_series({})


class TestLatencySummaryRendering:
    def test_renders_summary_keys_in_order(self):
        from repro.bench.metrics import latency_summary

        summary = latency_summary([1.0, 2.0, 3.0, 10.0])
        rendered = format_latency_summary(summary, title="Latency (ms)")
        lines = rendered.splitlines()
        assert lines[0] == "Latency (ms)"
        header = lines[1].split()
        assert header == ["count", "mean_ms", "p50_ms", "p95_ms", "p99_ms", "p99_9_ms", "max_ms"]
        assert "10.000" in rendered  # plain (non-scientific) by default


class TestPrintHelpers:
    def test_print_table(self, capsys):
        print_table([{"a": 1}])
        captured = capsys.readouterr().out
        assert "a" in captured and captured.endswith("\n\n")

    def test_print_series(self, capsys):
        print_series({"A": {1: 2.0}})
        captured = capsys.readouterr().out
        assert "A" in captured
