"""Unit tests for the comparison harnesses (Tables 3, 5, 6 and Figures 13-15)."""

from __future__ import annotations

import pytest

from repro.bench.comparison import (
    outlier_split,
    overall_comparison,
    result_count_statistics,
    sweep_k,
)
from repro.bench.runner import run_workload


class TestOverallComparison:
    def test_all_algorithms_reported(self, bench_graph, bench_workload, bench_settings):
        metrics = overall_comparison(
            bench_graph, bench_workload, ["IDX-DFS", "IDX-JOIN", "PathEnum"],
            settings=bench_settings,
        )
        assert set(metrics) == {"IDX-DFS", "IDX-JOIN", "PathEnum"}
        for name, metric in metrics.items():
            assert metric.algorithm == name
            assert metric.num_queries == len(bench_workload)
            assert metric.mean_query_ms > 0.0

    def test_algorithms_agree_on_result_totals(self, bench_graph, bench_workload, bench_settings):
        metrics = overall_comparison(
            bench_graph, bench_workload, ["IDX-DFS", "BC-DFS"], settings=bench_settings
        )
        assert metrics["IDX-DFS"].total_results == metrics["BC-DFS"].total_results


class TestSweepK:
    def test_sweep_produces_one_row_per_k(self, bench_graph, bench_workload, bench_settings):
        sweep = sweep_k(
            bench_graph, bench_workload, ["IDX-DFS"], ks=(3, 4), settings=bench_settings
        )
        assert set(sweep) == {3, 4}
        assert "IDX-DFS" in sweep[3]

    def test_result_counts_grow_with_k(self, bench_graph, bench_workload, bench_settings):
        sweep = sweep_k(
            bench_graph, bench_workload, ["IDX-DFS"], ks=(3, 5), settings=bench_settings
        )
        assert sweep[5]["IDX-DFS"].total_results >= sweep[3]["IDX-DFS"].total_results


class TestOutlierSplit:
    def test_split_partitions_all_queries(self, bench_graph, bench_workload, bench_settings):
        results = run_workload("IDX-DFS", bench_graph, bench_workload, settings=bench_settings)
        outliers = outlier_split(results, short_threshold_ms=50.0)
        assert outliers.num_short + outliers.num_long == len(results)
        row = outliers.as_row()
        assert row["algorithm"] == "IDX-DFS"

    def test_empty_results_rejected(self):
        with pytest.raises(ValueError):
            outlier_split([], short_threshold_ms=1.0)


class TestResultCountStatistics:
    def test_table6_shape(self, bench_graph, bench_workload, bench_settings):
        stats = result_count_statistics(
            bench_graph, bench_workload, ks=(3, 4), settings=bench_settings
        )
        assert set(stats) == {3, 4}
        for k, row in stats.items():
            assert row["max"] >= row["avg"] >= 0.0

    def test_counts_monotone_in_k(self, bench_graph, bench_workload, bench_settings):
        stats = result_count_statistics(
            bench_graph, bench_workload, ks=(3, 5), settings=bench_settings
        )
        assert stats[5]["avg"] >= stats[3]["avg"]
        assert stats[5]["max"] >= stats[3]["max"]
