"""Unit tests for the join-plan spectrum analysis (Figure 9)."""

from __future__ import annotations

import pytest

from repro.bench.spectrum import spectrum_analysis


@pytest.fixture(scope="module")
def analysis(request):
    bench_graph = request.getfixturevalue("bench_graph")
    bench_workload = request.getfixturevalue("bench_workload")
    return spectrum_analysis(bench_graph, bench_workload.queries[0], time_limit_seconds=2.0)


class TestSpectrumAnalysis:
    def test_one_left_deep_and_k_minus_one_bushy_plans(self, analysis, bench_workload):
        k = bench_workload.k
        assert len(analysis.left_deep_points()) == 1
        assert len(analysis.bushy_points()) == k - 1
        cuts = {p.cut_position for p in analysis.bushy_points()}
        assert cuts == set(range(1, k))

    def test_every_plan_finds_the_same_results(self, analysis):
        counts = {p.results for p in analysis.points if not p.timed_out}
        assert len(counts) == 1

    def test_optimizer_overhead_is_measured(self, analysis):
        assert analysis.index_ms > 0.0
        assert analysis.optimization_ms > 0.0
        assert analysis.pathenum_total_ms > 0.0
        assert analysis.pathenum_plan in ("dfs", "join")

    def test_best_point_is_minimal(self, analysis):
        best = analysis.best_point()
        assert all(best.enumeration_ms <= p.enumeration_ms for p in analysis.points)

    def test_rows_are_serialisable(self, analysis):
        for point in analysis.points:
            row = point.as_row()
            assert {"plan", "cut", "enumeration_ms", "results", "timed_out"} == set(row)
