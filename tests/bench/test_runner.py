"""Unit tests for the workload runner and benchmark settings."""

from __future__ import annotations

import pytest

from repro.bench.runner import BenchmarkSettings, run_algorithms, run_workload
from repro.core.engine import IdxDfs


class TestBenchmarkSettings:
    def test_to_run_config(self):
        settings = BenchmarkSettings(time_limit_seconds=3.0, response_k=42, result_limit=7)
        config = settings.to_run_config()
        assert config.time_limit_seconds == 3.0
        assert config.response_k == 42
        assert config.result_limit == 7
        assert config.store_paths is False

    def test_scaled_copy(self):
        settings = BenchmarkSettings()
        scaled = settings.scaled(time_limit_seconds=0.5)
        assert scaled.time_limit_seconds == 0.5
        assert settings.time_limit_seconds == 2.0

    def test_settings_are_frozen(self):
        with pytest.raises(AttributeError):
            BenchmarkSettings().time_limit_seconds = 99  # type: ignore[misc]


class TestRunWorkload:
    def test_one_result_per_query(self, bench_graph, bench_workload, bench_settings):
        results = run_workload("IDX-DFS", bench_graph, bench_workload, settings=bench_settings)
        assert len(results) == len(bench_workload)
        assert all(r.algorithm == "IDX-DFS" for r in results)

    def test_accepts_algorithm_instances(self, bench_graph, bench_workload, bench_settings):
        results = run_workload(IdxDfs(), bench_graph, bench_workload, settings=bench_settings)
        assert len(results) == len(bench_workload)

    def test_settings_apply_to_every_query(self, bench_graph, bench_workload):
        settings = BenchmarkSettings(result_limit=1, store_paths=False)
        results = run_workload("IDX-DFS", bench_graph, bench_workload, settings=settings)
        assert all(r.count <= 1 for r in results)

    def test_run_algorithms_keys(self, bench_graph, bench_workload, bench_settings):
        per_algorithm = run_algorithms(
            ["IDX-DFS", "PathEnum"], bench_graph, bench_workload, settings=bench_settings
        )
        assert set(per_algorithm) == {"IDX-DFS", "PathEnum"}
        counts = {name: [r.count for r in results] for name, results in per_algorithm.items()}
        assert counts["IDX-DFS"] == counts["PathEnum"]
