"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.graph.builder import GraphBuilder
from repro.graph.io import write_edge_list

from tests.helpers import PAPER_FIGURE1_EDGES


@pytest.fixture()
def edge_list_file(tmp_path):
    builder = GraphBuilder()
    builder.add_edges(PAPER_FIGURE1_EDGES)
    path = tmp_path / "paper.txt"
    write_edge_list(builder.build(), path)
    return path


class TestParser:
    def test_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_query_requires_graph_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "--source", "a", "--target", "b", "-k", "4"])

    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.dataset == "gg"
        assert args.hops == 4

    def test_serve_requires_a_graph_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "--dataset", "ye"])
        assert args.port is None  # resolved to the protocol default later
        assert args.processes == 1
        assert args.threads == 2
        assert args.host == "127.0.0.1"

    def test_client_defaults(self):
        from repro.server.protocol import DEFAULT_PORT

        args = build_parser().parse_args(["client", "--dataset", "ye"])
        assert args.port == DEFAULT_PORT
        assert args.rate is None
        assert args.connections == 1


class TestQueryCommand:
    def test_query_on_edge_list(self, edge_list_file, capsys):
        exit_code = main(
            [
                "query",
                "--edge-list",
                str(edge_list_file),
                "--source",
                "s",
                "--target",
                "t",
                "-k",
                "4",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "paths: 5" in output
        assert "s -> v0 -> t" in output

    def test_query_count_only(self, edge_list_file, capsys):
        exit_code = main(
            [
                "query",
                "--edge-list",
                str(edge_list_file),
                "--source",
                "s",
                "--target",
                "t",
                "-k",
                "4",
                "--count-only",
                "--algorithm",
                "BC-DFS",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "algorithm: BC-DFS" in output
        assert "paths: 5" in output
        assert "->" not in output.replace("q(s, t, 4)", "")

    def test_query_with_limit(self, edge_list_file, capsys):
        main(
            [
                "query",
                "--edge-list",
                str(edge_list_file),
                "--source",
                "s",
                "--target",
                "t",
                "-k",
                "4",
                "--limit",
                "2",
            ]
        )
        assert "paths: 2" in capsys.readouterr().out

    def test_query_on_named_dataset(self, capsys):
        # ye is small and dense, so vertex 0 -> 1 within 3 hops exists.
        exit_code = main(
            [
                "query",
                "--dataset",
                "ye",
                "--source",
                "0",
                "--target",
                "1",
                "-k",
                "3",
                "--count-only",
            ]
        )
        assert exit_code == 0
        assert "paths:" in capsys.readouterr().out


class TestOtherCommands:
    def test_datasets_listing(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        assert "Soc-Epinions1" in output
        assert "Twitter-mpi" in output

    def test_bench_command_small(self, capsys):
        exit_code = main(
            [
                "bench",
                "--dataset",
                "gg",
                "-k",
                "3",
                "--queries",
                "3",
                "--algorithms",
                "IDX-DFS",
                "PathEnum",
                "--time-limit",
                "1.0",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "IDX-DFS" in output and "PathEnum" in output
        assert "query_ms" in output


class TestBatchQueryCommand:
    def test_explicit_pairs_on_edge_list(self, edge_list_file, capsys):
        exit_code = main(
            [
                "batch-query",
                "--edge-list",
                str(edge_list_file),
                "--pair",
                "s,t",
                "--pair",
                "v0,t",
                "-k",
                "4",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Batch of 2 queries" in output
        assert "reverse BFS runs: 1 for 2 queries" in output

    def test_generated_workload_on_dataset(self, capsys):
        exit_code = main(
            [
                "batch-query",
                "--dataset",
                "ye",
                "-k",
                "4",
                "--queries",
                "6",
                "--targets",
                "2",
                "--seed",
                "1",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Batch of 6 queries" in output
        assert "cache hit rate" in output

    def test_malformed_pair_is_an_error(self, edge_list_file, capsys):
        exit_code = main(
            [
                "batch-query",
                "--edge-list",
                str(edge_list_file),
                "--pair",
                "no-comma",
                "-k",
                "4",
            ]
        )
        assert exit_code == 2
        assert "invalid --pair" in capsys.readouterr().err

    def test_workers_flag_parses(self):
        args = build_parser().parse_args(
            ["batch-query", "--dataset", "ye", "-k", "3", "--workers", "4"]
        )
        assert args.workers == 4


class TestBenchBatchMode:
    def test_bench_batch_flag(self, capsys):
        exit_code = main(
            [
                "bench",
                "--dataset",
                "ye",
                "-k",
                "3",
                "--queries",
                "4",
                "--algorithms",
                "PathEnum",
                "--batch",
            ]
        )
        assert exit_code == 0
        assert "[batch]" in capsys.readouterr().out


class TestInfoCommand:
    def test_info_on_dataset(self, capsys):
        exit_code = main(["info", "ye"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "DiGraph(" in output
        assert "backend='heap'" in output
        assert "out_indices" in output
        assert "total" in output

    def test_info_on_edge_list(self, edge_list_file, capsys):
        exit_code = main(["info", str(edge_list_file)])
        assert exit_code == 0
        assert "DiGraph(" in capsys.readouterr().out

    def test_info_rejects_unknown_graph(self, capsys):
        exit_code = main(["info", "no-such-graph"])
        assert exit_code == 2
        assert "unknown graph" in capsys.readouterr().err


class TestProcessFlags:
    def test_batch_query_processes(self, capsys):
        exit_code = main(
            [
                "batch-query", "--dataset", "ye", "-k", "3",
                "--queries", "6", "--targets", "2", "--seed", "1",
                "--processes", "2",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "reverse BFS runs: 2" in output

    def test_workers_and_processes_are_exclusive(self, capsys):
        exit_code = main(
            [
                "batch-query", "--dataset", "ye", "-k", "3",
                "--workers", "2", "--processes", "2",
            ]
        )
        assert exit_code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_bench_processes_flag(self, capsys):
        exit_code = main(
            [
                "bench", "--dataset", "ye", "-k", "3",
                "--queries", "4", "--algorithms", "PathEnum",
                "--processes", "2",
            ]
        )
        assert exit_code == 0
        assert "2 processes" in capsys.readouterr().out
