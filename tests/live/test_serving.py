"""Live updates under serving traffic: MVCC epoch pinning end to end.

A reader that started on epoch N must drain results computed on epoch N even
while epoch N+1 publishes mid-flight; the next batch must see N+1.  A worker
holding a retired epoch's handle must fail loudly rather than serve stale
data.  The server's ``update`` frame must behave exactly like a local
``Database`` replaying the same batch.
"""

from __future__ import annotations

import asyncio
import os
import random

import pytest

from repro.api import Database, Q
from repro.errors import GraphError
from repro.graph.generators import erdos_renyi
from repro.live import LiveGraph
from repro.server.client import QueryClient
from repro.server.server import QueryServer
from repro.server.service import QueryService


@pytest.fixture(scope="module")
def base_graph():
    return erdos_renyi(150, 4.0, seed=11)


def _specs(graph, count=10, k=4, seed=9):
    rng = random.Random(seed)
    out = []
    while len(out) < count:
        s = rng.randrange(graph.num_vertices)
        t = rng.randrange(graph.num_vertices)
        if s != t:
            out.append(Q(s, t, k))
    return out


def _batch(graph, seed=21, count=6):
    """A batch of insertable (absent) edges."""
    rng = random.Random(seed)
    add = []
    while len(add) < count:
        u = rng.randrange(graph.num_vertices)
        v = rng.randrange(graph.num_vertices)
        if u != v and not graph.has_edge(u, v) and (u, v) not in add:
            add.append((u, v))
    return add


def _result_key(result):
    return (result.source, result.target, result.k, result.count, result.paths)


# CI runs the suite once per backend (REPRO_LIVE_BACKENDS=threads / processes);
# locally both run in one invocation.
_BACKENDS = [
    backend
    for backend in ("threads", "processes")
    if backend in os.environ.get("REPRO_LIVE_BACKENDS", "threads,processes")
]


class TestMidFlightMutation:
    @pytest.mark.parametrize("backend", _BACKENDS)
    def test_pinned_reader_drains_old_epoch_next_batch_sees_new(
        self, base_graph, backend
    ):
        specs = _specs(base_graph)
        add = _batch(base_graph)

        with Database(base_graph) as reference:
            old_expected = [_result_key(r) for r in reference.batch(specs).results()]
        with Database(base_graph) as reference:
            reference.insert_edges(add)
            new_expected = [_result_key(r) for r in reference.batch(specs).results()]
        assert old_expected != new_expected  # the batch must be observable

        with Database(base_graph, backend=backend, workers=2) as database:
            stream = iter(database.batch(specs))
            drained = [_result_key(next(stream))]
            # Publish epoch 1 while the epoch-0 reader is mid-flight.
            info = database.insert_edges(add)
            assert info["epoch"] == 1
            assert info["added"] == len(add)
            drained.extend(_result_key(r) for r in stream)
            assert drained == old_expected

            after = [_result_key(r) for r in database.batch(specs).results()]
            assert after == new_expected

    def test_epoch_counters_advance(self, base_graph):
        add = _batch(base_graph)
        with Database(base_graph, backend="threads", workers=2) as database:
            first = database.insert_edges(add[:3])
            second = database.remove_edges(add[:3])
            assert (first["epoch"], second["epoch"]) == (1, 2)
            stats = second["stats"]
            assert stats["epochs_published"] == 2
            assert stats["updates_applied"] == 6


class TestRetiredEpochHandle:
    def test_stale_worker_cannot_attach_retired_epoch(self, base_graph):
        add = _batch(base_graph)
        live = LiveGraph(base_graph, store="shared_memory")
        try:
            live.apply(add=add[:2])
            pin = live.pin()
            handle = live.epoch.handle()
            assert handle is not None

            # Epoch 1 retires when epoch 2 publishes, but the pinned reader
            # keeps the segment mapped: attaching still works.
            live.apply(add=add[2:4])
            attached = handle.attach()
            assert attached.num_edges == base_graph.num_edges + 2
            attached.close_store()

            # Once the last reader drains, the segment is released and a
            # stale worker holding the old handle must fail, not serve.
            pin.release()
            with pytest.raises(GraphError):
                handle.attach()
        finally:
            live.close()


class TestServerUpdateFrame:
    def _serve(self, graph, scenario, **service_kwargs):
        async def runner():
            service = QueryService(graph, **service_kwargs)
            server = QueryServer(service, port=0)
            await server.start()
            try:
                client = await QueryClient.connect(port=server.port)
                async with client:
                    return await scenario(client, service)
            finally:
                await server.close()
                await service.close()

        return asyncio.run(runner())

    def test_update_frame_matches_local_database(self, base_graph):
        specs = _specs(base_graph)
        add = _batch(base_graph)
        remove = sorted(base_graph.edges())[:3]

        with Database(base_graph) as reference:
            reference.insert_edges(add)
            reference.remove_edges(remove)
            expected = [_result_key(r) for r in reference.batch(specs).results()]

        async def scenario(client, service):
            first = await client.update(add=[list(e) for e in add])
            second = await client.update(remove=[list(e) for e in remove])
            stats = await client.stats()
            outcome = await client.run([list(q.spec().triple) for q in specs])
            return first, second, stats, outcome

        first, second, stats, outcome = self._serve(base_graph, scenario, threads=2)
        assert first["type"] == "updated"
        assert (first["epoch"], first["added"]) == (1, len(add))
        assert (second["epoch"], second["removed"]) == (2, len(remove))
        assert stats["current_epoch"] == 2
        assert stats["epochs_published"] == 2
        assert outcome.status == "done"
        actual = [
            (r.source, r.target, r.k, r.count, r.paths) for r in outcome.results
        ]
        assert actual == expected

    def test_malformed_update_frame_reports_error(self, base_graph):
        async def scenario(client, service):
            writer = client._writer
            from repro.server.protocol import write_frame

            await write_frame(
                writer, {"type": "update", "id": 7, "add": [[0, 1, 2]]}
            )
            frame = await client._control.get()
            return frame

        frame = self._serve(base_graph, scenario, threads=1)
        assert frame["type"] == "error"
        assert frame.get("id") == 7
