"""Incremental reverse-BFS distance repair vs. a fresh bounded BFS.

``repair_reverse_distances`` must agree exactly with recomputing the bounded
reverse BFS on the post-update graph — for pure insertions, pure removals,
mixed batches and randomized graphs — and must fall back to the full
recompute (still exact) when the affected region exceeds the budget.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.graph.builder import GraphBuilder
from repro.graph.generators import erdos_renyi
from repro.graph.traversal import bfs_distances_bounded
from repro.live import repair_reverse_distances


def _apply(graph, add, remove):
    edges = (set(graph.edges()) - set(remove)) | set(add)
    builder = GraphBuilder()
    for v in graph.vertices():
        builder.add_vertex(v)
    for u, v in sorted(edges):
        builder.add_edge(u, v)
    return builder.build()


def _random_batch(graph, rng, *, adds, removes):
    present = sorted(graph.edges())
    remove = rng.sample(present, min(removes, len(present)))
    add = []
    while len(add) < adds:
        u = rng.randrange(graph.num_vertices)
        v = rng.randrange(graph.num_vertices)
        if u != v and not graph.has_edge(u, v) and (u, v) not in add:
            add.append((u, v))
    return add, remove


def _check(graph, add, remove, target, cutoff, *, budget=None):
    old_dist = bfs_distances_bounded(graph, target, cutoff=cutoff, reverse=True)
    new_graph = _apply(graph, add, remove)
    dist, repaired = repair_reverse_distances(
        new_graph,
        old_dist,
        target,
        cutoff=cutoff,
        added=add,
        removed=remove,
        budget=budget,
    )
    expected = bfs_distances_bounded(new_graph, target, cutoff=cutoff, reverse=True)
    assert np.array_equal(dist, expected)
    # The input array is never mutated.
    assert np.array_equal(
        old_dist, bfs_distances_bounded(graph, target, cutoff=cutoff, reverse=True)
    )
    return repaired


class TestRepairExactness:
    @pytest.mark.parametrize("seed", range(6))
    def test_mixed_batches_match_fresh_bfs(self, seed):
        rng = random.Random(seed)
        graph = erdos_renyi(120, 4.0, seed=seed + 100)
        add, remove = _random_batch(graph, rng, adds=6, removes=6)
        for target in rng.sample(range(graph.num_vertices), 4):
            _check(graph, add, remove, target, cutoff=4)

    def test_pure_insertions(self):
        rng = random.Random(1)
        graph = erdos_renyi(100, 3.0, seed=8)
        add, _ = _random_batch(graph, rng, adds=10, removes=0)
        repaired = _check(graph, add, [], 5, cutoff=5)
        assert repaired

    def test_pure_removals(self):
        rng = random.Random(2)
        graph = erdos_renyi(100, 3.0, seed=9)
        _, remove = _random_batch(graph, rng, adds=0, removes=10)
        _check(graph, [], remove, 5, cutoff=5)

    def test_update_touching_target_itself(self):
        graph = erdos_renyi(60, 3.0, seed=4)
        target = next(
            v for v in range(graph.num_vertices) if len(graph.in_neighbors(v)) >= 2
        )
        incoming = [(int(u), target) for u in graph.in_neighbors(target)][:2]
        _check(graph, [], incoming, target, cutoff=4)


class TestBudgetFallback:
    def test_zero_budget_forces_full_recompute(self):
        rng = random.Random(3)
        graph = erdos_renyi(120, 4.0, seed=12)
        add, remove = _random_batch(graph, rng, adds=4, removes=8)
        repaired = _check(graph, add, remove, 3, cutoff=4, budget=0)
        assert not repaired

    def test_generous_budget_repairs_incrementally(self):
        rng = random.Random(4)
        graph = erdos_renyi(120, 4.0, seed=13)
        add, remove = _random_batch(graph, rng, adds=4, removes=4)
        repaired = _check(graph, add, remove, 3, cutoff=4, budget=10_000)
        assert repaired

    def test_fallback_is_still_exact_at_every_budget(self):
        rng = random.Random(5)
        graph = erdos_renyi(80, 4.0, seed=14)
        add, remove = _random_batch(graph, rng, adds=5, removes=10)
        for budget in (0, 1, 2, 5, 20, None):
            _check(graph, add, remove, 9, cutoff=4, budget=budget)
