"""Equivalence: every live-update path must match a from-scratch rebuild.

The invariant the whole subsystem rests on: applying a batch through the
overlay, through an epoch-publishing :class:`LiveGraph` (compacted or not)
or through ``Database.insert_edges``/``remove_edges`` yields a graph — and
query payloads — byte-identical to rebuilding the post-update graph with
:class:`GraphBuilder` and querying it fresh.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.api import Database, Q
from repro.core.native import jit_ready
from repro.graph.builder import GraphBuilder
from repro.graph.generators import erdos_renyi
from repro.live import DeltaOverlay, LiveGraph

requires_numba = pytest.mark.skipif(
    not jit_ready(), reason="Numba toolchain not importable"
)


@pytest.fixture(scope="module")
def base_graph():
    return erdos_renyi(150, 4.0, seed=11)


def _update_batches(graph, *, batches=3, per_batch=8, seed=5):
    """Seeded (add, remove) batches: removals present, additions absent."""
    rng = random.Random(seed)
    present = sorted(graph.edges())
    out = []
    removed_so_far = set()
    added_so_far = set()
    for _ in range(batches):
        candidates = [e for e in present if e not in removed_so_far]
        remove = rng.sample(candidates, per_batch)
        add = []
        while len(add) < per_batch:
            u = rng.randrange(graph.num_vertices)
            v = rng.randrange(graph.num_vertices)
            edge = (u, v)
            if u == v or graph.has_edge(u, v) or edge in added_so_far:
                continue
            add.append(edge)
            added_so_far.add(edge)
        removed_so_far.update(remove)
        out.append((add, remove))
    return out


def _rebuild(graph, batches):
    """Reference: replay every batch onto a plain edge set, rebuild from scratch."""
    edges = set(graph.edges())
    for add, remove in batches:
        edges -= set(remove)
        edges |= set(add)
    builder = GraphBuilder()
    for v in graph.vertices():
        builder.add_vertex(v)
    for u, v in sorted(edges):
        builder.add_edge(u, v)
    return builder.build()


def _csr_equal(left, right):
    return all(
        np.array_equal(a, b)
        for a, b in zip(
            left.out_csr() + left.in_csr(), right.out_csr() + right.in_csr()
        )
    )


class TestGraphEquivalence:
    def test_overlay_materialize_matches_rebuild(self, base_graph):
        batches = _update_batches(base_graph)
        overlay = DeltaOverlay(base_graph)
        for add, remove in batches:
            overlay.add_edges(add)
            overlay.remove_edges(remove)
        assert _csr_equal(overlay.materialize(), _rebuild(base_graph, batches))

    @pytest.mark.parametrize("compact_threshold", [1, 4, 10_000])
    def test_live_graph_epochs_match_rebuild(self, base_graph, compact_threshold):
        batches = _update_batches(base_graph)
        with LiveGraph(base_graph, compact_threshold=compact_threshold) as live:
            for add, remove in batches:
                info = live.apply(add=add, remove=remove)
                assert info["published"]
            assert _csr_equal(live.graph, _rebuild(base_graph, batches))
            stats = live.stats()
            assert stats["epochs_published"] == len(batches)
            if compact_threshold == 1:
                assert stats["compactions"] == len(batches)

    def test_noop_batch_publishes_nothing(self, base_graph):
        with LiveGraph(base_graph) as live:
            present = next(iter(base_graph.edges()))
            info = live.apply(add=[present], remove=[(0, 0)])
            assert not info["published"]
            assert live.epoch_id == 0


def _queries(graph, count=8, k=4, seed=3):
    rng = random.Random(seed)
    specs = []
    while len(specs) < count:
        s = rng.randrange(graph.num_vertices)
        t = rng.randrange(graph.num_vertices)
        if s != t:
            specs.append(Q(s, t, k))
    return specs


def _payload(database, specs, **options):
    return database.batch(specs, **options).payload_bytes()


class TestPayloadEquivalence:
    """Mutated-database payloads are byte-identical to a fresh rebuild."""

    @pytest.fixture(scope="class")
    def mutated_pair(self, base_graph):
        batches = _update_batches(base_graph)
        database = Database(base_graph)
        for add, remove in batches:
            database.insert_edges(add)
            database.remove_edges(remove)
        fresh = Database(_rebuild(base_graph, batches))
        yield database, fresh
        database.close()
        fresh.close()

    def test_payloads_identical(self, base_graph, mutated_pair):
        database, fresh = mutated_pair
        specs = _queries(base_graph)
        assert _payload(database, specs) == _payload(fresh, specs)

    def test_payloads_identical_under_limit_interruption(self, base_graph, mutated_pair):
        database, fresh = mutated_pair
        specs = _queries(base_graph)
        assert _payload(database, specs, limit=2) == _payload(fresh, specs, limit=2)

    def test_payloads_identical_under_deadline_interruption(self, base_graph, mutated_pair):
        database, fresh = mutated_pair
        specs = _queries(base_graph)
        # A zero deadline trips the cooperative check before any result is
        # emitted, on both sides — the interrupted payloads must still agree.
        assert _payload(database, specs, deadline=0.0) == _payload(
            fresh, specs, deadline=0.0
        )

    def test_payloads_identical_recursive_engine(self, base_graph, mutated_pair):
        database, fresh = mutated_pair
        specs = _queries(base_graph)
        assert _payload(database, specs, engine="recursive") == _payload(
            fresh, specs, engine="recursive"
        )

    @requires_numba
    @pytest.mark.parametrize("engine", ["kernel", "native"])
    def test_payloads_identical_jit_engines(self, base_graph, mutated_pair, engine):
        database, fresh = mutated_pair
        specs = _queries(base_graph)
        assert _payload(database, specs, engine=engine) == _payload(
            fresh, specs, engine=engine
        )
