"""Clean-shutdown contract: SIGTERM with work in flight exits 0, leaks nothing.

``repro serve`` and ``repro route`` both install SIGTERM handlers that wind
the stack down in order (listener, jobs, worker pool, shared memory).  A
supervisor keying restarts off exit codes must see 0 — and the host must
not accumulate ``/dev/shm`` segments or file descriptors across server
lifecycles.
"""

from __future__ import annotations

import asyncio
import os
import re
import signal
import subprocess
import sys
import time

import pytest

from repro.server.client import QueryClient


def _shm_segments():
    try:
        return {name for name in os.listdir("/dev/shm") if name.startswith("psm_")}
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


def _spawn(args, banner_pattern):
    """Start a CLI subprocess; return (process, banner match) once it's up."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.time() + 60
    line = ""
    while time.time() < deadline:
        line = process.stdout.readline()
        if not line and process.poll() is not None:
            raise AssertionError(f"process died before banner: rc={process.returncode}")
        match = re.search(banner_pattern, line)
        if match:
            return process, match
    process.kill()
    raise AssertionError(f"no banner within 60s (last line: {line!r})")


def _finish(process, timeout=60):
    """Drain stdout and wait; returns (returncode, output)."""
    try:
        output, _ = process.communicate(timeout=timeout)
    except subprocess.TimeoutExpired:
        process.kill()
        raise AssertionError("process ignored SIGTERM")
    return process.returncode, output


@pytest.mark.parametrize("backend_args", [
    ["--processes", "1", "--threads", "2"],
    ["--processes", "2"],
], ids=["thread", "process"])
def test_sigterm_with_job_in_flight_exits_zero(backend_args):
    before = _shm_segments()
    process, match = _spawn(
        ["serve", "--dataset", "up", "--port", "0", "--delay-ms", "30",
         *backend_args],
        r"serving on [\d.]+:(\d+)",
    )
    port = int(match.group(1))

    async def submit_and_terminate():
        client = await QueryClient.connect(port=port)
        try:
            await client.submit([[i, 100 + i, 3] for i in range(40)])
            await asyncio.sleep(0.3)  # queries are mid-service now
            process.send_signal(signal.SIGTERM)
            await asyncio.sleep(0.1)
        finally:
            await client.close()

    asyncio.run(submit_and_terminate())
    returncode, output = _finish(process)
    assert returncode == 0, output
    assert "shutdown complete" in output
    # Worker-pool shared memory is gone with the process.
    deadline = time.time() + 10
    while _shm_segments() - before and time.time() < deadline:
        time.sleep(0.1)
    assert _shm_segments() - before == set()


def test_router_sigterm_exits_zero():
    serve_proc, match = _spawn(
        ["serve", "--dataset", "up", "--port", "0", "--threads", "2"],
        r"serving on [\d.]+:(\d+)",
    )
    serve_port = int(match.group(1))
    try:
        route_proc, route_match = _spawn(
            ["route", "--shard", f"127.0.0.1:{serve_port}", "--port", "0"],
            r"routing on [\d.]+:(\d+)",
        )
        route_port = int(route_match.group(1))

        async def query_then_terminate():
            client = await QueryClient.connect(port=route_port)
            try:
                outcome = await client.run([[0, 100, 3]])
                assert outcome.status == "done"
                route_proc.send_signal(signal.SIGTERM)
            finally:
                await client.close()

        asyncio.run(query_then_terminate())
        returncode, output = _finish(route_proc)
        assert returncode == 0, output
        assert "router shutdown complete" in output
    finally:
        serve_proc.send_signal(signal.SIGTERM)
        returncode, output = _finish(serve_proc)
    assert returncode == 0, output


def test_server_lifecycles_do_not_leak_fds(graph, workload):
    # Three full boot/serve/close cycles in-process: the fd table ends
    # where it started (sockets, pipes, shm handles all released).
    from tests.chaos._support import serve_scenario

    async def scenario(client, server, service):
        return await client.run(workload)

    serve_scenario(graph, scenario, threads=1)  # warm import-time fds
    before = len(os.listdir("/proc/self/fd"))
    for _ in range(3):
        outcome = serve_scenario(graph, scenario, threads=1)
        assert outcome.status == "done"
    after = len(os.listdir("/proc/self/fd"))
    assert after <= before + 1  # +1 tolerates a lazily created logging fd
