"""Admission control and load shedding under sustained overload.

The server's contract: a submit that would blow the pending-work budget is
*refused immediately* with a typed ``overloaded`` frame carrying a
retry-after hint — never queued into unbounded latency — and a job whose
queue wait exceeded the delay budget is shed at drive time instead of
running long after its caller gave up.  Clients honour the hint with
backoff; shed work is counted, not silently dropped.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.errors import ServiceOverloaded
from repro.server.client import open_loop_load

from tests.chaos._support import SlowAlgorithm, serve_scenario


class TestAdmissionBudget:
    def test_over_budget_submit_answered_with_retry_hint(self, graph):
        queries = [[i, 100 + i, 2] for i in range(5)]

        async def scenario(client, server, service):
            first = await client.submit(queries)  # fills the budget
            second = await client.submit(queries)
            reject = [f async for f in client.frames(second)]
            drained = [f async for f in client.frames(first)]
            return reject, drained, service.stats()

        reject, drained, stats = serve_scenario(
            graph, scenario, algorithm=SlowAlgorithm(0.03), threads=1,
            max_pending_queries=5,
        )
        assert [f["type"] for f in reject] == ["overloaded"]
        assert reject[0]["retry_after_ms"] > 0
        assert reject[0]["pending"] == 5
        assert reject[0]["limit"] == 5
        # The admitted job is unharmed by the rejection.
        assert drained[-1]["type"] == "done"
        assert stats["jobs_shed"] == 1
        assert stats["queries_shed"] == 5
        assert stats["queries_admitted"] == 5
        assert stats["queue_depth_high_water"] == 5

    def test_run_with_retries_rides_out_the_burst(self, graph):
        big = [[i, 100 + i, 2] for i in range(6)]
        small = [[0, 50, 2]]

        async def scenario(client, server, service):
            blocker = await client.submit(big)
            outcome = await client.run_with_retries(
                small, overload_retries=20, rng=random.Random(0)
            )
            async for _ in client.frames(blocker):
                pass
            return outcome

        outcome = serve_scenario(
            graph, scenario, algorithm=SlowAlgorithm(0.02), threads=1,
            max_pending_queries=6,
        )
        assert outcome.status == "done"
        assert outcome.retries >= 1
        assert len(outcome.results) == 1

    def test_exhausted_retries_surface_the_final_reject(self, graph):
        big = [[i, 100 + i, 2] for i in range(6)]

        async def scenario(client, server, service):
            blocker = await client.submit(big)
            outcome = await client.run_with_retries(
                [[0, 50, 2]], overload_retries=0, rng=random.Random(0)
            )
            async for _ in client.frames(blocker):
                pass
            return outcome

        outcome = serve_scenario(
            graph, scenario, algorithm=SlowAlgorithm(0.05), threads=1,
            max_pending_queries=6,
        )
        assert outcome.status == "overloaded"
        assert outcome.info["retry_after_ms"] > 0


class TestQueueDelayShedding:
    def test_stale_queued_job_is_shed_not_run(self, graph):
        blocker = [[i, 100 + i, 2] for i in range(10)]

        async def scenario(client, server, service):
            first = await client.submit(blocker)
            second = await client.submit([[0, 50, 2]])
            reject = [f async for f in client.frames(second)]
            drained = [f async for f in client.frames(first)]
            return reject, drained, service.stats()

        reject, drained, stats = serve_scenario(
            graph, scenario, algorithm=SlowAlgorithm(0.04), threads=1,
            max_concurrent_jobs=1, max_queue_delay=0.05,
        )
        assert [f["type"] for f in reject] == ["overloaded"]
        assert reject[0]["queue_delay_ms"] > 50.0
        assert drained[-1]["type"] == "done"
        assert stats["jobs_shed"] == 1

    def test_deadline_expired_in_queue_answers_timeouts(self, graph):
        blocker = [[i, 100 + i, 2] for i in range(10)]

        async def scenario(client, server, service):
            first = await client.submit(blocker)
            outcome = await client.run(
                [[0, 50, 2], [1, 51, 2]], time_limit_seconds=0.05
            )
            async for _ in client.frames(first):
                pass
            return outcome, service.stats()

        # Expiry is part of the hardening bundle: it only activates once an
        # admission knob is set (an unconfigured server stays byte-identical
        # to inline, already-expired queries included).
        outcome, stats = serve_scenario(
            graph, scenario, algorithm=SlowAlgorithm(0.04), threads=1,
            max_concurrent_jobs=1, max_pending_queries=64,
        )
        assert outcome.status == "done"
        assert all(result.timed_out for result in outcome.results)
        assert all(result.count == 0 for result in outcome.results)
        assert stats["queries_expired"] == 2


class TestOpenLoopShedding:
    def test_shed_queries_counted_not_errored(self, graph):
        # Offered load far beyond a budget of 2: the driver must finish with
        # every arrival accounted for as completed or shed — none hung, none
        # surfaced as a transport error.
        queries = [[i % 50, 100 + (i % 40), 2] for i in range(16)]
        arrivals = [0.0] * len(queries)

        async def scenario(client, server, service):
            return await open_loop_load(
                queries, arrivals, port=server.port, connections=2,
                overload_retries=1, rng=random.Random(7),
            )

        report = serve_scenario(
            graph, scenario, algorithm=SlowAlgorithm(0.03), threads=1,
            max_pending_queries=2,
        )
        assert report.errors == 0
        assert report.shed > 0
        assert report.completed + report.shed == len(queries)
        assert report.retried >= report.shed  # every shed saw >= 1 retry

    def test_zero_queue_budget_run_still_terminates(self, graph):
        # Same burst with no retry budget at all: nothing waits forever.
        queries = [[i % 50, 100 + (i % 40), 2] for i in range(12)]

        async def scenario(client, server, service):
            return await asyncio.wait_for(
                open_loop_load(
                    queries, [0.0] * len(queries), port=server.port,
                    connections=1, overload_retries=0,
                ),
                timeout=30,
            )

        report = serve_scenario(
            graph, scenario, algorithm=SlowAlgorithm(0.02), threads=1,
            max_pending_queries=1,
        )
        assert report.completed + report.shed == len(queries)


class TestTypedBackendErrors:
    def test_remote_backend_raises_service_overloaded(self, graph):
        from repro.api import Database

        async def scenario(client, server, service):
            blocker = await client.submit([[i, 100 + i, 2] for i in range(6)])

            def blocking_batch():
                with Database(f"127.0.0.1:{server.port}") as db:
                    stream = db.batch([(0, 50, 2)], store_paths=False)
                    return stream.results()

            try:
                with pytest.raises(ServiceOverloaded) as info:
                    await asyncio.to_thread(blocking_batch)
            finally:
                async for _ in client.frames(blocker):
                    pass
            return info.value

        error = serve_scenario(
            graph, scenario, algorithm=SlowAlgorithm(0.05), threads=1,
            max_pending_queries=6,
        )
        assert error.retry_after > 0
        assert isinstance(error, RuntimeError)  # except-RuntimeError still works
