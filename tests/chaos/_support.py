"""Shared helpers of the chaos suite (importable from every test module).

The suite runs every scenario that touches query execution against both
service backends — in-process threads and forked worker processes — unless
``REPRO_CHAOS_BACKENDS`` restricts the list (the CI matrix uses this to
give each backend its own job).
"""

from __future__ import annotations

import asyncio
import os
import time

from repro.core.algorithm import Algorithm
from repro.core.result import EnumerationStats, QueryResult
from repro.server.client import QueryClient
from repro.server.server import QueryServer
from repro.server.service import QueryService


def _chaos_backends():
    backends = ["thread", "process"]
    requested = os.environ.get("REPRO_CHAOS_BACKENDS")
    if requested:
        wanted = [b.strip() for b in requested.split(",")]
        backends = [b for b in backends if b in wanted]
    return backends or ["thread"]


CHAOS_BACKENDS = _chaos_backends()


def backend_kwargs(backend: str) -> dict:
    """``QueryService`` worker arguments for one chaos backend."""
    if backend == "process":
        return {"processes": 2}
    return {"processes": 1, "threads": 2}


class SlowAlgorithm(Algorithm):
    """Fixed service time per query — makes capacity a known constant."""

    name = "SLOW"

    def __init__(self, delay: float = 0.04) -> None:
        self.delay = delay

    def run(self, graph, query, config=None):
        time.sleep(self.delay)
        return QueryResult(
            source=query.source, target=query.target, k=query.k,
            algorithm=self.name, count=1, paths=[(query.source, query.target)],
            stats=EnumerationStats(),
        )


def serve_scenario(graph, scenario, **service_kwargs):
    """Run ``scenario(client, server, service)`` against a fresh server."""

    async def runner():
        service = QueryService(graph, **service_kwargs)
        server = QueryServer(service, port=0)
        await server.start()
        try:
            client = await QueryClient.connect(port=server.port)
            async with client:
                return await scenario(client, server, service)
        finally:
            await server.close()
            await service.close()

    return asyncio.run(runner())
