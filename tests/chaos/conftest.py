"""Shared fixtures of the chaos suite: graph, workload."""

from __future__ import annotations

import pytest

from repro.graph.generators import erdos_renyi
from repro.workloads.queries import generate_target_centric_set


@pytest.fixture(scope="session")
def graph():
    return erdos_renyi(150, 4.0, seed=11)


@pytest.fixture(scope="session")
def workload(graph):
    queries = generate_target_centric_set(graph, count=10, k=4, num_targets=3, seed=5)
    return [[q.source, q.target, q.k] for q in queries]
