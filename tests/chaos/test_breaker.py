"""Per-replica circuit breakers in the shard router.

A flapping replica must stop absorbing attempts after a few consecutive
failures (breaker opens), keep serving traffic through its peers, and be
re-admitted through exactly one half-open probe once its cooldown elapsed.
"""

from __future__ import annotations

import asyncio
import socket

from repro.server.client import ReconnectPolicy
from repro.server.router import ShardChannel, ShardMap, ShardRouter
from repro.server.server import QueryServer
from repro.server.service import QueryService


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _channel(**kwargs) -> ShardChannel:
    return ShardChannel(
        0,
        [("127.0.0.1", 1), ("127.0.0.1", 2)],
        ReconnectPolicy(attempts=1),
        **kwargs,
    )


class TestBreakerStateMachine:
    def test_trips_after_threshold_consecutive_failures(self):
        async def scenario():
            channel = _channel(breaker_threshold=3)
            assert channel.breaker_state(0) == "closed"
            assert channel.record_failure(0) is False
            assert channel.record_failure(0) is False
            assert channel.record_failure(0) is True  # the tripping failure
            assert channel.breaker_state(0) == "open"
            assert channel.breaker_state(1) == "closed"  # per replica

        asyncio.run(scenario())

    def test_success_resets_the_streak(self):
        async def scenario():
            channel = _channel(breaker_threshold=2)
            channel.record_failure(0)
            channel.record_success(0)
            assert channel.record_failure(0) is False  # streak restarted
            assert channel.breaker_state(0) == "closed"

        asyncio.run(scenario())

    def test_pick_replica_routes_around_an_open_breaker(self):
        async def scenario():
            channel = _channel(breaker_threshold=1)
            channel.record_failure(0)
            replica, skipped = channel.pick_replica(0)
            assert (replica, skipped) == (1, 1)
            # With every breaker open, round-robin survives (a flap must
            # not become a self-inflicted full outage).
            channel.record_failure(1)
            replica, skipped = channel.pick_replica(0)
            assert replica == 0
            assert skipped == 2

        asyncio.run(scenario())

    def test_cooldown_admits_exactly_one_half_open_probe(self):
        async def scenario():
            channel = _channel(breaker_threshold=1, breaker_cooldown=0.05)
            channel.record_failure(0)
            assert channel.pick_replica(0) == (1, 1)  # open: refused
            await asyncio.sleep(0.06)
            replica, _ = channel.pick_replica(0)
            assert replica == 0  # the probe
            assert channel.breaker_state(0) == "half-open"
            # A second caller while the probe is in flight keeps skipping.
            assert channel.pick_replica(0) == (1, 1)
            channel.record_success(0)
            assert channel.breaker_state(0) == "closed"
            assert channel.pick_replica(0) == (0, 0)

        asyncio.run(scenario())

    def test_failed_probe_reopens_for_another_cooldown(self):
        async def scenario():
            channel = _channel(breaker_threshold=1, breaker_cooldown=0.05)
            channel.record_failure(0)
            await asyncio.sleep(0.06)
            assert channel.pick_replica(0)[0] == 0  # probe admitted
            channel.record_failure(0)  # probe failed
            assert channel.breaker_state(0) == "open"
            assert channel.pick_replica(0) == (1, 1)

        asyncio.run(scenario())


class TestBreakerEndToEnd:
    def test_flapping_replica_is_tripped_skipped_then_readmitted(self, graph, workload):
        """The full flap: dead primary trips its breaker, traffic flows via
        the replica, the primary comes back, the half-open probe re-admits
        it — all while every job completes."""

        async def scenario():
            live_service = QueryService(graph, threads=2, shard_id=0)
            live_server = QueryServer(live_service, port=0)
            await live_server.start()
            dead_port = _free_port()
            shard_map = ShardMap.from_entries(
                [f"127.0.0.1:{dead_port},127.0.0.1:{live_server.port}"]
            )
            router = ShardRouter(
                shard_map,
                hedge=False,
                policy=ReconnectPolicy(attempts=1),
                breaker_threshold=2,
                breaker_cooldown=0.5,
            )
            revived_service = revived_server = None
            try:
                async def run_job():
                    job = await router.submit(list(workload), {"store_paths": True})
                    frames = [f async for f in job.frames()]
                    assert frames[-1]["type"] == "done"
                    return frames

                # Jobs 1+2: primary unreachable, failover each time — the
                # second failure trips the breaker.
                await run_job()
                await run_job()
                assert router.counters.breaker_trips == 1
                snapshot = await router.stats(probe_timeout=0.5)
                primary = snapshot["shards"][0]["replicas"][0]
                assert primary["breaker"] == "open"
                assert primary["connected"] is False

                # Job 3: the open breaker is skipped outright (no dial, no
                # failover) — traffic flows straight to the live replica.
                failovers_before = router.counters.failovers
                await run_job()
                assert router.counters.failovers == failovers_before
                assert router.counters.breaker_skips >= 1

                # Revive the primary at its old address; after the cooldown
                # the half-open probe re-admits it.
                revived_service = QueryService(graph, threads=1, shard_id=0)
                revived_server = QueryServer(revived_service, port=dead_port)
                await revived_server.start()
                await asyncio.sleep(0.6)
                await run_job()
                channel = router.channels[0]
                assert channel.breaker_state(0) == "closed"
                return router.counters
            finally:
                await router.close()
                await live_server.close()
                await live_service.close()
                if revived_server is not None:
                    await revived_server.close()
                    await revived_service.close()

        counters = asyncio.run(scenario())
        assert counters.jobs_completed == 4
        assert counters.jobs_failed == 0

    def test_single_replica_shard_never_fully_blocked(self, graph, workload):
        # Threshold 1 with one (dead) replica: pick_replica must still
        # return it — the breaker degrades to plain retries, and the job
        # fails with a routing error instead of hanging.
        async def scenario():
            dead_port = _free_port()
            router = ShardRouter(
                ShardMap.from_entries([f"127.0.0.1:{dead_port}"]),
                hedge=False,
                policy=ReconnectPolicy(attempts=1),
                breaker_threshold=1,
                max_attempts=2,
            )
            try:
                job = await router.submit(list(workload), {"store_paths": False})
                frames = [f async for f in job.frames()]
                return frames
            finally:
                await router.close()

        frames = asyncio.run(scenario())
        assert frames[-1]["type"] == "error"
