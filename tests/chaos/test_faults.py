"""Unit tests of the fault-injection harness itself.

Determinism is the whole point: a plan must fire on exactly the events it
names, the same way in every run, in every process that shares it.
"""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro.testing import faults


@pytest.fixture(autouse=True)
def _clean_plan():
    faults.clear()
    yield
    faults.clear()


class TestPlanParsing:
    def test_round_trips_through_env_encoding(self, tmp_path):
        plan = faults.FaultPlan.from_dict(
            {
                "seed": 7,
                "faults": [
                    {"site": "worker.task", "op": "kill", "position": 3},
                    {"site": "server.frame.out", "op": "truncate", "at": 2,
                     "keep_bytes": 5, "once": False},
                ],
            }
        )
        rebuilt = faults.FaultPlan.from_dict(plan.to_dict())
        assert rebuilt.seed == 7
        assert [f.op for f in rebuilt.faults] == ["kill", "truncate"]
        assert rebuilt.faults[1].keep_bytes == 5
        assert rebuilt.faults[1].once is False

    def test_env_value_accepts_a_file_path(self, tmp_path):
        payload = {"faults": [{"site": "worker.task", "op": "error"}]}
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        plan = faults.FaultPlan.from_env_value(str(path))
        assert plan.faults[0].op == "error"

    def test_unknown_site_op_and_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            faults.Fault(site="worker.gpu", op="kill")
        with pytest.raises(ValueError, match="unknown fault op"):
            faults.Fault(site="worker.task", op="explode")
        with pytest.raises(ValueError, match="unknown fault fields"):
            faults.Fault.from_dict({"site": "worker.task", "op": "kill", "sev": 1})
        with pytest.raises(ValueError, match="'at' is 1-based"):
            faults.Fault(site="worker.task", op="kill", at=0)

    def test_install_and_clear_manage_the_environment(self, tmp_path):
        with faults.installed(
            {"faults": [{"site": "worker.task", "op": "error"}]},
            state_dir=str(tmp_path / "state"),
        ) as plan:
            assert os.environ.get(faults.ENV_VAR)
            assert faults.active_plan() is plan
            assert os.path.isdir(plan.state_dir)
        assert faults.ENV_VAR not in os.environ
        assert faults.active_plan() is None

    def test_no_plan_fast_path_returns_none(self):
        assert faults.hit("worker.task", position=0) is None


class TestFiringWindow:
    def test_fires_on_the_at_th_match_for_count_events(self):
        plan = faults.FaultPlan.from_dict(
            {"faults": [{"site": "worker.task", "op": "error",
                         "at": 3, "count": 2, "once": False}]}
        )
        fired = [
            plan.check("worker.task", position=0) is not None for _ in range(6)
        ]
        assert fired == [False, False, True, True, False, False]

    def test_position_and_frame_type_filters(self):
        plan = faults.FaultPlan.from_dict(
            {"faults": [
                {"site": "worker.task", "op": "error", "position": 4},
                {"site": "server.frame.out", "op": "drop", "frame_type": "result"},
            ]}
        )
        assert plan.check("worker.task", position=3) is None
        assert plan.check("worker.task", position=4) is not None
        assert plan.check("server.frame.out", frame_type="done") is None
        assert plan.check("server.frame.out", frame_type="result") is not None

    def test_once_with_state_dir_is_globally_at_most_once(self, tmp_path):
        payload = {
            "state_dir": str(tmp_path),
            "faults": [{"site": "worker.task", "op": "error"}],
        }
        first = faults.FaultPlan.from_dict(payload)
        second = faults.FaultPlan.from_dict(payload)  # a "different process"
        assert first.check("worker.task", position=0) is not None
        # The marker file gates every other plan instance sharing state_dir.
        assert second.check("worker.task", position=0) is None
        assert os.path.exists(tmp_path / "fault-0.fired")

    def test_once_false_keeps_firing_across_instances(self, tmp_path):
        payload = {
            "state_dir": str(tmp_path),
            "faults": [{"site": "worker.task", "op": "error", "once": False}],
        }
        first = faults.FaultPlan.from_dict(payload)
        second = faults.FaultPlan.from_dict(payload)
        assert first.check("worker.task", position=0) is not None
        assert second.check("worker.task", position=0) is not None


class TestTaskSite:
    def test_error_and_memory_error_ops_raise(self):
        with faults.installed(
            {"faults": [
                {"site": "worker.task", "op": "error", "position": 1},
                {"site": "worker.task", "op": "memory_error", "position": 2},
            ]}
        ):
            faults.maybe_fail_task(0)  # no match, no effect
            with pytest.raises(RuntimeError, match="injected task error"):
                faults.maybe_fail_task(1)
            with pytest.raises(MemoryError, match="injected memory error"):
                faults.maybe_fail_task(2)

    def test_kill_in_main_process_degrades_to_an_exception(self):
        assert multiprocessing.current_process().name == "MainProcess"
        with faults.installed(
            {"faults": [{"site": "worker.task", "op": "kill"}]}
        ):
            with pytest.raises(RuntimeError, match="injected worker crash"):
                faults.maybe_fail_task(0)

    def test_forked_child_counts_its_own_events(self, tmp_path):
        # A child re-parses the plan (pid-keyed cache) and starts its hit
        # counters from zero — determinism must not depend on fork timing.
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork unavailable")

        def child(conn):
            fault = faults.hit("worker.task", position=0)
            conn.send(fault is not None)
            conn.close()

        with faults.installed(
            {"faults": [{"site": "worker.task", "op": "error", "once": False}]}
        ):
            assert faults.hit("worker.task", position=0) is not None  # parent: hit 1
            ctx = multiprocessing.get_context("fork")
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(target=child, args=(child_conn,))
            proc.start()
            fired_in_child = parent_conn.recv()
            proc.join(10)
        assert fired_in_child  # child's own first event is its 'at: 1'
