"""Worker-crash recovery: a killed pool worker must not kill the batch.

The contract: after a ``BrokenProcessPool`` the executor respawns the pool
and re-executes only positions whose results were never delivered —
results already streamed to the consumer are not produced twice, and the
recovered run's results are byte-identical to an inline run.  A query that
*deterministically* crashes its worker exhausts the bounded retry budget
and fails the batch cleanly instead of respawning forever.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.core.engine import ExecutorCore, QuerySession
from repro.core.listener import RunConfig
from repro.core.query import Query
from repro.testing import faults
from repro.workloads.queries import generate_target_centric_set

from tests.chaos._support import CHAOS_BACKENDS, backend_kwargs, serve_scenario

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="process-pool recovery tests need the fork start method",
)


@pytest.fixture(autouse=True)
def _clean_plan():
    faults.clear()
    yield
    faults.clear()


@pytest.fixture(scope="module")
def queries(graph):
    workload = generate_target_centric_set(graph, count=12, k=4, num_targets=3, seed=5)
    return [Query(q.source, q.target, q.k) for q in workload]


def _inline_results(graph, queries):
    session = QuerySession(graph)
    return [session.run(q, RunConfig(store_paths=True)) for q in queries]


def _stream_all(core, queries):
    run = core.start(queries, RunConfig(store_paths=True), chunk_queries=1)
    delivered = {}
    for chunk in run.chunks():
        for position, result in chunk:
            assert position not in delivered, "duplicate delivery after recovery"
            delivered[position] = result
    return run, delivered


class TestPoolRecovery:
    def test_killed_worker_recovers_with_identical_results(self, graph, queries, tmp_path):
        expected = _inline_results(graph, queries)
        plan = {
            "seed": 7,
            "faults": [{"site": "worker.task", "op": "kill", "position": 5}],
        }
        with faults.installed(plan, state_dir=str(tmp_path / "state")):
            with ExecutorCore(graph, backend="process", workers=2,
                              start_method="fork") as core:
                run, delivered = _stream_all(core, queries)
        assert run.recoveries == 1
        assert run.recovered_queries >= 1
        assert sorted(delivered) == list(range(len(queries)))
        for position, exp in enumerate(expected):
            act = delivered[position]
            assert (act.source, act.target, act.k) == (exp.source, exp.target, exp.k)
            assert act.count == exp.count
            assert act.paths == exp.paths

    def test_deterministic_crasher_fails_cleanly(self, graph, queries, tmp_path):
        # once=false: the respawned worker crashes on the same position
        # every time, so the bounded retry budget must surface the failure
        # instead of respawning forever.
        plan = {
            "faults": [{"site": "worker.task", "op": "kill",
                        "position": 5, "once": False}],
        }
        from concurrent.futures.process import BrokenProcessPool

        with faults.installed(plan, state_dir=str(tmp_path / "state")):
            with ExecutorCore(graph, backend="process", workers=2,
                              start_method="fork") as core:
                with pytest.raises(BrokenProcessPool):
                    _stream_all(core, queries)

    def test_pool_retries_zero_disables_recovery(self, graph, queries, tmp_path):
        from concurrent.futures.process import BrokenProcessPool

        plan = {
            "faults": [{"site": "worker.task", "op": "kill", "position": 5}],
        }
        with faults.installed(plan, state_dir=str(tmp_path / "state")):
            with ExecutorCore(graph, backend="process", workers=2,
                              start_method="fork", pool_retries=0) as core:
                with pytest.raises(BrokenProcessPool):
                    _stream_all(core, queries)

    def test_executor_survives_for_the_next_batch(self, graph, queries, tmp_path):
        # After a recovered batch the same core (fresh pool) keeps working.
        plan = {
            "faults": [{"site": "worker.task", "op": "kill", "position": 0}],
        }
        expected = _inline_results(graph, queries)
        with faults.installed(plan, state_dir=str(tmp_path / "state")):
            with ExecutorCore(graph, backend="process", workers=2,
                              start_method="fork") as core:
                run, _ = _stream_all(core, queries)
                assert run.recoveries == 1
                run2, delivered2 = _stream_all(core, queries)
                assert run2.recoveries == 0
        assert [delivered2[p].count for p in sorted(delivered2)] == [
            r.count for r in expected
        ]


class TestInjectedTaskErrors:
    @pytest.mark.parametrize("backend", CHAOS_BACKENDS)
    def test_injected_error_fails_the_job_not_the_service(
        self, graph, workload, backend, tmp_path
    ):
        # A plain task exception (not a crash) surfaces as a job error frame
        # and the service keeps answering on the same connection.  The
        # state_dir marker makes the firing globally at-most-once, so the
        # second job runs clean even in forked workers that inherited the
        # plan environment.
        plan = {
            "faults": [{"site": "worker.task", "op": "error", "position": 2}],
        }

        async def scenario(client, server, service):
            with faults.installed(plan, state_dir=str(tmp_path / "state")):
                first = await client.run(workload)
                second = await client.run(workload)
            return first, second

        first, second = serve_scenario(graph, scenario, **backend_kwargs(backend))
        assert first.status == "error"
        assert second.status == "done"
        assert len(second.results) == len(workload)
