"""Wire-level fault tolerance: mangled frames in either direction.

Server → client: injected drop/delay/truncate on outgoing frames (the
``server.frame.out`` site).  Client → server: hand-rolled truncated and
garbage submits — the server must answer a protocol error or close the
connection cleanly, reap any half-created job, and keep serving everyone
else.
"""

from __future__ import annotations

import asyncio
import struct

import pytest

from repro.server.client import QueryClient
from repro.server.protocol import MAX_FRAME_BYTES, encode_frame
from repro.testing import faults

from tests.chaos._support import SlowAlgorithm, serve_scenario


@pytest.fixture(autouse=True)
def _clean_plan():
    faults.clear()
    yield
    faults.clear()


class TestInjectedServerFaults:
    def test_dropped_result_frame_loses_one_result_not_the_job(self, graph, workload):
        plan = {"faults": [{"site": "server.frame.out", "op": "drop",
                            "frame_type": "result", "at": 2}]}

        async def scenario(client, server, service):
            with faults.installed(plan):
                return await client.run(workload)

        outcome = serve_scenario(graph, scenario, threads=1)
        assert outcome.status == "done"
        assert len(outcome.results) == len(workload) - 1

    def test_delayed_done_frame_stalls_completion_only(self, graph, workload):
        plan = {"faults": [{"site": "server.frame.out", "op": "delay",
                            "frame_type": "done", "delay_ms": 300}]}

        async def scenario(client, server, service):
            loop = asyncio.get_running_loop()
            with faults.installed(plan):
                started = loop.time()
                outcome = await client.run(workload)
                return outcome, loop.time() - started

        outcome, elapsed = serve_scenario(graph, scenario, threads=2)
        assert outcome.status == "done"
        assert len(outcome.results) == len(workload)
        assert elapsed >= 0.3

    def test_truncated_frame_severs_the_connection_loudly(self, graph, workload):
        plan = {"faults": [{"site": "server.frame.out", "op": "truncate",
                            "frame_type": "result", "at": 3}]}

        async def scenario(client, server, service):
            with faults.installed(plan):
                outcome = await client.run(workload)
            # The job dies loudly — a terminal error marking the severed
            # connection, never a silent hang on missing frames.
            assert outcome.status == "error"
            assert outcome.info.get("_closed")
            # The server reaps the orphaned job once the connection is gone.
            deadline = asyncio.get_running_loop().time() + 10.0
            while service.stats()["jobs_active"]:
                if asyncio.get_running_loop().time() > deadline:
                    raise AssertionError("job survived its severed connection")
                await asyncio.sleep(0.05)
            # A fresh connection gets clean service.
            fresh = await QueryClient.connect(port=server.port)
            async with fresh:
                return await fresh.run(workload)

        outcome = serve_scenario(graph, scenario, threads=1)
        assert outcome.status == "done"
        assert len(outcome.results) == len(workload)

    def test_connection_death_mid_open_loop_reassigns_arrivals(self, graph):
        # Satellite: open_loop_load must not silently lose arrivals whose
        # connection died mid-run — survivors absorb them.
        from repro.server.client import open_loop_load

        queries = [[i % 50, 100 + (i % 40), 2] for i in range(12)]
        arrivals = [0.05 * i for i in range(len(queries))]
        plan = {"faults": [{"site": "server.frame.out", "op": "truncate",
                            "frame_type": "result", "at": 2}]}

        async def scenario(client, server, service):
            with faults.installed(plan):
                return await asyncio.wait_for(
                    open_loop_load(
                        queries, arrivals, port=server.port, connections=2
                    ),
                    timeout=60,
                )

        report = serve_scenario(
            graph, scenario, algorithm=SlowAlgorithm(0.01), threads=2
        )
        assert report.reassigned >= 1
        # Every arrival is accounted for; at most the one in flight on the
        # severed connection is re-run, none are lost or hung.
        assert report.completed + report.errors == len(queries)
        assert report.completed >= len(queries) - 1


async def _raw_connection(port):
    return await asyncio.open_connection("127.0.0.1", port)


class TestClientSentGarbage:
    def test_truncated_submit_reaps_the_half_created_job(self, graph, workload):
        async def scenario(client, server, service):
            reader, writer = await _raw_connection(server.port)
            frame = encode_frame(
                {"type": "submit", "id": "j1", "queries": workload, "opts": {}}
            )
            writer.write(frame[: len(frame) // 2])  # promise more than we send
            await writer.drain()
            writer.close()
            await writer.wait_closed()
            await asyncio.sleep(0.2)
            # No half-created job lingers, and existing clients still work.
            assert service.stats()["jobs_active"] == 0
            return await client.run(workload)

        outcome = serve_scenario(graph, scenario, threads=1)
        assert outcome.status == "done"

    def test_undecodable_body_answered_with_protocol_error(self, graph, workload):
        async def scenario(client, server, service):
            reader, writer = await _raw_connection(server.port)
            body = b"\xff\xfe not json at all"
            writer.write(struct.pack(">I", len(body)) + body)
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(1 << 16), timeout=10)
            writer.close()
            await writer.wait_closed()
            # The server answered an error frame, then closed its side.
            assert b"error" in raw
            return await client.run(workload)

        outcome = serve_scenario(graph, scenario, threads=1)
        assert outcome.status == "done"

    def test_oversized_length_prefix_rejected_not_allocated(self, graph, workload):
        async def scenario(client, server, service):
            reader, writer = await _raw_connection(server.port)
            writer.write(struct.pack(">I", MAX_FRAME_BYTES + 1))
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(1 << 16), timeout=10)
            at_eof = await asyncio.wait_for(reader.read(1 << 16), timeout=10)
            writer.close()
            await writer.wait_closed()
            assert b"exceeds" in raw
            assert at_eof == b""  # server closed the connection after
            return await client.run(workload)

        outcome = serve_scenario(graph, scenario, threads=1)
        assert outcome.status == "done"

    def test_garbage_after_a_live_submit_keeps_the_job_result_clean(
        self, graph, workload
    ):
        # A client that goes insane mid-stream loses its connection (and
        # with it the in-flight job), but the service itself stays healthy.
        async def scenario(client, server, service):
            reader, writer = await _raw_connection(server.port)
            writer.write(
                encode_frame(
                    {"type": "submit", "id": "mad", "queries": workload, "opts": {}}
                )
            )
            body = b"{broken"
            writer.write(struct.pack(">I", len(body)) + body)
            await writer.drain()
            async with asyncio.timeout(10):
                while await reader.read(1 << 16):
                    pass
            writer.close()
            await writer.wait_closed()
            deadline = asyncio.get_running_loop().time() + 10.0
            while service.stats()["jobs_active"]:
                if asyncio.get_running_loop().time() > deadline:
                    raise AssertionError("job outlived its garbage-spewing client")
                await asyncio.sleep(0.05)
            return await client.run(workload)

        outcome = serve_scenario(
            graph, scenario, algorithm=SlowAlgorithm(0.02), threads=1
        )
        assert outcome.status == "done"
        assert len(outcome.results) == len(workload)
