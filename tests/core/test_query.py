"""Unit tests for the Query object."""

from __future__ import annotations

import pytest

from repro.core.query import MIN_HOP_CONSTRAINT, Query
from repro.errors import InvalidQueryError
from repro.graph.builder import from_edges


class TestValidation:
    def test_valid_query(self):
        query = Query(0, 1, 4)
        assert query.source == 0
        assert query.target == 1
        assert query.k == 4

    def test_source_equals_target_rejected(self):
        with pytest.raises(InvalidQueryError):
            Query(3, 3, 4)

    def test_small_hop_constraint_rejected(self):
        with pytest.raises(InvalidQueryError):
            Query(0, 1, MIN_HOP_CONSTRAINT - 1)

    def test_minimum_hop_constraint_accepted(self):
        assert Query(0, 1, MIN_HOP_CONSTRAINT).k == MIN_HOP_CONSTRAINT

    def test_validate_against_graph(self):
        graph = from_edges([(0, 1), (1, 2)])
        Query(0, 2, 3).validate(graph)
        with pytest.raises(InvalidQueryError):
            Query(0, 99, 3).validate(graph)
        with pytest.raises(InvalidQueryError):
            Query(99, 0, 3).validate(graph)


class TestHelpers:
    def test_from_external(self):
        graph = from_edges([("alice", "bob"), ("bob", "carol")])
        query = Query.from_external(graph, "alice", "carol", 3)
        assert query.source == graph.to_internal("alice")
        assert query.target == graph.to_internal("carol")

    def test_with_k(self):
        query = Query(0, 1, 4)
        rescoped = query.with_k(7)
        assert rescoped.k == 7
        assert rescoped.source == query.source
        assert query.k == 4  # original unchanged

    def test_str_representation(self):
        assert str(Query(2, 5, 6)) == "q(2, 5, 6)"

    def test_queries_are_hashable_and_comparable(self):
        assert Query(0, 1, 3) == Query(0, 1, 3)
        assert len({Query(0, 1, 3), Query(0, 1, 3), Query(0, 1, 4)}) == 2

    def test_query_is_frozen(self):
        query = Query(0, 1, 3)
        with pytest.raises(AttributeError):
            query.k = 9  # type: ignore[misc]
