"""Tests for process-parallel sharded batch execution.

The contract mirrors the thread-pool batch layer: process execution is an
optimisation, never a semantics change.  Every query evaluated through
:class:`ProcessBatchExecutor` must return exactly the result (path list
order included) of a sequential session run, under both the ``fork`` and
``spawn`` start methods, without leaking shared-memory segments.

Set ``REPRO_START_METHODS=fork`` (or ``spawn``) to restrict the
parametrised start-method suite — the CI matrix uses this to give each
start method its own job.
"""

from __future__ import annotations

import multiprocessing
import os
import time

import numpy as np
import pytest

from repro.baselines.bc_dfs import BcDfs
from repro.core.constraints import PredicateConstraint
from repro.core.engine import (
    BatchExecutor,
    ExecutorCore,
    IdxDfs,
    PathEnum,
    ProcessBatchExecutor,
    QuerySession,
)
from repro.core.algorithm import Algorithm
from repro.core.listener import RunConfig
from repro.core.query import Query
from repro.core.result import paths_are_valid
from repro.graph.generators import complete_graph, erdos_renyi, power_law_graph
from repro.graph.traversal import (
    bfs_distances_bounded,
    multi_source_bfs_distances_bounded,
)
from repro.workloads.queries import generate_target_centric_set, partition_by_target


def _available_start_methods():
    methods = [
        method
        for method in ("fork", "spawn")
        if method in multiprocessing.get_all_start_methods()
    ]
    requested = os.environ.get("REPRO_START_METHODS")
    if requested:
        wanted = [m.strip() for m in requested.split(",")]
        methods = [m for m in methods if m in wanted]
    return methods or ["spawn"]


START_METHODS = _available_start_methods()


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(150, 4.0, seed=11)


@pytest.fixture(scope="module")
def shared_target_queries(graph):
    workload = generate_target_centric_set(graph, count=12, k=4, num_targets=3, seed=5)
    assert len(workload.unique_targets()) < len(workload)
    return list(workload)


def _shm_segments():
    try:
        return {name for name in os.listdir("/dev/shm") if name.startswith("psm_")}
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


class TestMultiSourceBfs:
    @pytest.mark.parametrize("reverse", [False, True])
    def test_matches_single_source_bfs(self, reverse):
        g = power_law_graph(120, 4.0, exponent=2.3, seed=3)
        rng = np.random.default_rng(17)
        sources = rng.choice(g.num_vertices, size=8, replace=False)
        blocked = int(rng.integers(0, g.num_vertices))
        matrix = multi_source_bfs_distances_bounded(
            g, sources, cutoff=4, reverse=reverse, no_expand=blocked
        )
        for row, s in enumerate(sources):
            expected = bfs_distances_bounded(
                g, int(s), cutoff=4, reverse=reverse, no_expand=blocked
            )
            assert np.array_equal(matrix[row], expected)

    def test_duplicate_sources_are_independent_rows(self, graph):
        matrix = multi_source_bfs_distances_bounded(graph, [3, 3], cutoff=3)
        assert np.array_equal(matrix[0], matrix[1])

    def test_empty_sources(self, graph):
        matrix = multi_source_bfs_distances_bounded(graph, [], cutoff=3)
        assert matrix.shape == (0, graph.num_vertices)


class TestPartitionByTarget:
    def test_partition_is_complete_and_target_affine(self, shared_target_queries):
        shards = partition_by_target(shared_target_queries, 4)
        positions = sorted(pos for shard in shards for pos, _ in shard)
        assert positions == list(range(len(shared_target_queries)))
        owner = {}
        for index, shard in enumerate(shards):
            for _, query in shard:
                key = (query.target, query.k)
                assert owner.setdefault(key, index) == index

    def test_partition_is_deterministic(self, shared_target_queries):
        first = partition_by_target(shared_target_queries, 3)
        second = partition_by_target(shared_target_queries, 3)
        assert first == second

    def test_single_shard_keeps_workload_together(self, shared_target_queries):
        shards = partition_by_target(shared_target_queries, 1)
        assert len(shards) == 1
        assert len(shards[0]) == len(shared_target_queries)

    def test_no_more_shards_than_groups(self, shared_target_queries):
        shards = partition_by_target(shared_target_queries, 64)
        distinct = {(q.target, q.k) for q in shared_target_queries}
        assert len(shards) == len(distinct)

    def test_balanced_loads(self):
        queries = [Query(s, t, 4) for t in (100, 101, 102, 103) for s in range(24) if s != t]
        shards = partition_by_target(queries, 4)
        sizes = sorted(len(shard) for shard in shards)
        assert sizes[-1] - sizes[0] <= 1

    def test_rejects_nonpositive_shards(self, shared_target_queries):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            partition_by_target(shared_target_queries, 0)


class TestProcessEquivalence:
    @pytest.mark.parametrize("start_method", START_METHODS)
    @pytest.mark.parametrize("engine", ["auto", "native"])
    def test_results_identical_to_sequential_session(
        self, graph, shared_target_queries, start_method, engine
    ):
        config = RunConfig(store_paths=True, engine=engine)
        sequential = BatchExecutor(graph).run(shared_target_queries, config)
        before = _shm_segments()
        with ProcessBatchExecutor(
            graph, processes=2, start_method=start_method
        ) as executor:
            parallel = executor.run(shared_target_queries, config)
        assert _shm_segments() - before == set(), "leaked shared-memory segments"
        assert len(parallel.results) == len(sequential.results)
        for expected, actual in zip(sequential.results, parallel.results):
            assert actual.source == expected.source
            assert actual.target == expected.target
            assert actual.count == expected.count
            # Identical injected distance arrays imply identical index
            # layouts, so even the enumeration order must match.
            assert actual.paths == expected.paths
            assert paths_are_valid(actual.paths, actual.source, actual.target, actual.k)

    @pytest.mark.parametrize("start_method", START_METHODS)
    def test_random_graphs_match_plain_sequential_runs(self, start_method):
        rng = np.random.default_rng(23)
        for trial in range(2):
            g = erdos_renyi(80 + 30 * trial, 3.5, seed=int(rng.integers(1, 1000)))
            workload = generate_target_centric_set(
                g, count=10, k=4, num_targets=3, seed=trial
            )
            queries = list(workload)
            config = RunConfig(store_paths=True)
            engine = PathEnum()
            expected = [engine.run(g, q, config) for q in queries]
            with ProcessBatchExecutor(
                g, processes=2, start_method=start_method
            ) as executor:
                parallel = executor.run(queries, config)
            for exp, act in zip(expected, parallel.results):
                assert act.count == exp.count
                assert set(act.paths) == set(exp.paths)

    def test_inline_path_matches_process_path(self, graph, shared_target_queries):
        config = RunConfig(store_paths=True)
        with ProcessBatchExecutor(graph, processes=1) as inline:
            inline_batch = inline.run(shared_target_queries, config)
        with ProcessBatchExecutor(graph, processes=2, start_method="fork") as executor:
            process_batch = executor.run(shared_target_queries, config)
        for a, b in zip(inline_batch.results, process_batch.results):
            assert a.paths == b.paths

    def test_fixed_plan_algorithm(self, graph, shared_target_queries):
        config = RunConfig(store_paths=True)
        sequential = BatchExecutor(graph, algorithm=IdxDfs()).run(
            shared_target_queries, config
        )
        with ProcessBatchExecutor(
            graph, algorithm=IdxDfs(), processes=2, start_method="fork"
        ) as executor:
            parallel = executor.run(shared_target_queries, config)
        for exp, act in zip(sequential.results, parallel.results):
            assert act.paths == exp.paths

    def test_baseline_algorithm_passes_through(self, graph, shared_target_queries):
        config = RunConfig(store_paths=True)
        queries = shared_target_queries[:4]
        expected = [BcDfs().run(graph, q, config) for q in queries]
        with ProcessBatchExecutor(
            graph, algorithm=BcDfs(), processes=2, start_method="fork"
        ) as executor:
            parallel = executor.run(queries, config)
        for exp, act in zip(expected, parallel.results):
            assert set(act.paths) == set(exp.paths)
        assert parallel.stats.reverse_bfs_runs == 0


class TestProcessStats:
    def test_stats_match_sequential_semantics(self, graph, shared_target_queries):
        with ProcessBatchExecutor(
            graph, processes=2, start_method="fork"
        ) as executor:
            batch = executor.run(shared_target_queries, RunConfig(store_paths=False))
        assert batch.stats.queries_run == len(shared_target_queries)
        assert batch.stats.reverse_bfs_runs == 3
        assert batch.stats.bfs_cache_hits == len(shared_target_queries) - 3
        flags = [result.stats.bfs_cache_hit for result in batch.results]
        assert flags.count(False) == 3

    def test_second_batch_reuses_parent_distance_cache(
        self, graph, shared_target_queries
    ):
        with ProcessBatchExecutor(
            graph, processes=2, start_method="fork"
        ) as executor:
            executor.run(shared_target_queries, RunConfig(store_paths=False))
            again = executor.run(shared_target_queries, RunConfig(store_paths=False))
        assert again.stats.reverse_bfs_runs == 3  # nothing recomputed
        assert all(result.stats.bfs_cache_hit for result in again.results)

    def test_empty_workload(self, graph):
        with ProcessBatchExecutor(graph, processes=2) as executor:
            batch = executor.run([], RunConfig(store_paths=False))
        assert len(batch) == 0

    def test_session_cache_export_and_seed_roundtrip(self, graph):
        session = QuerySession(graph)
        session.run(Query(0, 9, 4), RunConfig(store_paths=False))
        exported = session.export_distances()
        assert set(exported) == {(9, 4)}
        other = QuerySession(graph)
        other.seed_distances(exported)
        other.run(Query(1, 9, 4), RunConfig(store_paths=False))
        assert other.stats.reverse_bfs_runs == 0  # served from the seed


class TestProcessRejections:
    def test_rejects_constraints(self, graph, shared_target_queries):
        constraint = PredicateConstraint(lambda u, v, w, l: True, graph)
        with ProcessBatchExecutor(graph, processes=2) as executor:
            with pytest.raises(ValueError, match="constraint"):
                executor.run(
                    shared_target_queries, RunConfig(constraint=constraint)
                )

    def test_rejects_bad_worker_counts(self, graph):
        with pytest.raises(ValueError):
            ProcessBatchExecutor(graph, processes=0)
        with pytest.raises(ValueError):
            ProcessBatchExecutor(graph, shards=0)

    def test_run_after_close_raises(self, graph, shared_target_queries):
        executor = ProcessBatchExecutor(graph, processes=2)
        executor.close()
        with pytest.raises(RuntimeError):
            executor.run(shared_target_queries)

    def test_close_is_idempotent(self, graph, shared_target_queries):
        executor = ProcessBatchExecutor(graph, processes=2, start_method="fork")
        executor.run(shared_target_queries[:4], RunConfig(store_paths=False))
        executor.close()
        executor.close()  # second close must be a no-op, not an error
        executor.close()


class TestStreamingCallbacks:
    """``RunConfig.on_result`` routed through the chunked result stream."""

    @pytest.mark.parametrize("start_method", START_METHODS)
    def test_callback_sequence_matches_sequential_run(
        self, graph, shared_target_queries, start_method
    ):
        config = RunConfig(store_paths=False)
        expected: list = []
        engine = PathEnum()
        for query in shared_target_queries:
            engine.run(graph, query, config.replace(on_result=expected.append))

        streamed: list = []
        with ProcessBatchExecutor(
            graph, processes=2, start_method=start_method
        ) as executor:
            batch = executor.run(
                shared_target_queries, config.replace(on_result=streamed.append)
            )
        # Workload order, per-query path order: the exact sequence the
        # callback would observe from a sequential session run.
        assert streamed == expected
        # store_paths=False semantics are preserved even though workers
        # internally materialise paths to ship them to the parent.
        assert all(result.paths is None for result in batch.results)

    def test_callback_with_stored_paths_keeps_paths(self, graph, shared_target_queries):
        seen: list = []
        with ProcessBatchExecutor(graph, processes=2, start_method="fork") as executor:
            batch = executor.run(
                shared_target_queries[:6],
                RunConfig(store_paths=True, on_result=seen.append),
            )
        assert seen == [p for r in batch.results for p in r.paths]


class TestCleanupRegressions:
    def test_no_segment_leak_after_worker_exception(self, graph):
        workload = generate_target_centric_set(graph, count=8, k=4, num_targets=2, seed=9)
        queries = list(workload)
        before = _shm_segments()
        with pytest.raises(RuntimeError, match="poisoned"):
            with ProcessBatchExecutor(
                graph,
                algorithm=_ExplodingAlgorithm(queries[0].target),
                processes=2,
                start_method="fork",
            ) as executor:
                executor.run(queries, RunConfig(store_paths=False))
        assert _shm_segments() - before == set(), "leaked shared-memory segments"

    def test_no_segment_leak_after_explicit_close_without_run(self, graph):
        before = _shm_segments()
        executor = ProcessBatchExecutor(graph, processes=2)
        executor.close()
        assert _shm_segments() - before == set()


class _ExplodingAlgorithm(Algorithm):
    """Raises on a marked query; sleeps briefly elsewhere (picklable)."""

    name = "EXPLODER"

    def __init__(self, poison_target: int) -> None:
        self.poison_target = poison_target

    def run(self, graph, query, config=None):
        if query.target == self.poison_target:
            raise RuntimeError(f"poisoned target {query.target}")
        time.sleep(0.005)
        from repro.core.result import EnumerationStats, QueryResult

        return QueryResult(
            source=query.source, target=query.target, k=query.k,
            algorithm=self.name, count=0, paths=[], stats=EnumerationStats(),
        )


class TestErrorPropagation:
    def test_thread_pool_surfaces_original_exception_and_cancels(self, graph):
        calls = []

        class Recorder(_ExplodingAlgorithm):
            def run(self, graph, query, config=None):
                calls.append(query.target)
                return super().run(graph, query, config)

        queries = [Query(0, target, 4) for target in range(1, 65)]
        executor = BatchExecutor(graph, algorithm=Recorder(1), max_workers=2)
        with pytest.raises(RuntimeError, match="poisoned target 1"):
            executor.run(queries, RunConfig(store_paths=False))
        # The failure must cancel queued work instead of draining all 64.
        assert len(calls) < len(queries)

    def test_process_pool_surfaces_original_exception(self, graph):
        workload = generate_target_centric_set(
            graph, count=8, k=4, num_targets=2, seed=9
        )
        queries = list(workload)
        poison = queries[0].target
        with ProcessBatchExecutor(
            graph,
            algorithm=_ExplodingAlgorithm(poison),
            processes=2,
            start_method="fork",
        ) as executor:
            with pytest.raises(RuntimeError, match=f"poisoned target {poison}"):
                executor.run(queries, RunConfig(store_paths=False))


class TestProcessCancellation:
    def test_cancelled_stream_stops_emitting_promptly(self):
        """A cancelled run must not let workers finish their whole shard.

        One target means one shard: a single worker owns all 100 queries,
        so without the shared cancellation flag it would run every one of
        them to completion after ``cancel()``.  The flag is polled between
        queries, so the worker's emitted count must stay far below the
        shard size.
        """
        graph = complete_graph(11)
        queries = [Query(s, 10, 6) for s in range(10)] * 10
        with ExecutorCore(graph, backend="process", workers=2) as core:
            run = core.start(queries, RunConfig(store_paths=False), chunk_queries=1)
            consumed = 0
            for chunk in run.chunks():
                consumed += len(chunk)
                if consumed >= 3:
                    run.cancel()
                    break
            deadline = time.time() + 20.0
            while any(not f.done() for f in run._futures) and time.time() < deadline:
                time.sleep(0.05)
            emitted = sum(
                f.result() for f in run._futures if f.done() and not f.cancelled()
            )
        assert consumed >= 3
        assert emitted < len(queries) // 2, (
            f"worker emitted {emitted} of {len(queries)} queries after cancel"
        )
