"""Unit tests for the two-phase cost-based optimizer (Section 6)."""

from __future__ import annotations

import pytest

from repro.core.index import LightWeightIndex
from repro.core.optimizer import DEFAULT_TAU, choose_plan
from repro.core.query import Query
from repro.core.result import EnumerationStats, Phase
from repro.graph.builder import from_edges
from repro.graph.generators import complete_graph, erdos_renyi


class TestThresholding:
    def test_small_search_space_skips_full_optimization(self, paper_graph, paper_query):
        index = LightWeightIndex.build(paper_graph, paper_query)
        plan = choose_plan(index, tau=1e5)
        assert plan.kind == "dfs"
        assert not plan.used_full_estimator
        assert plan.dfs_cost is None and plan.join_cost is None

    def test_tau_zero_always_runs_full_optimizer(self, paper_graph, paper_query):
        index = LightWeightIndex.build(paper_graph, paper_query)
        plan = choose_plan(index, tau=0.0)
        assert plan.used_full_estimator
        assert plan.dfs_cost is not None and plan.join_cost is not None

    def test_large_search_space_triggers_full_optimizer(self):
        graph = complete_graph(12)
        index = LightWeightIndex.build(graph, Query(0, 11, 5))
        plan = choose_plan(index, tau=100.0)
        assert plan.used_full_estimator

    def test_plan_kind_matches_cheaper_cost(self):
        graph = erdos_renyi(100, 6.0, seed=21)
        index = LightWeightIndex.build(graph, Query(0, 1, 5))
        plan = choose_plan(index, tau=0.0)
        assert plan.used_full_estimator
        if plan.dfs_cost < plan.join_cost:
            assert plan.kind == "dfs"
        else:
            assert plan.kind == "join"


class TestForcedPlans:
    def test_force_dfs_skips_optimization(self, paper_graph, paper_query):
        index = LightWeightIndex.build(paper_graph, paper_query)
        plan = choose_plan(index, force="dfs")
        assert plan.kind == "dfs"
        assert not plan.used_full_estimator

    def test_force_join_runs_optimizer_for_cut(self, paper_graph, paper_query):
        index = LightWeightIndex.build(paper_graph, paper_query)
        plan = choose_plan(index, force="join")
        assert plan.kind == "join"
        assert plan.used_full_estimator
        assert 1 <= plan.cut_position <= paper_query.k - 1


class TestStatsIntegration:
    def test_stats_record_estimates_and_phases(self, paper_graph, paper_query):
        index = LightWeightIndex.build(paper_graph, paper_query)
        stats = EnumerationStats()
        choose_plan(index, tau=0.0, stats=stats)
        assert stats.preliminary_estimate is not None
        assert stats.full_estimate is not None
        assert Phase.PRELIMINARY in stats.phase_seconds
        assert Phase.OPTIMIZATION in stats.phase_seconds

    def test_preliminary_only_when_below_threshold(self, paper_graph, paper_query):
        index = LightWeightIndex.build(paper_graph, paper_query)
        stats = EnumerationStats()
        choose_plan(index, tau=1e9, stats=stats)
        assert stats.preliminary_estimate is not None
        assert stats.full_estimate is None
        assert Phase.OPTIMIZATION not in stats.phase_seconds

    def test_default_tau_matches_paper_setting(self):
        assert DEFAULT_TAU == pytest.approx(1e5)

    def test_empty_query_is_a_dfs_plan(self):
        graph = from_edges([(0, 1), (2, 3)])
        index = LightWeightIndex.build(graph, Query(0, 3, 4))
        plan = choose_plan(index)
        assert plan.kind == "dfs"
        assert plan.preliminary == 0.0
