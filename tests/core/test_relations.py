"""Unit tests for the join-based model and the full reducer (Algorithm 2)."""

from __future__ import annotations

import pytest

from repro.core.query import Query
from repro.core.relations import build_relations
from repro.graph.builder import from_edges

from tests.helpers import brute_force_walks, paper_figure1_graph


@pytest.fixture()
def paper_relations(paper_graph, paper_query):
    return build_relations(paper_graph, paper_query)


class TestConstruction:
    def test_number_of_relations_equals_k(self, paper_relations, paper_query):
        assert len(paper_relations) == paper_query.k

    def test_r1_contains_only_edges_from_source(self, paper_graph, paper_query):
        relations = build_relations(paper_graph, paper_query, apply_full_reducer=False)
        s = paper_query.source
        assert all(u == s for u, _ in relations[1].tuples)
        assert len(relations[1]) == paper_graph.out_degree(s)

    def test_last_relation_targets_only_t(self, paper_graph, paper_query):
        relations = build_relations(paper_graph, paper_query, apply_full_reducer=False)
        t = paper_query.target
        assert all(v == t for _, v in relations[paper_query.k].tuples)

    def test_padding_tuple_present_in_all_but_first(self, paper_graph, paper_query):
        relations = build_relations(paper_graph, paper_query, apply_full_reducer=False)
        t = paper_query.target
        assert (t, t) not in relations[1].tuples
        for i in range(2, paper_query.k + 1):
            assert (t, t) in relations[i].tuples

    def test_interior_relations_exclude_source_and_target_edges(self, paper_graph, paper_query):
        relations = build_relations(paper_graph, paper_query, apply_full_reducer=False)
        s, t = paper_query.source, paper_query.target
        for i in range(2, paper_query.k):
            for u, v in relations[i].tuples:
                assert u != s and v != s
                assert u != t or (u, v) == (t, t)

    def test_paper_example_figure3a_relation_sizes(self, paper_graph, paper_query):
        """Figure 3a: before reduction R_1 has 3 tuples and R_4 has 4 (incl. (t,t))."""
        relations = build_relations(paper_graph, paper_query, apply_full_reducer=False)
        assert len(relations[1]) == 3
        assert len(relations[4]) == 4

    def test_indexing_bounds(self, paper_relations):
        with pytest.raises(IndexError):
            paper_relations[0]
        with pytest.raises(IndexError):
            paper_relations[len(paper_relations) + 1]


class TestFullReducer:
    def test_reduction_only_removes_tuples(self, paper_graph, paper_query):
        raw = build_relations(paper_graph, paper_query, apply_full_reducer=False)
        reduced = build_relations(paper_graph, paper_query, apply_full_reducer=True)
        for i in range(1, paper_query.k + 1):
            assert reduced[i].tuples <= raw[i].tuples

    def test_paper_example_pruned_tuples(self, paper_graph, paper_query):
        """Example 4.1: (v4, v5) is pruned from R_2 and (v1, v3) from R_3."""
        g = paper_graph
        reduced = build_relations(paper_graph, paper_query)
        v4, v5 = g.to_internal("v4"), g.to_internal("v5")
        v1, v3 = g.to_internal("v1"), g.to_internal("v3")
        assert (v4, v5) not in reduced[2].tuples
        assert (v1, v3) not in reduced[3].tuples

    def test_every_remaining_tuple_appears_in_a_walk(self, paper_graph, paper_query):
        """Proposition 4.2: no dangling tuples remain after the full reducer."""
        g = paper_graph
        s, t, k = paper_query.source, paper_query.target, paper_query.k
        reduced = build_relations(paper_graph, paper_query)
        walks = brute_force_walks(g, s, t, k)
        # Pad walks with t to length k + 1 to obtain join tuples.
        tuples = {walk + (t,) * (k + 1 - len(walk)) for walk in walks}
        for i in range(1, k + 1):
            for u, v in reduced[i].tuples:
                assert any(tup[i - 1] == u and tup[i] == v for tup in tuples), (i, u, v)

    def test_every_walk_survives_reduction(self, paper_graph, paper_query):
        """Lemma A.2: every walk corresponds to a surviving join tuple."""
        g = paper_graph
        s, t, k = paper_query.source, paper_query.target, paper_query.k
        reduced = build_relations(paper_graph, paper_query)
        for walk in brute_force_walks(g, s, t, k):
            padded = walk + (t,) * (k + 1 - len(walk))
            for i in range(1, k + 1):
                assert (padded[i - 1], padded[i]) in reduced[i].tuples

    def test_reducer_on_graph_without_results(self):
        graph = from_edges([(0, 1), (1, 2), (3, 4)])
        reduced = build_relations(graph, Query(0, 4, 4))
        assert all(len(reduced[i]) == 0 for i in range(1, 5))

    def test_total_tuples_and_adjacency(self, paper_relations):
        assert paper_relations.total_tuples() == sum(
            len(paper_relations[i]) for i in range(1, len(paper_relations) + 1)
        )
        adjacency = paper_relations[2].adjacency()
        for source, targets in adjacency.items():
            for target in targets:
                assert (source, target) in paper_relations[2].tuples

    def test_neighbors_at(self, paper_graph, paper_relations, paper_query):
        s = paper_query.source
        neighbors = paper_relations.neighbors_at(1, s)
        assert set(neighbors) == {v for (u, v) in paper_relations[1].tuples if u == s}


class TestK2EdgeCase:
    def test_k_equals_two(self, paper_graph):
        g = paper_graph
        query = Query(g.to_internal("s"), g.to_internal("t"), 2)
        relations = build_relations(g, query)
        assert len(relations) == 2
        # Only paths of length <= 2 survive: (s, v0, t) and none of length 1.
        sources_r1 = relations[1].sources()
        assert g.to_internal("s") in sources_r1
