"""Equivalence and unit tests for the iterative enumeration kernels.

The contract under test: :func:`run_dfs_kernel` / :func:`run_join_kernel`
emit exactly the same paths in exactly the same order as the recursive
engines, charge the same statistics counters, and behave identically under
result-limit interruption; deadline interruption yields a prefix of the
full enumeration.  On top sit unit tests for the columnar plumbing the
kernels introduced: :class:`PathBuffer`, block emission on the collector,
buffer-backed :class:`QueryResult` and engine selection.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.core.dfs import run_idx_dfs
from repro.core.engine import IdxDfs, IdxJoin, PathEnum
from repro.core.index import LightWeightIndex
from repro.core.join import run_idx_join
from repro.core.kernels import run_dfs_kernel, run_join_kernel, run_subquery_kernel
from repro.core.join import evaluate_subquery
from repro.core.listener import Deadline, ResultCollector, RunConfig
from repro.core.query import Query
from repro.core.result import EnumerationStats, PathBuffer, QueryResult
from repro.core.constraints import PredicateConstraint
from repro.errors import EnumerationTimeout, ResultLimitReached
from repro.graph.generators import complete_graph, erdos_renyi

#: Counters that must agree exactly between a kernel and a recursive run.
COUNTERS = (
    "edges_accessed",
    "partial_results_generated",
    "invalid_partial_results",
    "results_emitted",
)


def _paths_of(collector: ResultCollector):
    stored = collector.stored_paths()
    if isinstance(stored, PathBuffer):
        return stored.to_paths()
    return stored


def _random_cases(count: int, seed: int = 11):
    rng = random.Random(seed)
    for trial in range(count):
        graph = erdos_renyi(
            rng.randint(8, 40), rng.uniform(1.5, 5.0), seed=1000 + trial
        )
        s, t = rng.sample(range(graph.num_vertices), 2)
        k = rng.randint(2, 7)
        yield rng, graph, Query(s, t, k)


class TestDfsKernelEquivalence:
    def test_paper_example(self, paper_graph, paper_query):
        index = LightWeightIndex.build(paper_graph, paper_query)
        recursive = ResultCollector()
        run_idx_dfs(index, recursive)
        kernel = ResultCollector()
        run_dfs_kernel(index, kernel)
        assert _paths_of(kernel) == _paths_of(recursive)
        assert kernel.count == recursive.count == 5

    def test_random_graphs_same_paths_same_order_same_stats(self):
        nonempty = 0
        for _, graph, query in _random_cases(40):
            index = LightWeightIndex.build(graph, query)
            c_rec, s_rec = ResultCollector(), EnumerationStats()
            run_idx_dfs(index, c_rec, stats=s_rec)
            c_ker, s_ker = ResultCollector(), EnumerationStats()
            run_dfs_kernel(index, c_ker, stats=s_ker)
            assert _paths_of(c_ker) == _paths_of(c_rec)
            assert c_ker.count == c_rec.count
            for counter in COUNTERS:
                assert getattr(s_ker, counter) == getattr(s_rec, counter), counter
            nonempty += bool(c_rec.count)
        assert nonempty >= 10  # the sweep must actually exercise enumeration

    def test_k2_inline_scan(self):
        # k == 2 takes the dedicated root-scan path of the kernel.
        for _, graph, query in _random_cases(15, seed=5):
            query = query.with_k(2)
            index = LightWeightIndex.build(graph, query)
            c_rec = ResultCollector()
            run_idx_dfs(index, c_rec)
            c_ker = ResultCollector()
            run_dfs_kernel(index, c_ker)
            assert _paths_of(c_ker) == _paths_of(c_rec)

    def test_result_limit_interruption_identical(self):
        checked = 0
        for rng, graph, query in _random_cases(30, seed=23):
            index = LightWeightIndex.build(graph, query)
            probe = ResultCollector(store_paths=False)
            run_idx_dfs(index, probe)
            if probe.count < 3:
                continue
            limit = rng.randint(1, probe.count - 1)
            c_rec, s_rec = ResultCollector(result_limit=limit), EnumerationStats()
            with pytest.raises(ResultLimitReached):
                run_idx_dfs(index, c_rec, stats=s_rec)
            c_ker, s_ker = ResultCollector(result_limit=limit), EnumerationStats()
            with pytest.raises(ResultLimitReached):
                run_dfs_kernel(index, c_ker, stats=s_ker)
            assert _paths_of(c_ker) == _paths_of(c_rec)
            assert c_ker.count == c_rec.count == limit
            # The kernel stops at exactly the same search-tree point.
            for counter in ("edges_accessed", "partial_results_generated",
                            "invalid_partial_results"):
                assert getattr(s_ker, counter) == getattr(s_rec, counter), counter
            checked += 1
        assert checked >= 5

    def test_deadline_interruption_yields_prefix(self):
        graph = complete_graph(10)
        query = Query(0, 9, 6)
        index = LightWeightIndex.build(graph, query)
        full = ResultCollector()
        run_dfs_kernel(index, full)
        collector = ResultCollector()
        deadline = Deadline(0.0, poll_interval=1)
        with pytest.raises(EnumerationTimeout):
            run_dfs_kernel(index, collector, deadline=deadline)
        partial = _paths_of(collector)
        assert partial == _paths_of(full)[: len(partial)]

    def test_store_paths_disabled_still_counts(self, paper_graph, paper_query):
        index = LightWeightIndex.build(paper_graph, paper_query)
        collector = ResultCollector(store_paths=False)
        run_dfs_kernel(index, collector)
        assert collector.count == 5
        assert collector.stored_paths() is None


class TestJoinKernelEquivalence:
    def test_random_graphs_all_cut_positions(self):
        configs = 0
        for _, graph, query in _random_cases(30, seed=37):
            if query.k < 3:
                query = query.with_k(3)
            index = LightWeightIndex.build(graph, query)
            for cut in range(1, query.k):
                c_rec, s_rec = ResultCollector(), EnumerationStats()
                run_idx_join(index, cut, c_rec, stats=s_rec)
                c_ker, s_ker = ResultCollector(), EnumerationStats()
                run_join_kernel(index, cut, c_ker, stats=s_ker)
                assert _paths_of(c_ker) == _paths_of(c_rec), (query, cut)
                for counter in COUNTERS + (
                    "peak_partial_result_tuples", "peak_partial_result_bytes",
                ):
                    assert getattr(s_ker, counter) == getattr(s_rec, counter), counter
                configs += 1
        assert configs >= 60

    def test_result_limit_interruption_identical(self):
        checked = 0
        for rng, graph, query in _random_cases(25, seed=41):
            if query.k < 3:
                query = query.with_k(3)
            index = LightWeightIndex.build(graph, query)
            cut = max(1, query.k // 2)
            probe = ResultCollector(store_paths=False)
            run_idx_join(index, cut, probe)
            if probe.count < 3:
                continue
            limit = rng.randint(1, probe.count - 1)
            c_rec = ResultCollector(result_limit=limit)
            with pytest.raises(ResultLimitReached):
                run_idx_join(index, cut, c_rec)
            c_ker = ResultCollector(result_limit=limit)
            with pytest.raises(ResultLimitReached):
                run_join_kernel(index, cut, c_ker)
            assert _paths_of(c_ker) == _paths_of(c_rec)
            assert c_ker.count == c_rec.count == limit
            checked += 1
        assert checked >= 3

    def test_invalid_cut_position_rejected(self, paper_graph, paper_query):
        index = LightWeightIndex.build(paper_graph, paper_query)
        with pytest.raises(ValueError):
            run_join_kernel(index, 0, ResultCollector())
        with pytest.raises(ValueError):
            run_join_kernel(index, paper_query.k, ResultCollector())


class TestSubqueryKernel:
    def test_matches_recursive_walks(self):
        for _, graph, query in _random_cases(20, seed=53):
            index = LightWeightIndex.build(graph, query)
            for offset in range(0, query.k):
                for length in range(0, query.k - offset + 1):
                    walks = evaluate_subquery(
                        index, start=query.source, offset=offset, length=length
                    )
                    data, width = run_subquery_kernel(
                        index, start=query.source, offset=offset, length=length
                    )
                    assert width == length + 1
                    columnar = [
                        tuple(data[i : i + width]) for i in range(0, len(data), width)
                    ]
                    assert columnar == walks, (offset, length)

    def test_start_outside_index(self, paper_graph, paper_query):
        index = LightWeightIndex.build(paper_graph, paper_query)
        outside = paper_graph.num_vertices + 5
        assert run_subquery_kernel(index, start=outside, offset=0, length=0) == (
            [outside], 1,
        )
        assert run_subquery_kernel(index, start=outside, offset=0, length=2) == ([], 3)


class TestPathBuffer:
    def test_append_and_access(self):
        buffer = PathBuffer()
        buffer.append_path((0, 1, 5))
        buffer.append_path([0, 2, 3, 5])
        assert len(buffer) == 2
        assert buffer[0] == (0, 1, 5)
        assert buffer[-1] == (0, 2, 3, 5)
        assert list(buffer) == [(0, 1, 5), (0, 2, 3, 5)]
        assert buffer.total_vertices == 7

    def test_extend_block_with_truncation(self):
        buffer = PathBuffer()
        buffer.extend_block([0, 1, 0, 2, 0, 3], [2, 4, 6], take=2)
        assert buffer.to_paths() == [(0, 1), (0, 2)]
        buffer.extend_block([7, 8], [2])
        assert buffer.to_paths() == [(0, 1), (0, 2), (7, 8)]

    def test_to_lists_and_arrays(self):
        buffer = PathBuffer.from_paths([(0, 1, 5), (0, 5)])
        assert buffer.to_lists() == [[0, 1, 5], [0, 5]]
        data, indptr = buffer.arrays()
        assert data.tolist() == [0, 1, 5, 0, 5]
        assert indptr.tolist() == [0, 3, 5]
        # Sealed buffers keep working (and can grow again).
        assert buffer.to_paths() == [(0, 1, 5), (0, 5)]
        buffer.append_path((0, 4, 5))
        assert len(buffer) == 3

    def test_equality(self):
        buffer = PathBuffer.from_paths([(0, 1), (2, 3)])
        assert buffer == [(0, 1), (2, 3)]
        assert buffer == PathBuffer.from_paths([(0, 1), (2, 3)])
        assert buffer != [(0, 1)]

    def test_pickle_roundtrip_is_columnar(self):
        # Realistic vertex-id magnitudes; the wire form is two downcast
        # primitive arrays, smaller than the equivalent list of tuples.
        base = 10**6
        buffer = PathBuffer.from_paths(
            [tuple(range(base + i, base + i + 5)) for i in range(500)]
        )
        clone = pickle.loads(pickle.dumps(buffer))
        assert clone == buffer
        assert clone.arrays()[0].dtype.name == "int64"
        assert len(pickle.dumps(buffer)) < len(pickle.dumps(buffer.to_paths()))

    def test_index_errors(self):
        buffer = PathBuffer.from_paths([(0, 1)])
        with pytest.raises(IndexError):
            buffer.path(1)
        with pytest.raises(ValueError):
            PathBuffer(data=[1, 2])


class TestCollectorBlockEmission:
    def test_blocks_land_in_buffer(self):
        collector = ResultCollector()
        collector.emit_block([0, 1, 0, 2, 5], [2, 5])
        stored = collector.stored_paths()
        assert isinstance(stored, PathBuffer)
        assert stored.to_paths() == [(0, 1), (0, 2, 5)]
        assert collector.count == 2

    def test_result_limit_truncates_block_and_raises(self):
        collector = ResultCollector(result_limit=2)
        with pytest.raises(ResultLimitReached):
            collector.emit_block([0, 1, 0, 2, 0, 3], [2, 4, 6])
        assert collector.count == 2
        assert collector.stored_paths().to_paths() == [(0, 1), (0, 2)]

    def test_response_time_recorded_when_block_crosses_k(self):
        collector = ResultCollector(response_k=2)
        collector.emit_block([0, 1], [2])
        assert collector.response_seconds is None
        collector.emit_block([0, 2, 0, 3], [2, 4])
        assert collector.response_seconds is not None

    def test_on_result_replays_block_per_path(self):
        seen = []
        collector = ResultCollector(on_result=seen.append)
        collector.emit_block([0, 1, 0, 2, 5], [2, 5])
        assert seen == [(0, 1), (0, 2, 5)]
        # Streaming collectors store tuples, not a buffer.
        assert collector.stored_paths() == [(0, 1), (0, 2, 5)]

    def test_store_paths_disabled_counts_only(self):
        collector = ResultCollector(store_paths=False)
        collector.emit_block([0, 1], [2])
        assert collector.count == 1
        assert collector.stored_paths() is None

    def test_remaining_before_flush(self):
        collector = ResultCollector(result_limit=10, response_k=4)
        assert collector.remaining_before_flush() == 4
        collector.emit_block([0, 1] * 5, [2, 4, 6, 8, 10])
        assert collector.remaining_before_flush() == 5  # response recorded
        assert ResultCollector(response_k=0).remaining_before_flush() is None


class TestBufferBackedQueryResult:
    def _result(self):
        buffer = PathBuffer.from_paths([(0, 1, 5), (0, 5)])
        return QueryResult(
            source=0, target=5, k=4, algorithm="IDX-DFS", count=2,
            paths=buffer, stats=EnumerationStats(),
        )

    def test_lazy_materialisation(self):
        result = self._result()
        assert result.path_buffer is not None
        assert result.paths == [(0, 1, 5), (0, 5)]
        assert result.path_lengths() == [2, 1]

    def test_paths_setter_clears_buffer(self):
        result = self._result()
        result.paths = None
        assert result.paths is None
        assert result.path_buffer is None

    def test_pickle_ships_columnar_and_reads_back(self):
        result = self._result()
        clone = pickle.loads(pickle.dumps(result))
        assert clone.path_buffer is not None
        assert clone.paths == [(0, 1, 5), (0, 5)]
        assert clone.count == 2
        assert clone.algorithm == "IDX-DFS"


class TestEngineSelection:
    def test_kernel_and_recursive_runs_match(self, paper_graph, paper_query):
        for algorithm in (PathEnum(), IdxDfs(), IdxJoin()):
            kernel = algorithm.run(
                paper_graph, paper_query, RunConfig(engine="kernel")
            )
            recursive = algorithm.run(
                paper_graph, paper_query, RunConfig(engine="recursive")
            )
            assert kernel.paths == recursive.paths
            assert kernel.count == recursive.count
            assert kernel.stats.plan == recursive.stats.plan

    def test_auto_uses_columnar_fast_path(self, paper_graph, paper_query):
        result = IdxDfs().run(paper_graph, paper_query, RunConfig())
        assert result.path_buffer is not None

    def test_recursive_engine_has_no_buffer(self, paper_graph, paper_query):
        result = IdxDfs().run(paper_graph, paper_query, RunConfig(engine="recursive"))
        assert result.path_buffer is None
        assert result.count == 5

    def test_constrained_queries_fall_back_automatically(self, paper_graph, paper_query):
        constraint = PredicateConstraint(lambda u, v, w, l: True, paper_graph)
        plain = PathEnum().run(paper_graph, paper_query, RunConfig())
        constrained = PathEnum().run(
            paper_graph, paper_query, RunConfig(constraint=constraint)
        )
        assert constrained.paths == plain.paths

    def test_forcing_kernel_on_constrained_query_rejected(self, paper_graph, paper_query):
        constraint = PredicateConstraint(lambda u, v, w, l: True, paper_graph)
        with pytest.raises(ValueError):
            PathEnum().run(
                paper_graph, paper_query,
                RunConfig(constraint=constraint, engine="kernel"),
            )

    def test_unknown_engine_rejected(self, paper_graph, paper_query):
        with pytest.raises(ValueError):
            PathEnum().run(paper_graph, paper_query, RunConfig(engine="vectorised"))
