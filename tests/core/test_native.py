"""Equivalence and unit tests for the native enumeration engine.

The contract under test is the same byte-identity the kernels are held to:
:func:`run_dfs_native` / :func:`run_join_native` emit exactly the same
paths in exactly the same order as the recursive engines, charge the same
statistics counters, and behave identically under result-limit
interruption; deadline interruption yields a prefix of the full
enumeration.  The vectorised tier needs only numpy and is exercised
everywhere; the Numba-compiled tier's *logic* is additionally driven
uncompiled (pure Python) so its resumable state machine is covered even on
machines without the toolchain, and the compiled tier itself runs under a
``skipif`` when Numba is importable.

Also covered here: the engine-selection matrix around ``"native"`` (auto
preference, strict-JIT fallback with a single warning, constrained-query
fallback), the group-fused index build, and CSR-mirror memoisation.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core import native
from repro.core.dfs import run_idx_dfs
from repro.core.engine import IdxDfs, IdxJoin, PathEnum
from repro.core.index import LightWeightIndex
from repro.core.kernels import run_dfs_kernel, run_join_kernel, run_subquery_kernel
from repro.core.listener import Deadline, ResultCollector, RunConfig
from repro.core.native import (
    jit_ready,
    run_dfs_native,
    run_join_native,
    run_subquery_native,
    warmup,
)
from repro.core.constraints import PredicateConstraint
from repro.core.query import Query
from repro.core.result import EnumerationStats, PathBuffer
from repro.errors import EnumerationTimeout, ResultLimitReached
from repro.graph.generators import complete_graph, erdos_renyi
from repro.graph.traversal import multi_source_bfs_distances_bounded, bfs_distances_bounded

#: Counters that must agree exactly between a native and a recursive run.
COUNTERS = (
    "edges_accessed",
    "partial_results_generated",
    "invalid_partial_results",
    "results_emitted",
)

#: Join runs additionally pin the partial-result peaks.
JOIN_COUNTERS = COUNTERS + (
    "peak_partial_result_tuples",
    "peak_partial_result_bytes",
)

requires_numba = pytest.mark.skipif(
    not jit_ready(), reason="Numba toolchain not importable"
)


def _paths_of(collector: ResultCollector):
    stored = collector.stored_paths()
    if isinstance(stored, PathBuffer):
        return stored.to_paths()
    return stored


def _random_cases(count: int, seed: int = 11):
    rng = random.Random(seed)
    for trial in range(count):
        graph = erdos_renyi(
            rng.randint(8, 40), rng.uniform(1.5, 5.0), seed=1000 + trial
        )
        s, t = rng.sample(range(graph.num_vertices), 2)
        k = rng.randint(2, 7)
        yield rng, graph, Query(s, t, k)


def _dfs_runners():
    """The native DFS entry points under test: vectorised always, and the
    resumable fill loop driven uncompiled (the JIT tier's exact logic)."""
    yield "vectorised", lambda index, collector, *, deadline=None, stats=None: (
        native._run_dfs_vectorised(
            index,
            collector,
            deadline=deadline,
            stats=stats if stats is not None else EnumerationStats(),
        )
    )
    yield "fill-loop", lambda index, collector, *, deadline=None, stats=None: (
        native._run_dfs_fill_loop(
            index,
            collector,
            deadline=deadline,
            stats=stats if stats is not None else EnumerationStats(),
            filler=native._dfs_fill,
        )
    )


class TestDfsNativeEquivalence:
    def test_paper_example(self, paper_graph, paper_query):
        index = LightWeightIndex.build(paper_graph, paper_query)
        recursive, r_stats = ResultCollector(), EnumerationStats()
        run_idx_dfs(index, recursive, stats=r_stats)
        for label, runner in _dfs_runners():
            collector, stats = ResultCollector(), EnumerationStats()
            runner(index, collector, stats=stats)
            assert _paths_of(collector) == _paths_of(recursive), label
            for name in COUNTERS:
                assert getattr(stats, name) == getattr(r_stats, name), (label, name)

    def test_random_graphs_same_paths_same_order_same_stats(self):
        for _, graph, query in _random_cases(30):
            index = LightWeightIndex.build(graph, query)
            recursive, r_stats = ResultCollector(), EnumerationStats()
            run_idx_dfs(index, recursive, stats=r_stats)
            for label, runner in _dfs_runners():
                collector, stats = ResultCollector(), EnumerationStats()
                runner(index, collector, stats=stats)
                assert _paths_of(collector) == _paths_of(recursive), (label, query)
                for name in COUNTERS:
                    assert getattr(stats, name) == getattr(r_stats, name), (
                        label, query, name,
                    )

    def test_k2_and_dense_cliques(self):
        cases = [(complete_graph(8), Query(0, 7, 2))]
        cases += [
            (complete_graph(n), Query(0, n - 1, k))
            for n, k in ((10, 5), (12, 6), (9, 7))
        ]
        for graph, query in cases:
            index = LightWeightIndex.build(graph, query)
            recursive, r_stats = ResultCollector(), EnumerationStats()
            run_idx_dfs(index, recursive, stats=r_stats)
            collector, stats = ResultCollector(), EnumerationStats()
            run_dfs_native(index, collector, stats=stats)
            assert _paths_of(collector) == _paths_of(recursive), query
            for name in COUNTERS:
                assert getattr(stats, name) == getattr(r_stats, name), (query, name)

    def test_paths_are_plain_python_ints(self):
        index = LightWeightIndex.build(complete_graph(6), Query(0, 5, 3))
        collector = ResultCollector()
        run_dfs_native(index, collector)
        for path in _paths_of(collector):
            assert all(type(v) is int for v in path)

    def test_result_limit_interruption_identical(self):
        for rng, graph, query in _random_cases(20, seed=23):
            index = LightWeightIndex.build(graph, query)
            probe = ResultCollector()
            run_dfs_native(index, probe)
            if probe.count < 2:
                continue
            limit = rng.randint(1, probe.count - 1)
            recursive, r_stats = ResultCollector(result_limit=limit), EnumerationStats()
            with pytest.raises(ResultLimitReached):
                run_idx_dfs(index, recursive, stats=r_stats)
            for label, runner in _dfs_runners():
                collector = ResultCollector(result_limit=limit)
                stats = EnumerationStats()
                with pytest.raises(ResultLimitReached):
                    runner(index, collector, stats=stats)
                assert collector.count == limit, (label, query)
                assert _paths_of(collector) == _paths_of(recursive), (label, query)
                for name in COUNTERS:
                    assert getattr(stats, name) == getattr(r_stats, name), (
                        label, query, name,
                    )

    def test_limit_on_bulk_block_boundary(self):
        # complete_graph(10)/k=6 bulk-expands whole subtrees; limits around
        # block boundaries exercise the flush-and-replay path.
        index = LightWeightIndex.build(complete_graph(10), Query(0, 9, 6))
        full = ResultCollector()
        run_dfs_native(index, full)
        total = full.count
        for limit in (1, 999, 1000, 1001, 4096, total - 1):
            if not 0 < limit < total:
                continue
            recursive = ResultCollector(result_limit=limit)
            with pytest.raises(ResultLimitReached):
                run_idx_dfs(index, recursive)
            collector = ResultCollector(result_limit=limit)
            with pytest.raises(ResultLimitReached):
                run_dfs_native(index, collector)
            assert collector.count == limit
            assert _paths_of(collector) == _paths_of(recursive), limit

    def test_deadline_interruption_yields_prefix(self):
        index = LightWeightIndex.build(complete_graph(10), Query(0, 9, 6))
        full = ResultCollector()
        run_dfs_native(index, full)
        everything = _paths_of(full)
        for label, runner in _dfs_runners():
            collector = ResultCollector()
            with pytest.raises(EnumerationTimeout):
                runner(
                    index, collector, deadline=Deadline(0.0, poll_interval=1),
                    stats=EnumerationStats(),
                )
            emitted = _paths_of(collector)
            assert emitted == everything[: len(emitted)], label
            assert len(emitted) < len(everything), label

    def test_store_paths_disabled_still_counts(self):
        index = LightWeightIndex.build(complete_graph(8), Query(0, 7, 4))
        reference = ResultCollector()
        run_dfs_native(index, reference)
        collector = ResultCollector(store_paths=False)
        run_dfs_native(index, collector)
        assert collector.count == reference.count
        assert collector.stored_paths() is None


class TestJoinNativeEquivalence:
    def test_random_graphs_all_cut_positions(self):
        for _, graph, query in _random_cases(20, seed=37):
            index = LightWeightIndex.build(graph, query)
            for cut in range(1, query.k):
                kernel, k_stats = ResultCollector(), EnumerationStats()
                run_join_kernel(index, cut, kernel, stats=k_stats)
                collector, stats = ResultCollector(), EnumerationStats()
                run_join_native(index, cut, collector, stats=stats)
                assert _paths_of(collector) == _paths_of(kernel), (query, cut)
                for name in JOIN_COUNTERS:
                    assert getattr(stats, name) == getattr(k_stats, name), (
                        query, cut, name,
                    )

    def test_result_limit_interruption_identical(self):
        for rng, graph, query in _random_cases(15, seed=41):
            index = LightWeightIndex.build(graph, query)
            cut = rng.randint(1, query.k - 1)
            probe = ResultCollector()
            run_join_native(index, cut, probe)
            if probe.count < 2:
                continue
            limit = rng.randint(1, probe.count - 1)
            kernel, k_stats = ResultCollector(result_limit=limit), EnumerationStats()
            with pytest.raises(ResultLimitReached):
                run_join_kernel(index, cut, kernel, stats=k_stats)
            collector, stats = ResultCollector(result_limit=limit), EnumerationStats()
            with pytest.raises(ResultLimitReached):
                run_join_native(index, cut, collector, stats=stats)
            assert collector.count == limit
            assert _paths_of(collector) == _paths_of(kernel), (query, cut)
            for name in COUNTERS:
                assert getattr(stats, name) == getattr(k_stats, name), (query, cut)

    def test_invalid_cut_position_rejected(self, paper_graph, paper_query):
        index = LightWeightIndex.build(paper_graph, paper_query)
        with pytest.raises(ValueError):
            run_join_native(index, 0, ResultCollector())
        with pytest.raises(ValueError):
            run_join_native(index, paper_query.k, ResultCollector())


class TestSubqueryNative:
    def test_matches_kernel_walks_and_counters(self):
        for _, graph, query in _random_cases(15, seed=53):
            index = LightWeightIndex.build(graph, query)
            for offset in range(query.k):
                for length in range(1, query.k - offset + 1):
                    k_stats = EnumerationStats()
                    k_data, k_width = run_subquery_kernel(
                        index, start=query.source, offset=offset, length=length,
                        stats=k_stats,
                    )
                    stats = EnumerationStats()
                    data, width = run_subquery_native(
                        index, start=query.source, offset=offset, length=length,
                        stats=stats,
                    )
                    assert width == k_width
                    assert list(data) == list(k_data), (query, offset, length)
                    for name in COUNTERS:
                        assert getattr(stats, name) == getattr(k_stats, name)

    def test_start_outside_index(self, paper_graph, paper_query):
        index = LightWeightIndex.build(paper_graph, paper_query)
        outside = paper_graph.num_vertices + 5
        data, width = run_subquery_native(index, start=outside, offset=0, length=0)
        assert list(data) == [outside] and width == 1
        data, width = run_subquery_native(index, start=outside, offset=0, length=2)
        assert list(data) == [] and width == 3


class TestEngineSelection:
    def test_native_runs_match_recursive(self, paper_graph, paper_query):
        for algorithm in (PathEnum(), IdxDfs(), IdxJoin()):
            recursive = algorithm.run(
                paper_graph, paper_query, RunConfig(engine="recursive")
            )
            native_run = algorithm.run(
                paper_graph, paper_query, RunConfig(engine="native")
            )
            assert native_run.paths == recursive.paths
            assert native_run.count == recursive.count
            assert native_run.stats.plan == recursive.stats.plan

    def test_native_uses_columnar_fast_path(self, paper_graph, paper_query):
        result = IdxDfs().run(paper_graph, paper_query, RunConfig(engine="native"))
        assert result.path_buffer is not None

    def test_auto_without_numba_keeps_kernel_tier(self, paper_graph, paper_query):
        if jit_ready():
            pytest.skip("Numba installed: auto legitimately selects native")
        kernel = IdxDfs().run(paper_graph, paper_query, RunConfig(engine="kernel"))
        auto = IdxDfs().run(paper_graph, paper_query, RunConfig())
        assert auto.paths == kernel.paths

    def test_constrained_native_falls_back_to_recursive(
        self, paper_graph, paper_query
    ):
        constraint = PredicateConstraint(lambda u, v, w, l: True, paper_graph)
        plain = PathEnum().run(paper_graph, paper_query, RunConfig())
        constrained = PathEnum().run(
            paper_graph, paper_query,
            RunConfig(constraint=constraint, engine="native"),
        )
        assert constrained.paths == plain.paths

    def test_strict_jit_fallback_warns_once(
        self, paper_graph, paper_query, monkeypatch
    ):
        if jit_ready():
            pytest.skip("Numba installed: the strict knob is satisfied")
        monkeypatch.setenv("REPRO_NATIVE", "jit")
        monkeypatch.setitem(native._WARNED, "fallback", False)
        with pytest.warns(RuntimeWarning, match="falling back to engine='kernel'"):
            first = IdxDfs().run(
                paper_graph, paper_query, RunConfig(engine="native")
            )
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            second = IdxDfs().run(
                paper_graph, paper_query, RunConfig(engine="native")
            )
        kernel = IdxDfs().run(paper_graph, paper_query, RunConfig(engine="kernel"))
        assert first.paths == kernel.paths == second.paths

    def test_warmup_reports_toolchain(self):
        assert warmup() is jit_ready()


@requires_numba
class TestCompiledTier:
    def test_compiled_filler_matches_recursive(self):
        assert warmup() is True
        for _, graph, query in _random_cases(10, seed=71):
            index = LightWeightIndex.build(graph, query)
            recursive, r_stats = ResultCollector(), EnumerationStats()
            run_idx_dfs(index, recursive, stats=r_stats)
            collector, stats = ResultCollector(), EnumerationStats()
            run_dfs_native(index, collector, stats=stats)
            assert _paths_of(collector) == _paths_of(recursive), query
            for name in COUNTERS:
                assert getattr(stats, name) == getattr(r_stats, name), (query, name)

    def test_auto_selects_native(self, paper_graph, paper_query):
        recursive = IdxDfs().run(
            paper_graph, paper_query, RunConfig(engine="recursive")
        )
        auto = IdxDfs().run(paper_graph, paper_query, RunConfig())
        assert auto.paths == recursive.paths


class TestGroupFusedIndexBuild:
    def test_group_build_matches_per_query_build(self):
        graph = erdos_renyi(120, 4.0, seed=19)
        t, k = 5, 4
        sources = [s for s in range(16) if s != t]
        queries = [Query(s, t, k) for s in sources]
        dist_to_t = bfs_distances_bounded(graph, t, cutoff=k, reverse=True)
        forward = multi_source_bfs_distances_bounded(
            graph, sources, cutoff=k, no_expand=t
        )
        fused = LightWeightIndex.build_group(
            graph, queries, dist_from_s_rows=forward, dist_to_t=dist_to_t
        )
        assert len(fused) == len(queries)
        for row, (query, index) in enumerate(zip(queries, fused)):
            solo = LightWeightIndex.build(
                graph, query, dist_to_t=dist_to_t, dist_from_s=forward[row]
            )
            assert index.num_index_vertices == solo.num_index_vertices
            assert index.num_index_edges == solo.num_index_edges
            v_f, _, nbr_f, ptr_f, off_f = index.native_csr()
            v_s, _, nbr_s, ptr_s, off_s = solo.native_csr()
            assert np.array_equal(v_f, v_s), query
            assert np.array_equal(nbr_f, nbr_s), query
            assert np.array_equal(ptr_f, ptr_s), query
            assert np.array_equal(off_f, off_s), query

    def test_group_build_rejects_mixed_targets(self):
        graph = erdos_renyi(30, 3.0, seed=7)
        dist_to_t = bfs_distances_bounded(graph, 5, cutoff=3, reverse=True)
        forward = multi_source_bfs_distances_bounded(graph, [0, 1], cutoff=3)
        with pytest.raises(ValueError):
            LightWeightIndex.build_group(
                graph,
                [Query(0, 5, 3), Query(1, 6, 3)],
                dist_from_s_rows=forward,
                dist_to_t=dist_to_t,
            )

    def test_prebuilt_index_through_algorithm_run(self):
        graph = erdos_renyi(80, 4.0, seed=29)
        t, k = 3, 4
        queries = [Query(s, t, k) for s in (0, 1, 2, 4, 5)]
        dist_to_t = bfs_distances_bounded(graph, t, cutoff=k, reverse=True)
        forward = multi_source_bfs_distances_bounded(
            graph, [q.source for q in queries], cutoff=k, no_expand=t
        )
        fused = LightWeightIndex.build_group(
            graph, queries, dist_from_s_rows=forward, dist_to_t=dist_to_t
        )
        for query, index in zip(queries, fused):
            direct = PathEnum().run(graph, query, RunConfig())
            injected = PathEnum().run(graph, query, RunConfig(), index=index)
            assert injected.paths == direct.paths
            assert injected.count == direct.count
            assert injected.stats.index_edges == direct.stats.index_edges


class TestCsrMemoisation:
    def test_kernel_csr_cached_per_index(self):
        index = LightWeightIndex.build(complete_graph(8), Query(0, 7, 4))
        assert index.kernel_csr() is index.kernel_csr()

    def test_native_csr_cached_per_index(self):
        index = LightWeightIndex.build(complete_graph(8), Query(0, 7, 4))
        assert index.native_csr() is index.native_csr()

    def test_mirrors_survive_repeated_runs(self):
        index = LightWeightIndex.build(complete_graph(8), Query(0, 7, 4))
        first_mirror = index.kernel_csr()
        collectors = [ResultCollector() for _ in range(3)]
        for collector in collectors:
            run_dfs_kernel(index, collector)
        assert index.kernel_csr() is first_mirror
        assert len({c.count for c in collectors}) == 1
