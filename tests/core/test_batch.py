"""Tests for the batch execution layer (QuerySession / BatchExecutor).

The contract under test: batch execution is purely an optimisation.  Every
query evaluated through the executor must return exactly the paths the
sequential engine returns, while the session performs strictly fewer
reverse-BFS traversals than it evaluates queries whenever targets repeat.
"""

from __future__ import annotations

import pytest

from repro.baselines.bc_dfs import BcDfs
from repro.core.constraints import PredicateConstraint
from repro.core.engine import BatchExecutor, IdxDfs, IdxJoin, PathEnum, QuerySession
from repro.core.listener import RunConfig
from repro.core.query import Query
from repro.core.result import paths_are_valid
from repro.graph.generators import erdos_renyi, power_law_graph
from repro.workloads.queries import QuerySetting, generate_target_centric_set


@pytest.fixture(scope="module")
def batch_graph():
    return erdos_renyi(150, 4.0, seed=11)


@pytest.fixture(scope="module")
def shared_target_queries(batch_graph):
    """A workload in which 12 queries hit only 3 distinct targets."""
    workload = generate_target_centric_set(
        batch_graph, count=12, k=4, num_targets=3, seed=5
    )
    assert len(workload.unique_targets()) < len(workload)
    return list(workload)


def _sequential(graph, queries, algorithm=None, config=None):
    algorithm = algorithm if algorithm is not None else PathEnum()
    config = config if config is not None else RunConfig(store_paths=True)
    return [algorithm.run(graph, query, config) for query in queries]


class TestBatchEquivalence:
    def test_results_match_sequential_query_for_query(
        self, batch_graph, shared_target_queries
    ):
        expected = _sequential(batch_graph, shared_target_queries)
        batch = BatchExecutor(batch_graph).run(
            shared_target_queries, RunConfig(store_paths=True)
        )
        assert len(batch.results) == len(expected)
        for sequential, batched in zip(expected, batch.results):
            assert batched.source == sequential.source
            assert batched.target == sequential.target
            assert batched.count == sequential.count
            assert set(batched.paths) == set(sequential.paths)
            assert paths_are_valid(
                batched.paths, batched.source, batched.target, batched.k
            )

    @pytest.mark.parametrize("algorithm_cls", [IdxDfs, IdxJoin])
    def test_fixed_plan_algorithms_match_sequential(
        self, batch_graph, shared_target_queries, algorithm_cls
    ):
        config = RunConfig(store_paths=True)
        expected = _sequential(batch_graph, shared_target_queries, algorithm_cls(), config)
        batch = BatchExecutor(batch_graph, algorithm=algorithm_cls()).run(
            shared_target_queries, config
        )
        for sequential, batched in zip(expected, batch.results):
            assert set(batched.paths) == set(sequential.paths)

    def test_parallel_results_match_and_keep_order(
        self, batch_graph, shared_target_queries
    ):
        expected = _sequential(batch_graph, shared_target_queries)
        batch = BatchExecutor(batch_graph, max_workers=4).run(
            shared_target_queries, RunConfig(store_paths=True)
        )
        assert [(r.source, r.target) for r in batch.results] == [
            (r.source, r.target) for r in expected
        ]
        for sequential, batched in zip(expected, batch.results):
            assert set(batched.paths) == set(sequential.paths)

    def test_parallel_cache_stats_match_sequential_semantics(
        self, batch_graph, shared_target_queries
    ):
        # Pre-warming must not inflate the hit count: each fresh BFS is
        # charged to the first query of its target, exactly as sequentially.
        batch = BatchExecutor(batch_graph, max_workers=4).run(
            shared_target_queries, RunConfig(store_paths=False)
        )
        assert batch.stats.reverse_bfs_runs == 3
        assert batch.stats.bfs_cache_hits == len(shared_target_queries) - 3
        flags = [result.stats.bfs_cache_hit for result in batch.results]
        assert flags.count(False) == 3

    def test_constrained_queries_match_sequential(self, batch_graph, shared_target_queries):
        constraint = PredicateConstraint(
            lambda u, v, weight, label: (u + v) % 7 != 0, batch_graph
        )
        config = RunConfig(store_paths=True, constraint=constraint)
        expected = _sequential(batch_graph, shared_target_queries, PathEnum(), config)
        batch = BatchExecutor(batch_graph).run(shared_target_queries, config)
        for sequential, batched in zip(expected, batch.results):
            assert set(batched.paths) == set(sequential.paths)

    def test_baseline_algorithms_pass_through(self, batch_graph, shared_target_queries):
        config = RunConfig(store_paths=True)
        queries = shared_target_queries[:4]
        expected = _sequential(batch_graph, queries, BcDfs(), config)
        batch = BatchExecutor(batch_graph, algorithm=BcDfs()).run(queries, config)
        for sequential, batched in zip(expected, batch.results):
            assert set(batched.paths) == set(sequential.paths)
        # Baselines never consult the distance cache.
        assert batch.stats.reverse_bfs_runs == 0


class TestBatchStats:
    def test_repeated_targets_run_strictly_fewer_bfs_than_queries(
        self, batch_graph, shared_target_queries
    ):
        executor = BatchExecutor(batch_graph)
        batch = executor.run(shared_target_queries, RunConfig(store_paths=False))
        stats = batch.stats
        assert stats.queries_run == len(shared_target_queries)
        assert stats.reverse_bfs_runs == 3  # one per distinct target
        assert stats.reverse_bfs_runs < stats.queries_run
        assert stats.bfs_cache_hits == stats.queries_run - stats.reverse_bfs_runs
        assert stats.bfs_cache_misses == stats.reverse_bfs_runs
        assert 0.0 < stats.hit_rate < 1.0
        assert stats.wall_seconds > 0.0

    def test_per_query_cache_flag_marks_repeats_only(
        self, batch_graph, shared_target_queries
    ):
        batch = BatchExecutor(batch_graph).run(
            shared_target_queries, RunConfig(store_paths=False)
        )
        flags = [result.stats.bfs_cache_hit for result in batch.results]
        # The first sighting of each of the 3 targets pays for its BFS.
        assert flags.count(False) == 3
        assert all(flags[3:])

    def test_distinct_targets_get_no_hits(self, batch_graph):
        queries = [Query(0, t, 4) for t in (5, 6, 7) if t != 0]
        batch = BatchExecutor(batch_graph).run(queries, RunConfig(store_paths=False))
        assert batch.stats.reverse_bfs_runs == len(queries)
        assert batch.stats.bfs_cache_hits == 0

    def test_stats_row_shape(self, batch_graph, shared_target_queries):
        executor = BatchExecutor(batch_graph)
        executor.run(shared_target_queries[:4], RunConfig(store_paths=False))
        row = executor.stats.as_row()
        assert set(row) == {
            "queries", "reverse_bfs_runs", "bfs_cache_hits", "hit_rate", "wall_ms",
        }

    def test_batch_result_aggregates(self, batch_graph, shared_target_queries):
        batch = BatchExecutor(batch_graph).run(
            shared_target_queries, RunConfig(store_paths=False)
        )
        assert len(batch) == len(shared_target_queries)
        assert batch.total_paths == sum(r.count for r in batch)
        assert batch.throughput > 0.0


class TestQuerySession:
    def test_session_reuses_distances_across_run_calls(self, batch_graph):
        session = QuerySession(batch_graph)
        target = 3
        first = session.run(Query(0, target, 4), RunConfig(store_paths=True))
        second = session.run(Query(1, target, 4), RunConfig(store_paths=True))
        assert session.stats.reverse_bfs_runs == 1
        assert session.stats.bfs_cache_hits == 1
        assert not first.stats.bfs_cache_hit
        assert second.stats.bfs_cache_hit

    def test_different_k_is_a_different_cache_entry(self, batch_graph):
        session = QuerySession(batch_graph)
        session.run(Query(0, 3, 4), RunConfig(store_paths=False))
        session.run(Query(1, 3, 5), RunConfig(store_paths=False))
        assert session.stats.reverse_bfs_runs == 2

    def test_session_results_match_engine(self, batch_graph):
        session = QuerySession(batch_graph)
        query = Query(2, 9, 4)
        via_session = session.run(query, RunConfig(store_paths=True))
        direct = PathEnum().run(batch_graph, query, RunConfig(store_paths=True))
        assert set(via_session.paths) == set(direct.paths)

    def test_cache_eviction_keeps_session_correct(self, batch_graph):
        session = QuerySession(batch_graph, max_cached=1)
        results = [
            session.run(Query(0, t, 4), RunConfig(store_paths=True))
            for t in (3, 5, 3, 5)
        ]
        # Every lookup after an eviction recomputes, so counts stay exact.
        assert session.stats.reverse_bfs_runs == 4
        assert results[0].count == results[2].count
        assert results[1].count == results[3].count

    def test_run_external_translates_ids(self):
        graph = power_law_graph(60, 4.0, exponent=2.2, seed=9)
        session = QuerySession(graph)
        result = session.run_external(0, 1, 4, RunConfig(store_paths=True))
        direct = PathEnum().run(graph, Query(0, 1, 4), RunConfig(store_paths=True))
        assert set(result.paths) == set(direct.paths)

    def test_executor_rejects_bad_workers(self, batch_graph):
        with pytest.raises(ValueError):
            BatchExecutor(batch_graph, max_workers=0)

    def test_empty_workload(self, batch_graph):
        batch = BatchExecutor(batch_graph).run([], RunConfig(store_paths=False))
        assert len(batch) == 0
        assert batch.total_paths == 0

    def test_batch_result_stats_are_snapshots(self, batch_graph, shared_target_queries):
        executor = BatchExecutor(batch_graph)
        first = executor.run(shared_target_queries[:6], RunConfig(store_paths=False))
        first_queries = first.stats.queries_run
        first_wall = first.stats.wall_seconds
        second = executor.run(shared_target_queries[6:], RunConfig(store_paths=False))
        # The earlier result must not change under the later batch.
        assert first.stats.queries_run == first_queries
        assert first.stats.wall_seconds == first_wall
        assert second.stats.queries_run == len(shared_target_queries)
        # The executor itself keeps the cumulative view.
        assert executor.stats.queries_run == len(shared_target_queries)

    def test_small_cache_grows_to_fit_a_batch(self, batch_graph, shared_target_queries):
        # max_cached below the number of distinct targets must not break the
        # warm-once guarantee: still one reverse BFS per distinct target.
        executor = BatchExecutor(batch_graph, max_workers=4, max_cached=1)
        batch = executor.run(shared_target_queries, RunConfig(store_paths=False))
        assert batch.stats.reverse_bfs_runs == 3

    def test_distinct_constraints_do_not_share_cache_entries(self, batch_graph):
        session = QuerySession(batch_graph)
        query = Query(0, 9, 4)
        constraint_a = PredicateConstraint(
            lambda u, v, weight, label: True, batch_graph
        )
        constraint_b = PredicateConstraint(
            lambda u, v, weight, label: v % 2 == 1, batch_graph
        )
        unrestricted = session.run(
            query, RunConfig(store_paths=True, constraint=constraint_a)
        )
        restricted = session.run(
            query, RunConfig(store_paths=True, constraint=constraint_b)
        )
        assert session.stats.reverse_bfs_runs == 2
        direct = PathEnum().run(
            batch_graph, query, RunConfig(store_paths=True, constraint=constraint_b)
        )
        assert set(restricted.paths) == set(direct.paths)
        assert set(unrestricted.paths) >= set(restricted.paths)
