"""Unit tests for the PathEnum engine and its fixed-plan variants."""

from __future__ import annotations

import pytest

from repro.core.engine import IdxDfs, IdxJoin, PathEnum, count_paths, enumerate_paths
from repro.core.listener import RunConfig
from repro.core.query import Query
from repro.core.result import Phase
from repro.graph.builder import from_edges
from repro.graph.generators import complete_graph, erdos_renyi

from tests.helpers import assert_same_paths, brute_force_paths


class TestEngineCorrectness:
    @pytest.mark.parametrize("algorithm_cls", [IdxDfs, IdxJoin, PathEnum])
    def test_paper_example(self, paper_graph, paper_query, algorithm_cls):
        result = algorithm_cls().run(paper_graph, paper_query)
        expected = brute_force_paths(
            paper_graph, paper_query.source, paper_query.target, paper_query.k
        )
        assert result.count == len(expected) == 5
        assert_same_paths(result.paths, expected, context=algorithm_cls.__name__)

    @pytest.mark.parametrize("algorithm_cls", [IdxDfs, IdxJoin, PathEnum])
    def test_no_result_query(self, algorithm_cls):
        graph = from_edges([(0, 1), (2, 3)])
        result = algorithm_cls().run(graph, Query(0, 3, 4))
        assert result.count == 0
        assert result.paths == []

    def test_external_id_entry_point(self, paper_graph):
        result = IdxDfs().run_external(paper_graph, "s", "t", 4)
        assert result.count == 5

    def test_convenience_count_and_paths(self, paper_graph, paper_query):
        algorithm = PathEnum()
        assert algorithm.count(paper_graph, paper_query) == 5
        assert len(algorithm.paths(paper_graph, paper_query)) == 5


class TestPlanSelection:
    def test_idx_dfs_always_uses_dfs_plan(self, paper_graph, paper_query):
        result = IdxDfs().run(paper_graph, paper_query)
        assert result.stats.plan == "dfs"
        assert Phase.ENUMERATION in result.stats.phase_seconds

    def test_idx_join_always_uses_join_plan(self, paper_graph, paper_query):
        result = IdxJoin().run(paper_graph, paper_query)
        assert result.stats.plan == "join"
        assert result.stats.cut_position is not None
        assert Phase.JOIN in result.stats.phase_seconds

    def test_pathenum_uses_dfs_for_small_queries(self, paper_graph, paper_query):
        result = PathEnum().run(paper_graph, paper_query)
        assert result.stats.plan == "dfs"

    def test_pathenum_tau_zero_follows_cost_model(self):
        graph = erdos_renyi(120, 6.0, seed=33)
        query = Query(0, 1, 5)
        engine = PathEnum(tau=0.0)
        result = engine.run(graph, query)
        plan = engine.explain(graph, query, tau=0.0)
        assert result.stats.plan == plan.kind
        # Regardless of the plan, the result set matches the reference.
        expected = brute_force_paths(graph, 0, 1, 5)
        assert result.count == len(expected)

    def test_explain_does_not_enumerate(self, paper_graph, paper_query):
        plan = PathEnum().explain(paper_graph, paper_query)
        assert plan.kind in ("dfs", "join")

    def test_custom_tau_flows_through_config(self, paper_graph, paper_query):
        engine = PathEnum(tau=0.0)
        result = engine.run(paper_graph, paper_query)
        assert result.stats.full_estimate is not None


class TestRunConfigHandling:
    def test_result_limit_truncates(self, paper_graph, paper_query):
        config = RunConfig(result_limit=2)
        result = PathEnum().run(paper_graph, paper_query, config)
        assert result.count == 2
        assert result.stats.truncated
        assert not result.completed

    def test_time_limit_marks_timeout(self):
        graph = complete_graph(10)
        config = RunConfig(store_paths=False, time_limit_seconds=0.0)
        result = IdxDfs().run(graph, Query(0, 9, 6), config)
        assert result.stats.timed_out
        assert not result.completed

    def test_store_paths_false(self, paper_graph, paper_query):
        config = RunConfig(store_paths=False)
        result = PathEnum().run(paper_graph, paper_query, config)
        assert result.paths is None
        assert result.count == 5

    def test_response_time_recorded(self, paper_graph, paper_query):
        config = RunConfig(response_k=1)
        result = IdxDfs().run(paper_graph, paper_query, config)
        assert result.response_seconds is not None
        assert result.response_seconds <= result.query_seconds + 1e-6

    def test_streaming_callback(self, paper_graph, paper_query):
        received = []
        config = RunConfig(on_result=received.append)
        PathEnum().run(paper_graph, paper_query, config)
        assert len(received) == 5

    def test_invalid_constraint_type_rejected(self, paper_graph, paper_query):
        config = RunConfig(constraint=object())
        with pytest.raises(TypeError):
            PathEnum().run(paper_graph, paper_query, config)


class TestModuleLevelApi:
    def test_enumerate_paths_internal_ids(self, paper_graph, paper_query):
        paths = enumerate_paths(
            paper_graph, paper_query.source, paper_query.target, paper_query.k
        )
        assert len(paths) == 5

    def test_enumerate_paths_external_ids(self, paper_graph):
        paths = enumerate_paths(paper_graph, "s", "t", 4, external_ids=True)
        assert ("s", "v0", "t") in paths

    def test_count_paths(self, paper_graph):
        assert count_paths(paper_graph, "s", "t", 4, external_ids=True) == 5

    def test_enumerate_paths_with_limit(self, paper_graph):
        paths = enumerate_paths(paper_graph, "s", "t", 4, external_ids=True, result_limit=3)
        assert len(paths) == 3


class TestStatisticsPopulation:
    def test_phases_present(self, paper_graph, paper_query):
        result = PathEnum().run(paper_graph, paper_query)
        stats = result.stats
        assert stats.phase(Phase.INDEX) > 0.0
        assert stats.phase(Phase.TOTAL) > 0.0
        assert stats.index_edges > 0
        assert stats.preliminary_estimate is not None

    def test_query_result_summary_fields(self, paper_graph, paper_query):
        result = PathEnum().run(paper_graph, paper_query)
        summary = result.summary()
        assert summary["algorithm"] == "PathEnum"
        assert summary["count"] == 5
        assert summary["k"] == paper_query.k
        assert summary["timed_out"] is False
