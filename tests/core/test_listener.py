"""Unit tests for collectors, deadlines and run configuration."""

from __future__ import annotations

import time

import pytest

from repro.core.listener import Deadline, ResultCollector, RunConfig
from repro.errors import EnumerationTimeout, ResultLimitReached


class TestResultCollector:
    def test_counts_and_stores(self):
        collector = ResultCollector()
        collector.emit([0, 1, 2])
        collector.emit((0, 2))
        assert collector.count == 2
        assert collector.paths == [(0, 1, 2), (0, 2)]

    def test_store_paths_disabled(self):
        collector = ResultCollector(store_paths=False)
        collector.emit([0, 1])
        assert collector.count == 1
        assert collector.paths == []
        assert collector.stored_paths() is None

    def test_result_limit(self):
        collector = ResultCollector(result_limit=3)
        collector.emit([0])
        collector.emit([1])
        with pytest.raises(ResultLimitReached):
            collector.emit([2])
        assert collector.count == 3

    def test_response_time_recorded_at_kth_result(self):
        collector = ResultCollector(response_k=2)
        collector.emit([0])
        assert collector.response_seconds is None
        collector.emit([1])
        assert collector.response_seconds is not None
        first = collector.response_seconds
        collector.emit([2])
        assert collector.response_seconds == first  # not overwritten

    def test_on_result_callback(self):
        seen = []
        collector = ResultCollector(on_result=seen.append)
        collector.emit([0, 1])
        assert seen == [(0, 1)]

    def test_emitted_paths_are_materialised_copies(self):
        collector = ResultCollector()
        path = [0, 1]
        collector.emit(path)
        path.append(2)
        assert collector.paths == [(0, 1)]

    def test_restart_clock(self):
        collector = ResultCollector(response_k=1)
        time.sleep(0.01)
        collector.restart_clock()
        collector.emit([0])
        assert collector.response_seconds < 0.01


class TestDeadline:
    def test_unlimited_deadline_never_fires(self):
        deadline = Deadline(None, poll_interval=1)
        for _ in range(1000):
            deadline.check()
        assert not deadline.expired
        assert deadline.remaining() is None

    def test_expired_deadline_raises(self):
        deadline = Deadline(0.0, poll_interval=1)
        with pytest.raises(EnumerationTimeout):
            deadline.check()
        assert deadline.expired
        assert deadline.remaining() == 0.0

    def test_poll_interval_defers_clock_reads(self):
        deadline = Deadline(0.0, poll_interval=10)
        # The first nine checks do not consult the clock.
        for _ in range(9):
            deadline.check()
        with pytest.raises(EnumerationTimeout):
            deadline.check()

    def test_elapsed_increases(self):
        deadline = Deadline(10.0)
        before = deadline.elapsed()
        time.sleep(0.005)
        assert deadline.elapsed() > before

    def test_future_deadline_does_not_fire(self):
        deadline = Deadline(60.0, poll_interval=1)
        deadline.check()
        assert not deadline.expired
        assert deadline.remaining() > 0

    def test_remaining_without_limit_is_none_and_never_clamps(self):
        deadline = Deadline(None)
        assert deadline.remaining() is None
        time.sleep(0.002)
        assert deadline.remaining() is None  # stays None however long we wait

    def test_remaining_clamps_to_zero_after_expiry(self):
        deadline = Deadline(0.001, poll_interval=1)
        time.sleep(0.005)
        assert deadline.remaining() == 0.0  # never negative

    def test_expiry_raises_once_per_poll_window(self):
        # After a raise the countdown resets: the next poll_interval - 1
        # checks are free, then the expired deadline raises again.  Exactly
        # one raise per window, not one per check.
        deadline = Deadline(0.0, poll_interval=5)
        raises = 0
        for _ in range(20):
            try:
                deadline.check()
            except EnumerationTimeout:
                raises += 1
        assert raises == 4  # checks 5, 10, 15, 20
        assert deadline.expired

    def test_poll_interval_is_clamped_to_one(self):
        deadline = Deadline(0.0, poll_interval=0)
        # A nonsensical poll interval must not disable checking entirely.
        with pytest.raises(EnumerationTimeout):
            deadline.check()

    def test_expired_property_is_immediate_despite_poll_batching(self):
        # ``expired`` reads the clock directly; only ``check()`` batches.
        deadline = Deadline(0.0, poll_interval=1000)
        deadline.check()  # consumes one countdown tick, does not raise
        assert deadline.expired

    def test_batched_checks_raise_on_the_polling_check(self):
        deadline = Deadline(0.005, poll_interval=8)
        time.sleep(0.01)
        # Checks 1..7 never consult the clock even though the deadline has
        # long passed; the 8th does and raises.
        for _ in range(7):
            deadline.check()
        with pytest.raises(EnumerationTimeout):
            deadline.check()

    def test_check_every_charges_many_units_in_one_call(self):
        deadline = Deadline(0.0, poll_interval=100)
        deadline.check_every(99)  # countdown not yet exhausted
        with pytest.raises(EnumerationTimeout):
            deadline.check_every(1)

    def test_check_every_fires_when_charge_exceeds_window(self):
        deadline = Deadline(0.0, poll_interval=100)
        with pytest.raises(EnumerationTimeout):
            deadline.check_every(1000)

    def test_check_every_ignores_non_positive_charges(self):
        deadline = Deadline(0.0, poll_interval=1)
        deadline.check_every(0)
        deadline.check_every(-5)
        with pytest.raises(EnumerationTimeout):
            deadline.check_every(1)

    def test_check_every_unlimited_deadline_never_fires(self):
        deadline = Deadline(None, poll_interval=1)
        for _ in range(100):
            deadline.check_every(10**6)
        assert not deadline.expired

    def test_check_every_resets_countdown_after_poll(self):
        deadline = Deadline(60.0, poll_interval=10)
        deadline.check_every(25)  # polls the (future) clock, resets window
        assert not deadline.expired


class TestRunConfig:
    def test_factories(self):
        config = RunConfig(result_limit=5, time_limit_seconds=1.0, response_k=7)
        collector = config.make_collector()
        deadline = config.make_deadline()
        assert collector.result_limit == 5
        assert collector.response_k == 7
        assert deadline.remaining() <= 1.0

    def test_replace(self):
        config = RunConfig(store_paths=True, tau=42.0)
        changed = config.replace(store_paths=False)
        assert changed.store_paths is False
        assert changed.tau == 42.0
        assert config.store_paths is True

    def test_defaults_match_paper_settings(self):
        config = RunConfig()
        assert config.response_k == 1000
        assert config.tau == pytest.approx(1e5)
        assert config.time_limit_seconds is None
        assert config.engine == "auto"

    def test_replace_carries_engine(self):
        config = RunConfig(engine="recursive")
        assert config.replace(store_paths=False).engine == "recursive"
