"""Unit tests for result and statistics containers."""

from __future__ import annotations

import pytest

from repro.core.result import EnumerationStats, Phase, QueryResult, paths_are_valid


def _make_result(**overrides):
    stats = overrides.pop("stats", EnumerationStats())
    defaults = dict(
        source=0,
        target=5,
        k=4,
        algorithm="IDX-DFS",
        count=3,
        paths=[(0, 1, 5), (0, 2, 5), (0, 1, 2, 5)],
        stats=stats,
    )
    defaults.update(overrides)
    return QueryResult(**defaults)


class TestEnumerationStats:
    def test_phase_accumulation(self):
        stats = EnumerationStats()
        stats.add_phase(Phase.BFS, 0.5)
        stats.add_phase(Phase.BFS, 0.25)
        assert stats.phase(Phase.BFS) == pytest.approx(0.75)
        assert stats.phase("unknown-phase") == 0.0

    def test_preprocessing_uses_index_phase_when_present(self):
        stats = EnumerationStats()
        stats.add_phase(Phase.BFS, 0.2)
        stats.add_phase(Phase.INDEX, 0.5)
        assert stats.preprocessing_seconds == pytest.approx(0.5)

    def test_preprocessing_falls_back_to_bfs(self):
        stats = EnumerationStats()
        stats.add_phase(Phase.BFS, 0.2)
        assert stats.preprocessing_seconds == pytest.approx(0.2)

    def test_enumeration_combines_dfs_and_join(self):
        stats = EnumerationStats()
        stats.add_phase(Phase.ENUMERATION, 0.1)
        stats.add_phase(Phase.JOIN, 0.3)
        assert stats.enumeration_seconds == pytest.approx(0.4)

    def test_merge_accumulates_counters(self):
        first = EnumerationStats(edges_accessed=10, invalid_partial_results=2)
        first.add_phase(Phase.TOTAL, 1.0)
        second = EnumerationStats(edges_accessed=5, peak_partial_result_tuples=100)
        second.add_phase(Phase.TOTAL, 2.0)
        second.timed_out = True
        first.merge(second)
        assert first.edges_accessed == 15
        assert first.invalid_partial_results == 2
        assert first.peak_partial_result_tuples == 100
        assert first.timed_out
        assert first.total_seconds == pytest.approx(3.0)

    def test_phase_constants_cover_all(self):
        assert Phase.TOTAL in Phase.ALL
        assert Phase.OPTIMIZATION in Phase.ALL


class TestQueryResult:
    def test_query_time_units(self):
        stats = EnumerationStats()
        stats.add_phase(Phase.TOTAL, 0.25)
        result = _make_result(stats=stats)
        assert result.query_seconds == pytest.approx(0.25)
        assert result.query_millis == pytest.approx(250.0)

    def test_throughput(self):
        stats = EnumerationStats()
        stats.add_phase(Phase.TOTAL, 2.0)
        result = _make_result(stats=stats, count=100)
        assert result.throughput == pytest.approx(50.0)

    def test_throughput_with_zero_time(self):
        result = _make_result(count=7)
        assert result.throughput == 7.0

    def test_completed_flag(self):
        assert _make_result().completed
        timed_out = EnumerationStats(timed_out=True)
        assert not _make_result(stats=timed_out).completed
        truncated = EnumerationStats(truncated=True)
        assert not _make_result(stats=truncated).completed

    def test_path_lengths(self):
        result = _make_result()
        assert sorted(result.path_lengths()) == [2, 2, 3]
        assert _make_result(paths=None).path_lengths() == []

    def test_summary_contents(self):
        summary = _make_result().summary()
        assert summary["algorithm"] == "IDX-DFS"
        assert summary["count"] == 3
        assert summary["response_ms"] is None


class TestPathValidation:
    def test_valid_paths(self):
        assert paths_are_valid([(0, 1, 5), (0, 5)], source=0, target=5, k=3)

    def test_wrong_endpoints(self):
        assert not paths_are_valid([(1, 5)], source=0, target=5, k=3)
        assert not paths_are_valid([(0, 1)], source=0, target=5, k=3)

    def test_too_long(self):
        assert not paths_are_valid([(0, 1, 2, 3, 5)], source=0, target=5, k=3)

    def test_duplicate_vertices(self):
        assert not paths_are_valid([(0, 1, 1, 5)], source=0, target=5, k=4)

    def test_duplicate_paths(self):
        assert not paths_are_valid([(0, 5), (0, 5)], source=0, target=5, k=3)
