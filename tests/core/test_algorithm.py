"""Unit tests for the shared Algorithm interface and timed_run wrapper."""

from __future__ import annotations

import pytest

from repro.core.algorithm import Algorithm, timed_run
from repro.core.listener import RunConfig
from repro.core.query import Query
from repro.core.result import Phase
from repro.errors import EnumerationTimeout, ResultLimitReached


class _FakeAlgorithm(Algorithm):
    """Emits a fixed set of paths; used to test the wrapper in isolation."""

    name = "Fake"

    def __init__(self, paths=((0, 1, 2),), raise_timeout=False):
        self._paths = paths
        self._raise_timeout = raise_timeout

    def run(self, graph, query, config=None):
        config = config or RunConfig()

        def body(collector, deadline, stats):
            if self._raise_timeout:
                raise EnumerationTimeout()
            for path in self._paths:
                collector.emit(path)

        return timed_run(self.name, query, config, body)


class TestTimedRun:
    def test_normal_completion(self):
        result = _FakeAlgorithm().run(None, Query(0, 2, 3))
        assert result.count == 1
        assert result.algorithm == "Fake"
        assert result.stats.phase(Phase.TOTAL) >= 0.0
        assert result.completed

    def test_timeout_is_captured(self):
        result = _FakeAlgorithm(raise_timeout=True).run(None, Query(0, 2, 3))
        assert result.stats.timed_out
        assert result.count == 0
        assert not result.completed

    def test_result_limit_is_captured(self):
        algorithm = _FakeAlgorithm(paths=[(0, 1), (0, 2), (0, 3)])
        result = algorithm.run(None, Query(0, 9, 3), RunConfig(result_limit=2))
        assert result.stats.truncated
        assert result.count == 2

    def test_response_seconds_populated(self):
        algorithm = _FakeAlgorithm(paths=[(0, 1), (0, 2)])
        result = algorithm.run(None, Query(0, 9, 3), RunConfig(response_k=1))
        assert result.response_seconds is not None

    def test_query_fields_copied(self):
        result = _FakeAlgorithm().run(None, Query(3, 7, 5))
        assert (result.source, result.target, result.k) == (3, 7, 5)


class TestConvenienceEntryPoints:
    def test_count_uses_store_paths_false(self, paper_graph, paper_query):
        from repro.core.engine import PathEnum

        assert PathEnum().count(paper_graph, paper_query) == 5

    def test_paths_returns_list(self, paper_graph, paper_query):
        from repro.core.engine import IdxDfs

        paths = IdxDfs().paths(paper_graph, paper_query)
        assert isinstance(paths, list) and len(paths) == 5

    def test_abstract_base_cannot_run(self):
        with pytest.raises(TypeError):
            Algorithm()  # type: ignore[abstract]
