"""Unit tests for the light-weight index (Algorithm 3)."""

from __future__ import annotations

import pytest

from repro.core.index import LightWeightIndex
from repro.core.query import Query
from repro.core.relations import build_relations
from repro.core.result import EnumerationStats, Phase
from repro.graph.builder import from_edges
from repro.graph.generators import erdos_renyi

from tests.helpers import paper_figure1_graph


@pytest.fixture()
def paper_index(paper_graph, paper_query):
    return LightWeightIndex.build(paper_graph, paper_query)


class TestPartitions:
    def test_paper_example_partition_matches_figure4(self, paper_graph, paper_index):
        """Figure 4a: X[2, 2] = {v4, v6}, v7 is pruned entirely."""
        g = paper_graph
        by_name = {name: g.to_internal(name) for name in ("s", "t", "v0", "v1", "v2", "v3",
                                                          "v4", "v5", "v6", "v7")}
        # v7 has v7.s + v7.t > 4 so it must not be in the index.
        assert not paper_index.contains(by_name["v7"])
        # Distances of Figure 4a.
        assert paper_index.distance_from_s(by_name["v4"]) == 2
        assert paper_index.distance_to_t(by_name["v4"]) == 2
        assert paper_index.distance_from_s(by_name["v6"]) == 2
        assert paper_index.distance_to_t(by_name["v6"]) == 2

    def test_members_respect_position_constraints(self, paper_graph, paper_index, paper_query):
        k = paper_query.k
        for i in range(k + 1):
            for v in paper_index.members(i):
                assert paper_index.distance_from_s(v) <= i
                assert paper_index.distance_to_t(v) <= k - i

    def test_position_zero_contains_only_source(self, paper_index, paper_query):
        assert list(paper_index.members(0)) == [paper_query.source]

    def test_position_k_contains_target(self, paper_index, paper_query):
        assert paper_query.target in paper_index.members(paper_query.k)

    def test_members_out_of_range_is_empty(self, paper_index, paper_query):
        assert len(paper_index.members(-1)) == 0
        assert len(paper_index.members(paper_query.k + 1)) == 0

    def test_candidate_counts_length(self, paper_index, paper_query):
        assert len(paper_index.candidate_counts()) == paper_query.k + 1


class TestNeighborLookups:
    def test_figure4_example_lookup(self, paper_graph, paper_index):
        """I_t(v0, 2) = {t, v1, v6} as in Example 4.4."""
        v0 = paper_graph.to_internal("v0")
        expected = {paper_graph.to_internal(name) for name in ("t", "v1", "v6")}
        assert set(paper_index.neighbors_within(v0, 2)) == expected

    def test_neighbors_sorted_by_distance_to_target(self, paper_graph, paper_index, paper_query):
        for v in range(paper_graph.num_vertices):
            if not paper_index.contains(v) or v == paper_query.target:
                continue
            neighbors = paper_index.neighbors_within(v, paper_query.k)
            distances = [paper_index.distance_to_t(w) for w in neighbors]
            assert distances == sorted(distances)

    def test_budget_zero_returns_only_target(self, paper_graph, paper_index):
        v0 = paper_graph.to_internal("v0")
        t = paper_graph.to_internal("t")
        assert list(paper_index.neighbors_within(v0, 0)) == [t]

    def test_negative_budget_is_empty(self, paper_graph, paper_index):
        v0 = paper_graph.to_internal("v0")
        assert len(paper_index.neighbors_within(v0, -1)) == 0

    def test_budget_above_k_is_clamped(self, paper_graph, paper_index, paper_query):
        v0 = paper_graph.to_internal("v0")
        assert list(paper_index.neighbors_within(v0, 100)) == list(
            paper_index.neighbors_within(v0, paper_query.k)
        )

    def test_unknown_vertex_is_empty(self, paper_index):
        assert len(paper_index.neighbors_within(10_000, 3)) == 0

    def test_count_matches_slice_length(self, paper_graph, paper_index, paper_query):
        for v in range(paper_graph.num_vertices):
            for budget in range(-1, paper_query.k + 1):
                assert paper_index.count_neighbors_within(v, budget) == len(
                    paper_index.neighbors_within(v, budget)
                )

    def test_source_never_appears_as_a_neighbor(self, paper_graph, paper_index, paper_query):
        s = paper_query.source
        for v in range(paper_graph.num_vertices):
            assert s not in paper_index.neighbors_within(v, paper_query.k)

    def test_target_self_loop_is_present(self, paper_index, paper_query):
        t = paper_query.target
        assert list(paper_index.neighbors_within(t, 0)) == [t]

    def test_in_neighbors_within(self, paper_graph, paper_index, paper_query):
        t = paper_query.target
        in_neighbors = paper_index.in_neighbors_within(t, paper_query.k)
        # Every in-neighbour of t in the index must have a forward edge to t.
        for v in in_neighbors:
            assert t in paper_index.neighbors_within(v, paper_query.k)
        # Sorted ascending by distance from s.
        distances = [paper_index.distance_from_s(v) for v in in_neighbors]
        assert distances == sorted(distances)


class TestPruningPower:
    def test_index_edges_match_full_reducer_neighbors(self, paper_graph, paper_query):
        """Appendix B: the index has the same pruning power as Algorithm 2.

        For every vertex v appearing as a source in the reduced relation R_i,
        the neighbours stored in R_i equal I_t(v, k - i) (excluding the
        artificial (t, t) padding tuple).
        """
        index = LightWeightIndex.build(paper_graph, paper_query)
        relations = build_relations(paper_graph, paper_query)
        t = paper_query.target
        k = paper_query.k
        for i in range(1, k + 1):
            relation = relations[i]
            for v in relation.sources():
                if v == t:
                    continue
                from_relation = {w for (u, w) in relation.tuples if u == v}
                from_index = set(index.neighbors_within(v, k - i))
                assert from_relation == from_index, (i, v)

    def test_unreachable_target_produces_empty_index(self):
        graph = from_edges([(0, 1), (2, 3)])
        index = LightWeightIndex.build(graph, Query(0, 3, 4))
        assert index.is_empty

    def test_target_too_far_produces_empty_index(self):
        graph = from_edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)])
        index = LightWeightIndex.build(graph, Query(0, 5, 3))
        assert index.is_empty

    def test_edge_filter_restricts_index(self, paper_graph, paper_query):
        v0 = paper_graph.to_internal("v0")
        t = paper_graph.to_internal("t")
        index = LightWeightIndex.build(
            paper_graph, paper_query, edge_filter=lambda u, v: (u, v) != (v0, t)
        )
        assert t not in index.neighbors_within(v0, paper_query.k)


class TestStatisticsAndTiming:
    def test_stats_are_recorded(self, paper_graph, paper_query):
        stats = EnumerationStats()
        index = LightWeightIndex.build(paper_graph, paper_query, stats=stats)
        assert stats.index_edges == index.num_index_edges
        assert stats.index_vertices == index.num_index_vertices
        assert stats.index_bytes > 0
        assert stats.phase(Phase.INDEX) > 0.0
        assert stats.phase(Phase.BFS) > 0.0
        assert stats.phase(Phase.BFS) <= stats.phase(Phase.INDEX)

    def test_gamma_statistics_are_nonnegative(self, paper_index, paper_query):
        for i in range(paper_query.k):
            assert paper_index.gamma(i) >= 0.0
        assert paper_index.gamma(-1) == 0.0
        assert paper_index.gamma(paper_query.k + 3) == 0.0

    def test_index_edges_never_exceed_graph_edges_plus_loop(self):
        graph = erdos_renyi(100, 4.0, seed=3)
        index = LightWeightIndex.build(graph, Query(0, 1, 4))
        assert index.num_index_edges <= graph.num_edges + 1

    def test_estimated_bytes_positive_for_nonempty_index(self, paper_index):
        assert paper_index.estimated_bytes() > 0

    def test_index_edge_list_is_consistent(self, paper_index, paper_query):
        edges = paper_index.index_edge_list()
        assert len(edges) >= paper_index.num_index_edges
        for u, v in edges:
            assert v in paper_index.neighbors_within(u, paper_query.k)
