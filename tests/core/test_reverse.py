"""Unit tests for the reverse-direction index DFS (plan-space extension)."""

from __future__ import annotations

import pytest

from repro.baselines.registry import get_algorithm
from repro.core.engine import IdxDfs
from repro.core.index import LightWeightIndex
from repro.core.listener import Deadline, ResultCollector, RunConfig
from repro.core.query import Query
from repro.core.result import EnumerationStats
from repro.core.reverse import IdxDfsReverse, run_idx_dfs_reverse
from repro.errors import EnumerationTimeout
from repro.graph.builder import from_edges
from repro.graph.generators import complete_graph, erdos_renyi

from tests.helpers import assert_same_paths, brute_force_paths


class TestCorrectness:
    def test_paper_example(self, paper_graph, paper_query):
        result = IdxDfsReverse().run(paper_graph, paper_query)
        expected = brute_force_paths(
            paper_graph, paper_query.source, paper_query.target, paper_query.k
        )
        assert_same_paths(result.paths, expected, context="IDX-DFS-REV")

    @pytest.mark.parametrize("k", [3, 4, 5, 6])
    def test_random_graph_against_forward_dfs(self, random_graph, k):
        query = Query(4, 5, k)
        forward = IdxDfs().run(random_graph, query)
        backward = IdxDfsReverse().run(random_graph, query)
        assert set(forward.paths) == set(backward.paths)

    def test_direct_edge_paths_are_found(self):
        graph = from_edges([("s", "t"), ("s", "a"), ("a", "t")])
        s, t = graph.to_internal("s"), graph.to_internal("t")
        result = IdxDfsReverse().run(graph, Query(s, t, 3))
        assert set(result.paths) == {(s, t), (s, graph.to_internal("a"), t)}

    def test_no_results_when_unreachable(self):
        graph = from_edges([(0, 1), (2, 3)])
        assert IdxDfsReverse().run(graph, Query(0, 3, 4)).count == 0

    def test_grid_counts(self, dag_grid):
        query = Query(0, dag_grid.num_vertices - 1, 7)
        assert IdxDfsReverse().run(dag_grid, query).count == 35

    def test_registered_in_the_registry(self):
        assert get_algorithm("idx-dfs-rev").name == "IDX-DFS-REV"


class TestAsymmetry:
    def test_reverse_explores_fewer_partials_when_source_side_is_dense(self):
        """The motivation for the extension: a fan-out at s, a funnel at t."""
        edges = []
        # s fans out to 12 middle vertices, only one of which reaches t.
        for i in range(12):
            edges.append(("s", f"m{i}"))
        edges.append(("m0", "x"))
        edges.append(("x", "t"))
        graph = from_edges(edges)
        query = Query(graph.to_internal("s"), graph.to_internal("t"), 3)
        forward = IdxDfs().run(graph, query)
        backward = IdxDfsReverse().run(graph, query)
        assert set(forward.paths) == set(backward.paths)
        assert (
            backward.stats.edges_accessed <= forward.stats.edges_accessed
        )


class TestBehaviour:
    def test_constraints_are_rejected(self, paper_graph, paper_query):
        from repro.core.constraints import AccumulativeConstraint

        constraint = AccumulativeConstraint(paper_graph, accept=lambda total: True)
        with pytest.raises(ValueError):
            IdxDfsReverse().run(paper_graph, paper_query, RunConfig(constraint=constraint))

    def test_result_limit(self, paper_graph, paper_query):
        result = IdxDfsReverse().run(paper_graph, paper_query, RunConfig(result_limit=2))
        assert result.count == 2
        assert result.stats.truncated

    def test_deadline_expiry(self):
        graph = complete_graph(10)
        query = Query(0, 9, 6)
        index = LightWeightIndex.build(graph, query)
        deadline = Deadline(0.0, poll_interval=1)
        with pytest.raises(EnumerationTimeout):
            run_idx_dfs_reverse(index, ResultCollector(store_paths=False), deadline=deadline)

    def test_stats_are_populated(self, paper_graph, paper_query):
        index = LightWeightIndex.build(paper_graph, paper_query)
        collector = ResultCollector()
        stats = EnumerationStats()
        emitted = run_idx_dfs_reverse(index, collector, stats=stats)
        assert emitted == collector.count == 5
        assert stats.edges_accessed > 0
        assert stats.results_emitted == 5

    def test_plan_label(self, paper_graph, paper_query):
        result = IdxDfsReverse().run(paper_graph, paper_query)
        assert result.stats.plan == "dfs-reverse"

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_agreement_on_denser_random_graphs(self, seed):
        graph = erdos_renyi(50, 5.0, seed=seed)
        query = Query(0, 1, 4)
        expected = brute_force_paths(graph, 0, 1, 4)
        result = IdxDfsReverse().run(graph, query)
        assert set(result.paths) == expected
