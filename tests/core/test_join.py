"""Unit tests for IDX-JOIN (Algorithm 6)."""

from __future__ import annotations

import pytest

from repro.core.index import LightWeightIndex
from repro.core.join import evaluate_subquery, run_idx_join
from repro.core.listener import Deadline, ResultCollector
from repro.core.query import Query
from repro.core.result import EnumerationStats
from repro.errors import EnumerationTimeout
from repro.graph.builder import from_edges
from repro.graph.generators import complete_graph

from tests.helpers import assert_same_paths, brute_force_paths, brute_force_walks


def _run(graph, query, cut, **collector_kwargs):
    index = LightWeightIndex.build(graph, query)
    collector = ResultCollector(**collector_kwargs)
    stats = EnumerationStats()
    run_idx_join(index, cut, collector, stats=stats)
    return collector, stats


class TestCorrectness:
    @pytest.mark.parametrize("cut", [1, 2, 3])
    def test_paper_example_all_cut_positions(self, paper_graph, paper_query, cut):
        collector, _ = _run(paper_graph, paper_query, cut)
        expected = brute_force_paths(
            paper_graph, paper_query.source, paper_query.target, paper_query.k
        )
        assert_same_paths(collector.paths, expected, context=f"IDX-JOIN cut={cut}")

    def test_join_handles_short_paths_via_padding(self):
        # Direct edge s -> t plus a long detour; the cut must not lose the
        # short path even though it is shorter than the cut position.
        graph = from_edges([("s", "t"), ("s", "a"), ("a", "b"), ("b", "c"), ("c", "t")])
        s, t = graph.to_internal("s"), graph.to_internal("t")
        query = Query(s, t, 4)
        expected = brute_force_paths(graph, s, t, 4)
        assert len(expected) == 2
        for cut in (1, 2, 3):
            collector, _ = _run(graph, query, cut)
            assert_same_paths(collector.paths, expected, context=f"cut={cut}")

    def test_join_rejects_tuples_with_duplicate_vertices(self):
        # A walk can revisit a vertex across the cut; the validity filter
        # must drop it (Example 3.2: (s, v0, v6, v0, t) is a walk, not a path).
        graph = from_edges([(0, 1), (1, 2), (2, 1), (1, 3)])
        query = Query(
            graph.to_internal(0), graph.to_internal(3), 4
        )
        collector, _ = _run(graph, query, 2)
        expected = brute_force_paths(graph, query.source, query.target, 4)
        assert_same_paths(collector.paths, expected)

    def test_no_duplicate_results(self, paper_graph, paper_query):
        collector, _ = _run(paper_graph, paper_query, 2)
        assert len(collector.paths) == len(set(collector.paths))

    def test_empty_index_returns_nothing(self):
        graph = from_edges([(0, 1), (2, 3)])
        collector, _ = _run(graph, Query(0, 3, 4), 2)
        assert collector.count == 0

    def test_invalid_cut_positions_rejected(self, paper_graph, paper_query):
        index = LightWeightIndex.build(paper_graph, paper_query)
        with pytest.raises(ValueError):
            run_idx_join(index, 0, ResultCollector())
        with pytest.raises(ValueError):
            run_idx_join(index, paper_query.k, ResultCollector())


class TestSubqueryEvaluation:
    def test_left_subquery_walk_lengths(self, paper_graph, paper_query):
        index = LightWeightIndex.build(paper_graph, paper_query)
        walks = evaluate_subquery(index, start=paper_query.source, offset=0, length=2)
        assert all(len(w) == 3 for w in walks)
        assert all(w[0] == paper_query.source for w in walks)

    def test_right_subquery_walks_end_at_target(self, paper_graph, paper_query):
        g, q = paper_graph, paper_query
        index = LightWeightIndex.build(g, q)
        v0 = g.to_internal("v0")
        walks = evaluate_subquery(index, start=v0, offset=2, length=q.k - 2)
        assert walks, "v0 can reach t within the budget"
        assert all(w[-1] == q.target for w in walks)

    def test_subquery_walks_are_index_walks(self, paper_graph, paper_query):
        """Proposition 6.1: every partial result appears in some walk of W(s,t,k,G)."""
        g, q = paper_graph, paper_query
        index = LightWeightIndex.build(g, q)
        walks = brute_force_walks(g, q.source, q.target, q.k)
        left = evaluate_subquery(index, start=q.source, offset=0, length=2)
        for partial in left:
            stripped = partial
            # Remove any trailing padding before matching against real walks.
            while len(stripped) > 1 and stripped[-1] == q.target and stripped[-2] == q.target:
                stripped = stripped[:-1]
            assert any(walk[: len(stripped)] == stripped for walk in walks), partial


class TestStatisticsAndLimits:
    def test_peak_partial_results_recorded(self, paper_graph, paper_query):
        _, stats = _run(paper_graph, paper_query, 2)
        assert stats.peak_partial_result_tuples > 0
        assert stats.peak_partial_result_bytes > 0
        assert stats.cut_position == 2

    def test_deadline_expiry_raises(self):
        graph = complete_graph(9)
        query = Query(0, 8, 6)
        index = LightWeightIndex.build(graph, query)
        deadline = Deadline(0.0, poll_interval=1)
        with pytest.raises(EnumerationTimeout):
            run_idx_join(index, 3, ResultCollector(store_paths=False), deadline=deadline)

    def test_results_emitted_matches_collector(self, paper_graph, paper_query):
        collector, stats = _run(paper_graph, paper_query, 2)
        assert stats.results_emitted == collector.count == 5


class TestSubqueryBudgetBounds:
    def test_out_of_range_subchain_has_no_walks(self, paper_graph, paper_query):
        """offset + length > k leaves a negative budget: no candidates, no
        walks — the guard must not wrap into the budget-k offset column."""
        from repro.core.index import LightWeightIndex

        index = LightWeightIndex.build(paper_graph, paper_query)
        walks = evaluate_subquery(
            index, start=paper_query.source, offset=paper_query.k, length=1
        )
        assert walks == []
