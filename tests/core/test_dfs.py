"""Unit tests for IDX-DFS (Algorithm 4)."""

from __future__ import annotations

import pytest

from repro.core.dfs import run_idx_dfs
from repro.core.index import LightWeightIndex
from repro.core.listener import Deadline, ResultCollector
from repro.core.query import Query
from repro.core.result import EnumerationStats
from repro.errors import EnumerationTimeout, ResultLimitReached
from repro.graph.builder import from_edges
from repro.graph.generators import complete_graph, grid_graph

from tests.helpers import assert_same_paths, brute_force_paths, brute_force_walks


def _run(graph, query, **collector_kwargs):
    index = LightWeightIndex.build(graph, query)
    collector = ResultCollector(**collector_kwargs)
    stats = EnumerationStats()
    run_idx_dfs(index, collector, stats=stats)
    return collector, stats


class TestCorrectness:
    def test_paper_example(self, paper_graph, paper_query):
        collector, _ = _run(paper_graph, paper_query)
        expected = brute_force_paths(
            paper_graph, paper_query.source, paper_query.target, paper_query.k
        )
        assert_same_paths(collector.paths, expected, context="IDX-DFS")
        assert len(expected) == 5

    def test_results_have_no_duplicates(self, paper_graph, paper_query):
        collector, _ = _run(paper_graph, paper_query)
        assert len(collector.paths) == len(set(collector.paths))

    def test_grid_graph_counts(self, dag_grid):
        # 4x5 grid, corner to corner, exactly 7 hops needed: C(7, 3) = 35 paths.
        query = Query(0, dag_grid.num_vertices - 1, 7)
        collector, _ = _run(dag_grid, query)
        assert collector.count == 35

    def test_no_results_when_target_unreachable(self):
        graph = from_edges([(0, 1), (2, 3)])
        collector, stats = _run(graph, Query(0, 3, 5))
        assert collector.count == 0
        assert stats.edges_accessed == 0

    def test_hop_constraint_boundary(self):
        graph = from_edges([(0, 1), (1, 2), (2, 3), (0, 3)])
        # k = 2 admits only the direct edge (length 1); k = 3 adds the chain.
        collector_k2, _ = _run(graph, Query(0, 3, 2))
        collector_k3, _ = _run(graph, Query(0, 3, 3))
        assert collector_k2.count == 1
        assert collector_k3.count == 2

    def test_paths_never_revisit_source(self):
        # Cycle back to the source must not be used as an intermediate hop.
        graph = from_edges([(0, 1), (1, 0), (1, 2), (0, 2)])
        collector, _ = _run(graph, Query(0, 2, 4))
        for path in collector.paths:
            assert path.count(0) == 1

    def test_paths_stop_at_first_target_visit(self):
        # An edge leaving t must never extend a result.
        graph = from_edges([(0, 1), (1, 2), (2, 3), (3, 1)])
        collector, _ = _run(graph, Query(0, 2, 5))
        for path in collector.paths:
            assert path[-1] == 2
            assert path.count(2) == 1


class TestStatistics:
    def test_invalid_partial_results_zero_when_all_walks_are_paths(self, figure5_g0):
        g = figure5_g0
        query = Query(g.to_internal("s"), g.to_internal("t"), 4)
        collector, stats = _run(g, query)
        assert collector.count == 8  # Example 5.2: 8 walks, all of them paths
        assert stats.invalid_partial_results == 0

    def test_invalid_partial_results_on_cyclic_graph(self, figure5_g1):
        g = figure5_g1
        query = Query(g.to_internal("s"), g.to_internal("t"), 4)
        collector, stats = _run(g, query)
        assert collector.count == 1  # only (s, v0, t)
        # The cycle v0 -> v1 -> v2 -> v0 creates dead-end partial results.
        assert stats.invalid_partial_results > 0

    def test_edges_accessed_bounded_by_k_times_walks(self, paper_graph, paper_query):
        """The Section 5.2 bound: T <= k * |W(s, t, k, G)|."""
        _, stats = _run(paper_graph, paper_query)
        walks = brute_force_walks(
            paper_graph, paper_query.source, paper_query.target, paper_query.k
        )
        assert stats.edges_accessed <= paper_query.k * len(walks)

    def test_partial_results_count_search_tree_nodes(self, paper_graph, paper_query):
        _, stats = _run(paper_graph, paper_query)
        assert stats.partial_results_generated >= stats.results_emitted
        assert stats.results_emitted == 5


class TestLimitsAndDeadlines:
    def test_result_limit_stops_enumeration(self, paper_graph, paper_query):
        index = LightWeightIndex.build(paper_graph, paper_query)
        collector = ResultCollector(result_limit=2)
        with pytest.raises(ResultLimitReached):
            run_idx_dfs(index, collector)
        assert collector.count == 2

    def test_expired_deadline_raises(self):
        graph = complete_graph(9)
        query = Query(0, 8, 6)
        index = LightWeightIndex.build(graph, query)
        collector = ResultCollector(store_paths=False)
        deadline = Deadline(0.0, poll_interval=1)
        with pytest.raises(EnumerationTimeout):
            run_idx_dfs(index, collector, deadline=deadline)

    def test_collector_not_storing_paths_still_counts(self, paper_graph, paper_query):
        collector, _ = _run(paper_graph, paper_query, store_paths=False)
        assert collector.count == 5
        assert collector.stored_paths() is None
