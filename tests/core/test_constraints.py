"""Unit tests for the constraint extensions (Appendix E)."""

from __future__ import annotations

import pytest

from repro.core.constraints import (
    AccumulativeConstraint,
    AutomatonConstraint,
    PathConstraint,
    PredicateConstraint,
    SequenceAutomaton,
)
from repro.core.engine import IdxDfs, IdxJoin, PathEnum
from repro.core.listener import RunConfig
from repro.core.query import Query
from repro.errors import ConstraintError
from repro.graph.builder import GraphBuilder

from tests.helpers import brute_force_paths


@pytest.fixture()
def weighted_graph():
    """A small transaction-like graph with weights (risk) and labels (action)."""
    builder = GraphBuilder()
    builder.add_edge("s", "a", weight=5.0, label="wire")
    builder.add_edge("s", "b", weight=1.0, label="ach")
    builder.add_edge("a", "t", weight=5.0, label="wire")
    builder.add_edge("b", "t", weight=1.0, label="wire")
    builder.add_edge("a", "b", weight=2.0, label="ach")
    builder.add_edge("b", "a", weight=2.0, label="ach")
    return builder.build()


def _query(graph, k=4):
    return Query(graph.to_internal("s"), graph.to_internal("t"), k)


class TestPredicateConstraint:
    def test_filters_low_weight_edges(self, weighted_graph):
        constraint = PredicateConstraint(
            lambda u, v, w, lbl: w >= 2.0, weighted_graph
        )
        config = RunConfig(constraint=constraint)
        result = PathEnum().run(weighted_graph, _query(weighted_graph), config)
        paths = {weighted_graph.translate_path(p) for p in result.paths}
        assert ("s", "a", "t") in paths
        assert ("s", "b", "t") not in paths
        for path in result.paths:
            for u, v in zip(path, path[1:]):
                assert weighted_graph.edge_weight(u, v) >= 2.0

    def test_all_edges_allowed_equals_unconstrained(self, weighted_graph):
        constraint = PredicateConstraint(lambda u, v, w, lbl: True, weighted_graph)
        config = RunConfig(constraint=constraint)
        constrained = PathEnum().run(weighted_graph, _query(weighted_graph), config)
        unconstrained = PathEnum().run(weighted_graph, _query(weighted_graph))
        assert set(constrained.paths) == set(unconstrained.paths)

    def test_label_predicate(self, weighted_graph):
        constraint = PredicateConstraint(lambda u, v, w, lbl: lbl == "wire", weighted_graph)
        config = RunConfig(constraint=constraint)
        result = IdxDfs().run(weighted_graph, _query(weighted_graph), config)
        assert {weighted_graph.translate_path(p) for p in result.paths} == {("s", "a", "t")}

    def test_non_callable_predicate_rejected(self, weighted_graph):
        with pytest.raises(ConstraintError):
            PredicateConstraint("not callable", weighted_graph)

    def test_accepts_path_recheck(self, weighted_graph):
        constraint = PredicateConstraint(lambda u, v, w, lbl: w >= 2.0, weighted_graph)
        s, a, b, t = (weighted_graph.to_internal(x) for x in ("s", "a", "b", "t"))
        assert constraint.accepts_path((s, a, t))
        assert not constraint.accepts_path((s, b, t))


class TestAccumulativeConstraint:
    def test_total_risk_threshold(self, weighted_graph):
        """Algorithm 7: keep paths whose accumulated weight is at least 8."""
        constraint = AccumulativeConstraint(weighted_graph, accept=lambda total: total >= 8.0)
        config = RunConfig(constraint=constraint)
        result = IdxDfs().run(weighted_graph, _query(weighted_graph), config)
        paths = {weighted_graph.translate_path(p) for p in result.paths}
        assert ("s", "a", "t") in paths  # 5 + 5 = 10
        assert ("s", "b", "t") not in paths  # 1 + 1 = 2

    def test_same_result_under_join_plan(self, weighted_graph):
        constraint = AccumulativeConstraint(weighted_graph, accept=lambda total: total >= 8.0)
        config = RunConfig(constraint=constraint)
        dfs_result = IdxDfs().run(weighted_graph, _query(weighted_graph), config)
        join_result = IdxJoin().run(weighted_graph, _query(weighted_graph), config)
        assert set(dfs_result.paths) == set(join_result.paths)

    def test_custom_operation_and_initial(self, weighted_graph):
        constraint = AccumulativeConstraint(
            weighted_graph,
            accept=lambda total: total >= 25.0,
            operation=lambda a, b: a * b,
            initial=1.0,
        )
        config = RunConfig(constraint=constraint)
        result = IdxDfs().run(weighted_graph, _query(weighted_graph), config)
        paths = {weighted_graph.translate_path(p) for p in result.paths}
        assert ("s", "a", "t") in paths  # 5 * 5 = 25
        assert ("s", "b", "t") not in paths  # 1 * 1 = 1

    def test_upper_bound_pruning_preserves_results(self, weighted_graph):
        query = _query(weighted_graph)
        accept = lambda total: total <= 3.0  # noqa: E731 - compact test predicate
        unpruned = AccumulativeConstraint(weighted_graph, accept=accept)
        pruned = AccumulativeConstraint(weighted_graph, accept=accept, upper_bound_prune=3.0)
        config_a = RunConfig(constraint=unpruned)
        config_b = RunConfig(constraint=pruned)
        result_a = IdxDfs().run(weighted_graph, query, config_a)
        result_b = IdxDfs().run(weighted_graph, query, config_b)
        assert set(result_a.paths) == set(result_b.paths)
        assert {weighted_graph.translate_path(p) for p in result_b.paths} == {("s", "b", "t")}

    def test_edge_value_override(self, weighted_graph):
        constraint = AccumulativeConstraint(
            weighted_graph,
            accept=lambda total: total == 2.0,
            edge_value=lambda u, v: 1.0,
        )
        config = RunConfig(constraint=constraint)
        result = IdxDfs().run(weighted_graph, _query(weighted_graph), config)
        # Exactly the two-hop paths survive when every edge counts as 1.
        assert all(len(p) == 3 for p in result.paths)

    def test_non_callable_accept_rejected(self, weighted_graph):
        with pytest.raises(ConstraintError):
            AccumulativeConstraint(weighted_graph, accept=None)


class TestAutomatonConstraint:
    def test_exact_label_sequence(self, weighted_graph):
        automaton = SequenceAutomaton.from_label_sequence(["wire", "wire"])
        constraint = AutomatonConstraint(weighted_graph, automaton)
        config = RunConfig(constraint=constraint)
        result = IdxDfs().run(weighted_graph, _query(weighted_graph), config)
        assert {weighted_graph.translate_path(p) for p in result.paths} == {("s", "a", "t")}

    def test_sequence_with_gaps(self, weighted_graph):
        automaton = SequenceAutomaton.from_label_sequence(["ach", "wire"], allow_gaps=True)
        constraint = AutomatonConstraint(weighted_graph, automaton)
        config = RunConfig(constraint=constraint)
        result = IdxDfs().run(weighted_graph, _query(weighted_graph), config)
        paths = {weighted_graph.translate_path(p) for p in result.paths}
        assert ("s", "b", "t") in paths  # ach then wire
        assert ("s", "a", "t") not in paths  # wire wire has no ach before the wire

    def test_join_plan_post_filters(self, weighted_graph):
        automaton = SequenceAutomaton.from_label_sequence(["wire", "wire"])
        constraint = AutomatonConstraint(weighted_graph, automaton)
        config = RunConfig(constraint=constraint)
        dfs_result = IdxDfs().run(weighted_graph, _query(weighted_graph), config)
        join_result = IdxJoin().run(weighted_graph, _query(weighted_graph), config)
        assert set(dfs_result.paths) == set(join_result.paths)

    def test_empty_sequence_rejected(self):
        with pytest.raises(ConstraintError):
            SequenceAutomaton.from_label_sequence([])

    def test_manual_automaton(self, weighted_graph):
        automaton = SequenceAutomaton(
            start="start",
            accepting={"done"},
            transitions={("start", "ach"): "mid", ("mid", "wire"): "done"},
        )
        constraint = AutomatonConstraint(weighted_graph, automaton)
        assert constraint.accepts_path(
            tuple(weighted_graph.to_internal(x) for x in ("s", "b", "t"))
        )
        assert not constraint.accepts_path(
            tuple(weighted_graph.to_internal(x) for x in ("s", "a", "t"))
        )


class TestProtocolBehaviour:
    def test_base_class_is_abstract_by_convention(self):
        constraint = PathConstraint()
        with pytest.raises(NotImplementedError):
            constraint.initial_state()
        with pytest.raises(NotImplementedError):
            constraint.transition(None, 0, 1)
        with pytest.raises(NotImplementedError):
            constraint.accepts(None)

    def test_edge_filter_default_is_none(self, weighted_graph):
        constraint = AccumulativeConstraint(weighted_graph, accept=lambda total: True)
        assert constraint.edge_filter() is None

    def test_constrained_results_are_subset_of_unconstrained(self, weighted_graph):
        query = _query(weighted_graph)
        everything = brute_force_paths(weighted_graph, query.source, query.target, query.k)
        constraint = AccumulativeConstraint(weighted_graph, accept=lambda total: total >= 8.0)
        config = RunConfig(constraint=constraint)
        result = IdxDfs().run(weighted_graph, query, config)
        assert set(result.paths) <= everything
