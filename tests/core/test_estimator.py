"""Unit tests for the preliminary and full-fledged cardinality estimators."""

from __future__ import annotations

import pytest

from repro.core.estimator import (
    dfs_cost,
    find_cut_position,
    full_estimate,
    join_cost,
    preliminary_estimate,
)
from repro.core.index import LightWeightIndex
from repro.core.query import Query
from repro.graph.builder import from_edges
from repro.graph.generators import erdos_renyi, grid_graph, layered_graph

from tests.helpers import brute_force_paths, brute_force_walks


def _index(graph, source, target, k):
    return LightWeightIndex.build(graph, Query(source, target, k))


class TestFullEstimator:
    def test_walk_count_is_exact_on_paper_graph(self, paper_graph, paper_query):
        """The full-fledged estimator counts walks exactly (Eqs. 6-7)."""
        index = LightWeightIndex.build(paper_graph, paper_query)
        estimate = full_estimate(index)
        walks = brute_force_walks(
            paper_graph, paper_query.source, paper_query.target, paper_query.k
        )
        assert estimate.walk_count == len(walks)

    def test_walk_count_exact_on_dag(self, dag_grid):
        # On a DAG walks and paths coincide, so the estimate equals the truth.
        query = Query(0, dag_grid.num_vertices - 1, 7)
        estimate = full_estimate(LightWeightIndex.build(dag_grid, query))
        paths = brute_force_paths(dag_grid, 0, dag_grid.num_vertices - 1, 7)
        assert estimate.walk_count == len(paths) == 35

    def test_walk_count_upper_bounds_path_count(self):
        graph = erdos_renyi(60, 4.0, seed=17)
        query = Query(0, 1, 4)
        estimate = full_estimate(LightWeightIndex.build(graph, query))
        paths = brute_force_paths(graph, 0, 1, 4)
        assert estimate.walk_count >= len(paths)

    def test_prefix_and_suffix_tables_shapes(self, paper_graph, paper_query):
        estimate = full_estimate(LightWeightIndex.build(paper_graph, paper_query))
        k = paper_query.k
        assert estimate.k == k
        assert len(estimate.prefix_sizes) == k + 1
        assert len(estimate.suffix_sizes) == k + 1
        assert estimate.prefix_sizes[0] == 1  # only (s)
        # |Q[k:k]| counts the vertices of C_k, each contributing one empty walk.
        assert estimate.suffix_sizes[k] == len(
            LightWeightIndex.build(paper_graph, paper_query).members(k)
        )

    def test_forward_counts_reach_target(self, paper_graph, paper_query):
        estimate = full_estimate(LightWeightIndex.build(paper_graph, paper_query))
        # At position k every forward walk has been padded into t.
        assert set(estimate.forward[paper_query.k]) == {paper_query.target}
        assert estimate.forward[paper_query.k][paper_query.target] == estimate.walk_count

    def test_backward_count_at_source_equals_walk_count(self, paper_graph, paper_query):
        estimate = full_estimate(LightWeightIndex.build(paper_graph, paper_query))
        assert estimate.backward[0][paper_query.source] == estimate.walk_count

    def test_empty_index_gives_zero(self):
        graph = from_edges([(0, 1), (2, 3)])
        estimate = full_estimate(LightWeightIndex.build(graph, Query(0, 3, 4)))
        assert estimate.walk_count == 0
        assert dfs_cost(estimate) == 0.0


class TestCutPosition:
    def test_cut_position_is_interior(self, paper_graph, paper_query):
        estimate = full_estimate(LightWeightIndex.build(paper_graph, paper_query))
        cut = find_cut_position(estimate)
        assert 1 <= cut <= paper_query.k - 1

    def test_cut_position_minimises_sum(self, paper_graph, paper_query):
        estimate = full_estimate(LightWeightIndex.build(paper_graph, paper_query))
        cut = find_cut_position(estimate)
        best = min(
            estimate.prefix_sizes[i] + estimate.suffix_sizes[i]
            for i in range(1, paper_query.k)
        )
        assert estimate.prefix_sizes[cut] + estimate.suffix_sizes[cut] == best

    def test_cut_prefers_middle_on_symmetric_graph(self):
        graph = layered_graph(4, 3)
        sink = graph.to_internal("sink")
        query = Query(0, sink, 5)
        estimate = full_estimate(LightWeightIndex.build(graph, query))
        cut = find_cut_position(estimate)
        assert cut in (2, 3)

    def test_costs_are_consistent_with_model(self, paper_graph, paper_query):
        estimate = full_estimate(LightWeightIndex.build(paper_graph, paper_query))
        assert dfs_cost(estimate) == sum(estimate.prefix_sizes[1:])
        cut = find_cut_position(estimate)
        expected = (
            estimate.walk_count
            + sum(estimate.prefix_sizes[1 : cut + 1])
            + sum(estimate.suffix_sizes[cut : paper_query.k + 1])
        )
        assert join_cost(estimate, cut) == expected


class TestPreliminaryEstimator:
    def test_positive_on_paper_graph(self, paper_graph, paper_query):
        index = LightWeightIndex.build(paper_graph, paper_query)
        assert preliminary_estimate(index) > 0.0

    def test_zero_when_no_results(self):
        graph = from_edges([(0, 1), (2, 3)])
        index = LightWeightIndex.build(graph, Query(0, 3, 4))
        assert preliminary_estimate(index) == 0.0

    def test_estimate_tracks_search_space_growth(self):
        """A denser graph must produce a larger preliminary estimate."""
        sparse = erdos_renyi(80, 2.0, seed=5)
        dense = erdos_renyi(80, 8.0, seed=5)
        sparse_estimate = preliminary_estimate(
            LightWeightIndex.build(sparse, Query(0, 1, 4))
        )
        dense_estimate = preliminary_estimate(LightWeightIndex.build(dense, Query(0, 1, 4)))
        assert dense_estimate > sparse_estimate

    def test_estimate_grows_with_k(self):
        graph = erdos_renyi(80, 5.0, seed=6)
        estimates = [
            preliminary_estimate(LightWeightIndex.build(graph, Query(0, 1, k)))
            for k in (3, 4, 5, 6)
        ]
        assert estimates == sorted(estimates)

    def test_exact_on_a_chain(self):
        # On a simple chain the search space is one partial result per level.
        graph = from_edges([(0, 1), (1, 2), (2, 3)])
        index = LightWeightIndex.build(graph, Query(0, 3, 3))
        assert preliminary_estimate(index) == pytest.approx(3.0)
