"""Unit tests for the generic DFS framework (Algorithm 1)."""

from __future__ import annotations

import pytest

from repro.baselines.generic_dfs import GenericDfs
from repro.core.listener import RunConfig
from repro.core.query import Query
from repro.core.result import Phase
from repro.graph.builder import from_edges

from tests.helpers import assert_same_paths, brute_force_paths


class TestCorrectness:
    def test_paper_example(self, paper_graph, paper_query):
        result = GenericDfs().run(paper_graph, paper_query)
        expected = brute_force_paths(
            paper_graph, paper_query.source, paper_query.target, paper_query.k
        )
        assert_same_paths(result.paths, expected, context="GenericDFS")

    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_random_graph(self, random_graph, k):
        result = GenericDfs().run(random_graph, Query(5, 6, k))
        expected = brute_force_paths(random_graph, 5, 6, k)
        assert_same_paths(result.paths, expected, context=f"GenericDFS k={k}")

    def test_distance_pruning_respects_hop_constraint(self):
        # Target reachable only at distance 3; with k=2 nothing is found and
        # the pruning stops the search immediately at the source.
        graph = from_edges([(0, 1), (1, 2), (2, 3)])
        result = GenericDfs().run(graph, Query(0, 3, 2))
        assert result.count == 0
        assert result.stats.partial_results_generated == 0

    def test_unreachable_target(self):
        graph = from_edges([(0, 1), (2, 3)])
        assert GenericDfs().run(graph, Query(0, 3, 6)).count == 0


class TestBehaviour:
    def test_phases_recorded(self, paper_graph, paper_query):
        result = GenericDfs().run(paper_graph, paper_query)
        assert result.stats.phase(Phase.BFS) > 0.0
        assert Phase.ENUMERATION in result.stats.phase_seconds

    def test_edges_accessed_counts_full_neighbor_scans(self, paper_graph, paper_query):
        """Algorithm 1 scans every neighbour of the expanded vertex, so it
        accesses at least as many edges as IDX-DFS on the same query."""
        from repro.core.engine import IdxDfs

        generic = GenericDfs().run(paper_graph, paper_query)
        indexed = IdxDfs().run(paper_graph, paper_query)
        assert generic.stats.edges_accessed >= indexed.stats.edges_accessed

    def test_result_limit(self, paper_graph, paper_query):
        result = GenericDfs().run(paper_graph, paper_query, RunConfig(result_limit=3))
        assert result.count == 3
