"""Unit tests for the algorithm registry."""

from __future__ import annotations

import pytest

from repro.baselines.registry import (
    PAPER_ALGORITHMS,
    available_algorithms,
    get_algorithm,
    register_algorithm,
)
from repro.core.algorithm import Algorithm


class TestLookup:
    def test_paper_algorithms_are_registered(self):
        for name in PAPER_ALGORITHMS:
            algorithm = get_algorithm(name)
            assert isinstance(algorithm, Algorithm)
            assert algorithm.name == name

    def test_lookup_is_case_insensitive(self):
        assert get_algorithm("idx-dfs").name == "IDX-DFS"
        assert get_algorithm("PATHENUM").name == "PathEnum"

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(KeyError) as excinfo:
            get_algorithm("definitely-not-registered")
        assert "available" in str(excinfo.value)

    def test_available_algorithms_contains_baselines(self):
        names = set(available_algorithms())
        assert {"BC-DFS", "BC-JOIN", "T-DFS", "Yen-KSP", "FullJoin", "GenericDFS"} <= names

    def test_each_lookup_returns_a_fresh_instance(self):
        assert get_algorithm("PathEnum") is not get_algorithm("PathEnum")


class TestRegistration:
    def test_register_custom_algorithm(self):
        class _Custom(Algorithm):
            name = "CustomTestAlgo"

            def run(self, graph, query, config=None):  # pragma: no cover - not invoked
                raise NotImplementedError

        register_algorithm("CustomTestAlgo", _Custom, overwrite=True)
        assert get_algorithm("customtestalgo").name == "CustomTestAlgo"

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_algorithm("IDX-DFS", lambda: None)  # type: ignore[arg-type]
