"""Unit tests for the barrier-based BC-DFS baseline."""

from __future__ import annotations

import pytest

from repro.baselines.bc_dfs import BcDfs
from repro.core.listener import RunConfig
from repro.core.query import Query
from repro.core.result import Phase
from repro.graph.builder import from_edges
from repro.graph.generators import complete_graph, erdos_renyi

from tests.helpers import assert_same_paths, brute_force_paths


class TestCorrectness:
    def test_paper_example(self, paper_graph, paper_query):
        result = BcDfs().run(paper_graph, paper_query)
        expected = brute_force_paths(
            paper_graph, paper_query.source, paper_query.target, paper_query.k
        )
        assert_same_paths(result.paths, expected, context="BC-DFS")

    def test_grid_counts(self, dag_grid):
        result = BcDfs().run(dag_grid, Query(0, dag_grid.num_vertices - 1, 7))
        assert result.count == 35

    @pytest.mark.parametrize("k", [3, 4, 5, 6])
    def test_random_graph_against_brute_force(self, random_graph, k):
        query = Query(0, 1, k)
        result = BcDfs().run(random_graph, query)
        expected = brute_force_paths(random_graph, 0, 1, k)
        assert_same_paths(result.paths, expected, context=f"BC-DFS k={k}")

    def test_barriers_do_not_lose_results_on_dense_cycles(self):
        """Barrier roll-back regression test.

        The triangle fan below forces many failed subtrees whose barriers
        must be restored when the blocking vertex pops, otherwise paths
        through previously failed vertices are lost.
        """
        graph = from_edges(
            [
                (0, 1), (1, 2), (2, 3), (3, 4),
                (1, 3), (2, 4), (0, 2), (3, 1),
                (4, 5), (1, 5), (2, 5),
            ]
        )
        for k in (3, 4, 5, 6):
            query = Query(0, 5, k)
            result = BcDfs().run(graph, query)
            expected = brute_force_paths(graph, 0, 5, k)
            assert_same_paths(result.paths, expected, context=f"barrier k={k}")

    def test_no_results_when_unreachable(self):
        graph = from_edges([(0, 1), (2, 3)])
        assert BcDfs().run(graph, Query(0, 3, 5)).count == 0


class TestBehaviour:
    def test_records_bfs_phase(self, paper_graph, paper_query):
        result = BcDfs().run(paper_graph, paper_query)
        assert result.stats.phase(Phase.BFS) > 0.0
        assert result.stats.phase(Phase.ENUMERATION) >= 0.0

    def test_barrier_pruning_reduces_partial_results(self, skewed_graph):
        """BC-DFS must never expand more partial results than the unpruned framework."""
        from repro.baselines.generic_dfs import GenericDfs

        query = Query(0, 1, 4)
        config = RunConfig(store_paths=False)
        bc = BcDfs().run(skewed_graph, query, config)
        generic = GenericDfs().run(skewed_graph, query, config)
        assert bc.count == generic.count
        assert bc.stats.partial_results_generated <= generic.stats.partial_results_generated

    def test_timeout_is_reported(self):
        graph = complete_graph(10)
        config = RunConfig(store_paths=False, time_limit_seconds=0.0)
        result = BcDfs().run(graph, Query(0, 9, 6), config)
        assert result.stats.timed_out

    def test_result_limit(self, paper_graph, paper_query):
        config = RunConfig(result_limit=2)
        result = BcDfs().run(paper_graph, paper_query, config)
        assert result.count == 2
        assert result.stats.truncated
