"""Unit tests for the BC-JOIN baseline."""

from __future__ import annotations

import pytest

from repro.baselines.bc_join import BcJoin
from repro.core.listener import RunConfig
from repro.core.query import Query
from repro.graph.builder import from_edges

from tests.helpers import assert_same_paths, brute_force_paths


class TestCorrectness:
    def test_paper_example(self, paper_graph, paper_query):
        result = BcJoin().run(paper_graph, paper_query)
        expected = brute_force_paths(
            paper_graph, paper_query.source, paper_query.target, paper_query.k
        )
        assert_same_paths(result.paths, expected, context="BC-JOIN")

    @pytest.mark.parametrize("k", [3, 4, 5, 6, 7])
    def test_all_path_lengths_survive_the_middle_split(self, k):
        # Paths of every length from 1 to 5 between s and t.
        graph = from_edges(
            [
                ("s", "t"),
                ("s", "a1"), ("a1", "t"),
                ("s", "b1"), ("b1", "b2"), ("b2", "t"),
                ("s", "c1"), ("c1", "c2"), ("c2", "c3"), ("c3", "t"),
                ("s", "d1"), ("d1", "d2"), ("d2", "d3"), ("d3", "d4"), ("d4", "t"),
            ]
        )
        s, t = graph.to_internal("s"), graph.to_internal("t")
        result = BcJoin().run(graph, Query(s, t, k))
        expected = brute_force_paths(graph, s, t, k)
        assert_same_paths(result.paths, expected, context=f"BC-JOIN k={k}")

    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_random_graph_against_brute_force(self, random_graph, k):
        query = Query(2, 3, k)
        result = BcJoin().run(random_graph, query)
        expected = brute_force_paths(random_graph, 2, 3, k)
        assert_same_paths(result.paths, expected, context=f"BC-JOIN k={k}")

    def test_disjointness_check_rejects_overlapping_halves(self):
        # The only k=4 candidate crosses the same vertex on both sides.
        graph = from_edges([("s", "a"), ("a", "b"), ("b", "a"), ("a", "t"), ("b", "t")])
        s, t = graph.to_internal("s"), graph.to_internal("t")
        result = BcJoin().run(graph, Query(s, t, 4))
        expected = brute_force_paths(graph, s, t, 4)
        assert_same_paths(result.paths, expected, context="BC-JOIN overlap")

    def test_no_duplicate_results(self, random_graph):
        result = BcJoin().run(random_graph, Query(0, 1, 5))
        assert len(result.paths) == len(set(result.paths))

    def test_no_results_when_unreachable(self):
        graph = from_edges([(0, 1), (2, 3)])
        assert BcJoin().run(graph, Query(0, 3, 4)).count == 0


class TestBehaviour:
    def test_partial_results_are_materialised(self, random_graph):
        result = BcJoin().run(random_graph, Query(0, 1, 5), RunConfig(store_paths=False))
        assert result.stats.peak_partial_result_tuples > 0

    def test_result_limit(self, paper_graph, paper_query):
        result = BcJoin().run(paper_graph, paper_query, RunConfig(result_limit=1))
        assert result.count == 1
        assert result.stats.truncated
