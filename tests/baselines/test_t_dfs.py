"""Unit tests for the certification-based T-DFS baseline."""

from __future__ import annotations

import pytest

from repro.baselines.t_dfs import TDfs
from repro.core.listener import RunConfig
from repro.core.query import Query
from repro.graph.builder import from_edges

from tests.helpers import assert_same_paths, brute_force_paths


class TestCorrectness:
    def test_paper_example(self, paper_graph, paper_query):
        result = TDfs().run(paper_graph, paper_query)
        expected = brute_force_paths(
            paper_graph, paper_query.source, paper_query.target, paper_query.k
        )
        assert_same_paths(result.paths, expected, context="T-DFS")

    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_random_graph(self, random_graph, k):
        result = TDfs().run(random_graph, Query(7, 8, k))
        expected = brute_force_paths(random_graph, 7, 8, k)
        assert_same_paths(result.paths, expected, context=f"T-DFS k={k}")

    def test_unreachable_target(self):
        graph = from_edges([(0, 1), (2, 3)])
        assert TDfs().run(graph, Query(0, 3, 4)).count == 0


class TestPolynomialDelayProperty:
    def test_every_partial_result_leads_to_a_result(self):
        """The certification guarantees zero invalid partial results."""
        graph = from_edges(
            [("s", "a"), ("a", "b"), ("b", "a"), ("a", "t"), ("b", "c"), ("c", "t")]
        )
        s, t = graph.to_internal("s"), graph.to_internal("t")
        result = TDfs().run(graph, Query(s, t, 4))
        assert result.count == len(brute_force_paths(graph, s, t, 4))
        assert result.stats.invalid_partial_results == 0

    def test_certification_costs_more_edge_accesses_than_idx_dfs(self, paper_graph, paper_query):
        from repro.core.engine import IdxDfs

        t_dfs = TDfs().run(paper_graph, paper_query)
        idx = IdxDfs().run(paper_graph, paper_query)
        assert t_dfs.stats.edges_accessed >= idx.stats.edges_accessed

    def test_result_limit(self, paper_graph, paper_query):
        result = TDfs().run(paper_graph, paper_query, RunConfig(result_limit=2))
        assert result.count == 2
