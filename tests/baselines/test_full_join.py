"""Unit tests for the FullJoin baseline (Algorithm 2 + left-deep evaluation)."""

from __future__ import annotations

import pytest

from repro.baselines.full_join import FullJoin
from repro.core.listener import RunConfig
from repro.core.query import Query
from repro.core.result import Phase
from repro.graph.builder import from_edges

from tests.helpers import assert_same_paths, brute_force_paths


class TestCorrectness:
    def test_paper_example(self, paper_graph, paper_query):
        result = FullJoin().run(paper_graph, paper_query)
        expected = brute_force_paths(
            paper_graph, paper_query.source, paper_query.target, paper_query.k
        )
        assert_same_paths(result.paths, expected, context="FullJoin")

    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_random_graph(self, random_graph, k):
        result = FullJoin().run(random_graph, Query(12, 13, k))
        expected = brute_force_paths(random_graph, 12, 13, k)
        assert_same_paths(result.paths, expected, context=f"FullJoin k={k}")

    def test_short_paths_survive(self):
        graph = from_edges([("s", "t"), ("s", "a"), ("a", "b"), ("b", "t")])
        s, t = graph.to_internal("s"), graph.to_internal("t")
        result = FullJoin().run(graph, Query(s, t, 4))
        assert result.count == 2

    def test_unreachable_target(self):
        graph = from_edges([(0, 1), (2, 3)])
        assert FullJoin().run(graph, Query(0, 3, 4)).count == 0


class TestBehaviour:
    def test_relation_construction_counted_as_preprocessing(self, paper_graph, paper_query):
        result = FullJoin().run(paper_graph, paper_query)
        assert result.stats.phase(Phase.INDEX) > 0.0
        assert result.stats.index_edges > 0

    def test_relation_construction_is_heavier_than_light_weight_index(
        self, paper_graph, paper_query
    ):
        """Section 4.2's motivation: Algorithm 2 materialises more state."""
        from repro.core.engine import IdxDfs

        full = FullJoin().run(paper_graph, paper_query)
        idx = IdxDfs().run(paper_graph, paper_query)
        # The k relations repeat interior edges once per position, so the
        # reducer's footprint is at least as large as the index.
        assert full.stats.index_edges >= idx.stats.index_edges

    def test_result_limit(self, paper_graph, paper_query):
        result = FullJoin().run(paper_graph, paper_query, RunConfig(result_limit=2))
        assert result.count == 2
