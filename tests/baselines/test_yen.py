"""Unit tests for the Yen's-algorithm (top-K shortest paths) adapter."""

from __future__ import annotations

import pytest

from repro.baselines.yen import YenKsp
from repro.core.listener import RunConfig
from repro.core.query import Query
from repro.graph.builder import from_edges

from tests.helpers import assert_same_paths, brute_force_paths


class TestCorrectness:
    def test_paper_example(self, paper_graph, paper_query):
        result = YenKsp().run(paper_graph, paper_query)
        expected = brute_force_paths(
            paper_graph, paper_query.source, paper_query.target, paper_query.k
        )
        assert_same_paths(result.paths, expected, context="Yen-KSP")

    @pytest.mark.parametrize("k", [3, 4])
    def test_random_graph(self, random_graph, k):
        result = YenKsp().run(random_graph, Query(10, 11, k))
        expected = brute_force_paths(random_graph, 10, 11, k)
        assert_same_paths(result.paths, expected, context=f"Yen k={k}")

    def test_results_in_ascending_length_order(self, paper_graph, paper_query):
        """The KSP adapter enumerates in length order — the overhead the paper notes."""
        result = YenKsp().run(paper_graph, paper_query)
        lengths = [len(p) - 1 for p in result.paths]
        assert lengths == sorted(lengths)

    def test_parallel_branches_no_duplicates(self):
        graph = from_edges(
            [("s", "a"), ("s", "b"), ("a", "m"), ("b", "m"), ("m", "x"), ("m", "y"),
             ("x", "t"), ("y", "t")]
        )
        s, t = graph.to_internal("s"), graph.to_internal("t")
        result = YenKsp().run(graph, Query(s, t, 4))
        assert len(result.paths) == len(set(result.paths)) == 4

    def test_unreachable_target(self):
        graph = from_edges([(0, 1), (2, 3)])
        assert YenKsp().run(graph, Query(0, 3, 4)).count == 0

    def test_shortest_path_longer_than_k(self):
        graph = from_edges([(0, 1), (1, 2), (2, 3), (3, 4)])
        assert YenKsp().run(graph, Query(0, 4, 3)).count == 0

    def test_result_limit(self, paper_graph, paper_query):
        result = YenKsp().run(paper_graph, paper_query, RunConfig(result_limit=2))
        assert result.count == 2
