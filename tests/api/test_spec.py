"""Validation of the declarative query spec and its fluent builder."""

from __future__ import annotations

import dataclasses

import pytest

from repro.api import Q, QuerySpec, as_spec
from repro.core.query import Query
from repro.errors import QuerySpecError, ReproError


class TestQuerySpecValidation:
    def test_valid_spec_round_trips_fields(self):
        spec = QuerySpec(0, 5, 4, limit=10, deadline=1.5, engine="kernel")
        assert spec.triple == (0, 5, 4)
        assert spec.limit == 10
        assert spec.deadline == 1.5
        assert spec.engine == "kernel"
        assert spec.store_paths is True

    def test_negative_k_is_rejected(self):
        with pytest.raises(QuerySpecError, match="hop budget k must be at least 2, got -3"):
            QuerySpec(0, 1, -3)

    def test_k_below_minimum_is_rejected(self):
        with pytest.raises(QuerySpecError, match="at least 2, got 1"):
            QuerySpec(0, 1, 1)

    def test_non_integer_k_is_rejected(self):
        with pytest.raises(QuerySpecError, match="must be an int"):
            QuerySpec(0, 1, "4")

    def test_identical_endpoints_are_rejected(self):
        with pytest.raises(QuerySpecError, match="distinct vertices"):
            QuerySpec(7, 7, 4)

    def test_identical_external_endpoints_are_rejected(self):
        with pytest.raises(QuerySpecError, match="both are 'alice'"):
            QuerySpec("alice", "alice", 4)

    def test_unknown_engine_is_rejected(self):
        with pytest.raises(QuerySpecError, match="unknown engine 'warp'"):
            QuerySpec(0, 1, 4, engine="warp")

    def test_non_positive_limit_is_rejected(self):
        with pytest.raises(QuerySpecError, match="result limit must be a positive int"):
            QuerySpec(0, 1, 4, limit=0)

    def test_negative_deadline_is_rejected(self):
        with pytest.raises(QuerySpecError, match="deadline must be non-negative"):
            QuerySpec(0, 1, 4, deadline=-1.0)

    def test_non_positive_response_k_is_rejected(self):
        with pytest.raises(QuerySpecError, match="response_k must be a positive int"):
            QuerySpec(0, 1, 4, response_k=0)

    def test_spec_error_is_a_value_error_and_repro_error(self):
        with pytest.raises(ValueError):
            QuerySpec(0, 0, 4)
        with pytest.raises(ReproError):
            QuerySpec(0, 0, 4)

    def test_specs_are_frozen(self):
        spec = QuerySpec(0, 1, 4)
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.k = 9  # type: ignore[misc]
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.limit = 3  # type: ignore[misc]

    def test_replace_revalidates(self):
        spec = QuerySpec(0, 1, 4)
        assert spec.replace(k=6).k == 6
        with pytest.raises(QuerySpecError):
            spec.replace(engine="nope")


class TestQBuilder:
    def test_fluent_chain_builds_the_spec(self):
        spec = Q(0, 9, 4).limit(100).engine("kernel").deadline(2.0).count_only().spec()
        assert spec == QuerySpec(
            0, 9, 4, limit=100, engine="kernel", deadline=2.0, store_paths=False
        )

    def test_builder_methods_fork(self):
        base = Q(0, 9, 4).deadline(1.0)
        quick = base.limit(10)
        full = base.engine("recursive")
        assert quick.spec().limit == 10
        assert quick.spec().engine == "auto"
        assert full.spec().limit is None
        assert full.spec().engine == "recursive"
        # The shared prefix is untouched by either fork.
        assert base.spec().limit is None
        assert base.spec().engine == "auto"

    def test_builder_validates_at_spec_time(self):
        bad = Q(3, 3, 4)  # no error yet: validation happens on freeze
        with pytest.raises(QuerySpecError):
            bad.spec()

    def test_where_attaches_the_constraint(self):
        marker = object()
        assert Q(0, 1, 4).where(marker).spec().constraint is marker

    def test_store_paths_and_response_k(self):
        spec = Q(0, 1, 4).store_paths(False).response_k(7).spec()
        assert spec.store_paths is False
        assert spec.response_k == 7


class TestAsSpec:
    def test_accepts_specs_builders_queries_and_triples(self):
        spec = QuerySpec(0, 1, 4)
        assert as_spec(spec) is spec
        assert as_spec(Q(0, 1, 4)) == spec
        assert as_spec(Query(0, 1, 4)) == spec
        assert as_spec((0, 1, 4)) == spec
        assert as_spec([0, 1, 4]) == spec

    def test_overrides_apply_to_every_shape(self):
        assert as_spec((0, 1, 4), limit=5).limit == 5
        assert as_spec(Q(0, 1, 4), limit=5).limit == 5
        assert as_spec(QuerySpec(0, 1, 4), limit=5).limit == 5

    def test_rejects_unbuildable_items(self):
        with pytest.raises(QuerySpecError, match="cannot build a QuerySpec"):
            as_spec("0,1,4")
        with pytest.raises(QuerySpecError, match="cannot build a QuerySpec"):
            as_spec((0, 1))
