"""Unit tests of the ``Database`` façade and its ``ResultStream`` surface."""

from __future__ import annotations

import pytest

from repro.api import BACKEND_CHOICES, Database, Q, QuerySpec
from repro.core.constraints import PredicateConstraint
from repro.core.engine import PathEnum, QuerySession
from repro.core.listener import RunConfig
from repro.errors import BackendError, QuerySpecError
from repro.graph.builder import GraphBuilder
from repro.graph.generators import erdos_renyi
from repro.graph.io import _save_npz as save_npz
from repro.graph.io import write_edge_list
from repro.workloads.queries import generate_target_centric_set


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(80, 4.0, seed=3)


@pytest.fixture(scope="module")
def workload(graph):
    return list(generate_target_centric_set(graph, count=8, k=4, num_targets=2, seed=5))


class TestOpening:
    def test_open_from_digraph_defaults_to_inline(self, graph):
        with Database(graph) as db:
            assert db.backend_name == "inline"
            assert db.graph is graph

    def test_open_from_npz_snapshot(self, graph, tmp_path):
        path = tmp_path / "snapshot.npz"
        save_npz(graph, path)
        with Database(str(path)) as db:
            assert db.backend_name == "inline"
            assert db.graph.num_vertices == graph.num_vertices
            assert db.query((0, 10, 4)).result().count == _direct_count(graph, 0, 10, 4)

    def test_open_from_edge_list(self, tmp_path):
        builder = GraphBuilder()
        builder.add_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
        path = tmp_path / "edges.txt"
        write_edge_list(builder.build(), path)
        with Database(str(path)) as db:
            result = db.query(Q(0, 3, 3), external=True).result()
            assert result.count == 2

    def test_url_target_infers_remote(self):
        db = Database("127.0.0.1:7284")
        assert db.backend_name == "remote"
        assert db.graph is None
        db.close()

    def test_open_classmethod_is_the_constructor(self, graph):
        with Database.open(graph, backend="threads", workers=2) as db:
            assert db.backend_name == "threads"

    def test_unknown_backend_name_is_rejected(self, graph):
        with pytest.raises(BackendError, match="unknown backend 'quantum'"):
            Database(graph, backend="quantum")
        with pytest.raises(ValueError):
            Database(graph, backend="quantum")

    def test_every_documented_backend_is_constructible(self, graph):
        for backend in BACKEND_CHOICES:
            if backend in ("remote", "router"):  # need a live host / fleet
                continue
            workers = None if backend == "inline" else 2
            Database(graph, backend=backend, workers=workers).close()

    def test_router_backend_needs_a_shard_target(self, graph):
        with pytest.raises(BackendError, match="router"):
            Database(graph, backend="router")

    def test_workers_argument_infers_the_thread_backend(self, graph):
        with Database(graph, workers=4) as db:
            assert db.backend_name == "threads"

    def test_inline_backend_rejects_workers(self, graph):
        with pytest.raises(BackendError, match="takes no workers"):
            Database(graph, backend="inline", workers=4)

    def test_remote_backend_needs_a_url(self, graph):
        with pytest.raises(BackendError, match="needs a host:port target"):
            Database(graph, backend="remote")

    def test_local_backend_rejects_a_url(self):
        with pytest.raises(BackendError, match="cannot run against the remote target"):
            Database("127.0.0.1:7284", backend="threads")

    def test_remote_rejects_an_algorithm(self):
        with pytest.raises(BackendError, match="drop the algorithm argument"):
            Database("127.0.0.1:7284", algorithm=PathEnum())

    def test_unresolvable_target_is_rejected(self, tmp_path):
        with pytest.raises(BackendError, match="cannot open"):
            Database(str(tmp_path / "missing.edges"))
        with pytest.raises(BackendError, match="cannot open"):
            Database(12345)


class TestLifecycle:
    def test_context_manager_closes(self, graph):
        with Database(graph) as db:
            assert not db.closed
        assert db.closed

    def test_submitting_after_close_fails(self, graph):
        db = Database(graph)
        db.close()
        with pytest.raises(RuntimeError, match="closed"):
            db.query((0, 1, 4))

    def test_close_is_idempotent(self, graph):
        db = Database(graph, backend="threads", workers=2)
        db.batch([(0, 10, 4)]).results()
        db.close()
        db.close()


def _direct_count(graph, s, t, k):
    return QuerySession(graph).run_external(s, t, k, RunConfig(store_paths=False)).count


class TestExecution:
    def test_query_returns_a_one_result_stream(self, graph):
        with Database(graph) as db:
            stream = db.query(Q(0, 10, 4))
            assert len(stream) == 1
            result = stream.result()
            assert result.count == _direct_count(graph, 0, 10, 4)

    def test_result_rejects_multi_query_streams(self, graph, workload):
        with Database(graph) as db:
            with pytest.raises(RuntimeError, match="single-query stream"):
                db.batch(workload).result()

    def test_batch_iterates_in_workload_order(self, graph, workload):
        with Database(graph) as db:
            stream = db.batch(workload)
            iterated = [(r.source, r.target, r.k) for r in stream]
        assert iterated == [(q.source, q.target, q.k) for q in workload]

    def test_stream_yields_every_result_with_positions(self, graph, workload):
        with Database(graph, backend="threads", workers=2) as db:
            pairs = list(db.stream(workload).as_completed())
        assert sorted(position for position, _ in pairs) == list(range(len(workload)))

    def test_query_option_overrides_apply(self, graph):
        with Database(graph) as db:
            limited = db.query((0, 10, 4), limit=1).result()
            assert limited.count <= 1
            counted = db.query((0, 10, 4), store_paths=False).result()
            assert counted.paths is None

    def test_empty_batch_yields_an_empty_stream(self, graph):
        with Database(graph) as db:
            stream = db.batch([])
            assert stream.results() == []
            assert stream.stats().completed == 0
            assert stream.payload() == []

    def test_mixed_run_options_are_rejected(self, graph):
        with Database(graph) as db:
            with pytest.raises(QuerySpecError, match="'limit' differs between query 0"):
                db.batch([QuerySpec(0, 10, 4, limit=5), QuerySpec(1, 10, 4)])

    def test_external_ids_resolve_through_the_graph(self):
        builder = GraphBuilder()
        builder.add_edges([("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")])
        with Database(builder.build()) as db:
            paths = db.query(Q("a", "d", 3), external=True).paths()[0]
            translated = [db.graph.translate_path(p) for p in paths]
        assert sorted(translated, key=len) == [("a", "c", "d"), ("a", "b", "c", "d")]

    def test_internal_mode_rejects_non_integer_endpoints(self, graph):
        with Database(graph) as db:
            with pytest.raises(QuerySpecError, match="external=True"):
                db.query(Q("a", "b", 4))

    def test_constraints_run_on_the_inline_backend(self, graph):
        allow_all = PredicateConstraint(lambda u, v, weight, label: True, graph)
        with Database(graph) as db:
            plain = db.query((0, 10, 4)).result()
            constrained = db.query(Q(0, 10, 4).where(allow_all)).result()
        assert constrained.count == plain.count

    def test_constraints_are_rejected_off_inline(self, graph):
        allow_all = PredicateConstraint(lambda u, v, weight, label: True, graph)
        with Database(graph, backend="threads", workers=2) as db:
            with pytest.raises(BackendError, match="inline Database") as excinfo:
                db.query(Q(0, 10, 4).where(allow_all))
        # The guidance must point at the façade, not a deprecated executor.
        assert "BatchExecutor" not in str(excinfo.value)

    def test_numpy_integer_endpoints_are_accepted(self, graph):
        np = pytest.importorskip("numpy")
        triple = (np.int64(0), np.int64(10), np.int64(4))
        with Database(graph) as db:
            fromnumpy = db.query(triple).result()
            plain = db.query((0, 10, 4)).result()
        assert fromnumpy.count == plain.count
        assert QuerySpec(*triple).k == 4

    def test_inline_streams_lazily(self, graph, workload):
        with Database(graph) as db:
            stream = db.batch(workload)
            first = next(iter(stream))
            # Only the pulled prefix has been evaluated.
            assert stream.delivered < len(workload)
            assert (first.source, first.target) == (workload[0].source, workload[0].target)

    def test_cancel_stops_between_queries(self, graph, workload):
        with Database(graph) as db:
            stream = db.batch(workload)
            iterator = iter(stream)
            next(iterator)
            stream.cancel()
            assert list(iterator) == []
            assert stream.cancelled
            with pytest.raises(RuntimeError, match="missing"):
                stream.results()

    def test_stats_match_session_accounting(self, graph, workload):
        with Database(graph) as db:
            stream = db.batch(workload)
            stream.results()
            stats = stream.stats()
        targets = {(q.target, q.k) for q in workload}
        assert stats.completed == len(workload)
        assert stats.reverse_bfs_runs == len(targets)
        assert stats.bfs_cache_hits == len(workload) - len(targets)
        assert 0.0 <= stats.hit_rate <= 1.0
        assert stats.as_row()["queries"] == len(workload)

    def test_payload_bytes_is_deterministic(self, graph, workload):
        with Database(graph) as db:
            first = db.batch(workload).payload_bytes()
            second = db.batch(workload).payload_bytes()
        assert first == second


class TestDeprecationShims:
    @pytest.mark.parametrize(
        "name",
        ["QuerySession", "BatchExecutor", "ProcessBatchExecutor", "ExecutorCore", "StreamRun"],
    )
    def test_top_level_executor_access_warns(self, name):
        import repro
        from repro.core import engine

        with pytest.warns(DeprecationWarning, match=f"repro.{name} is deprecated"):
            shimmed = getattr(repro, name)
        assert shimmed is getattr(engine, name)

    def test_internal_imports_stay_silent(self, recwarn):
        from repro.core.engine import BatchExecutor, QuerySession  # noqa: F401

        deprecations = [w for w in recwarn.list if w.category is DeprecationWarning]
        assert deprecations == []

    def test_unknown_attribute_still_raises(self):
        import repro

        with pytest.raises(AttributeError):
            repro.NoSuchThing
