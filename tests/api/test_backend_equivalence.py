"""Cross-backend equivalence: one spec list, byte-identical payloads.

The acceptance contract of the façade: the same :class:`~repro.api.QuerySpec`
batch produces byte-identical :meth:`~repro.api.ResultStream.payload_bytes`
whichever backend executes it — inline, thread pool, worker processes or a
TCP server — including runs interrupted by a result limit or a deadline,
and under forced engine selection (the ``engine`` option travels in the
remote submit frame and is honored server-side).
"""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro.api import Database
from repro.graph.generators import erdos_renyi
from repro.server.client import QueryClient
from repro.server.server import QueryServer
from repro.server.service import QueryService
from repro.workloads.queries import generate_target_centric_set

BACKENDS = ("inline", "threads", "processes", "remote")


@pytest.fixture(scope="module")
def graph():
    # Dense enough that a zero deadline interrupts mid-enumeration (the
    # cooperative deadline only polls the clock every ~256 work units).
    return erdos_renyi(300, 8.0, seed=11)


@pytest.fixture(scope="module")
def shared_target_triples(graph):
    """Ten queries over three targets — the cache-sharing traffic shape."""
    workload = generate_target_centric_set(graph, count=10, k=4, num_targets=3, seed=5)
    return [(q.source, q.target, q.k) for q in workload]


@pytest.fixture(scope="module")
def distinct_target_triples(graph):
    """Queries with pairwise-distinct ``(target, k)`` keys.

    Used for the deadline scenario: with no key shared, no backend injects
    multi-source forward sweeps, so the cooperative deadline's poll
    countdown sees the identical call sequence everywhere and interruption
    points coincide exactly.
    """
    workload = generate_target_centric_set(graph, count=12, k=6, num_targets=8, seed=9)
    triples, seen = [], set()
    for q in workload:
        if (q.target, q.k) not in seen:
            seen.add((q.target, q.k))
            triples.append((q.source, q.target, q.k))
    triples = triples[:6]
    assert len(triples) == 6
    return triples


@pytest.fixture(scope="module")
def remote_url(graph):
    """A live ``repro serve`` equivalent on a free port, torn down after."""
    holder = {}
    ready = threading.Event()

    def serve() -> None:
        async def main() -> None:
            service = QueryService(graph, threads=2)
            server = QueryServer(service, port=0)
            await server.start()
            holder["port"] = server.port
            holder["loop"] = asyncio.get_running_loop()
            holder["stop"] = asyncio.Event()
            ready.set()
            await holder["stop"].wait()
            await server.close()
            await service.close()

        asyncio.run(main())

    thread = threading.Thread(target=serve, name="equivalence-server", daemon=True)
    thread.start()
    assert ready.wait(10), "server failed to boot"
    yield f"127.0.0.1:{holder['port']}"
    holder["loop"].call_soon_threadsafe(holder["stop"].set)
    thread.join(10)


def _open(graph, backend, remote_url):
    if backend == "remote":
        return Database(remote_url)
    if backend == "inline":
        return Database(graph)
    return Database(graph, backend=backend, workers=2)


def _payload(graph, backend, remote_url, triples, options):
    with _open(graph, backend, remote_url) as db:
        return db.batch(triples, **options).payload_bytes()


#: Scenario name -> run options; every scenario runs the same spec list on
#: all four backends and the payloads must agree byte for byte.
SCENARIOS = {
    "plain": {},
    "count_only": {"store_paths": False},
    "limit_interrupted": {"limit": 3},
    "engine_kernel": {"engine": "kernel"},
    "engine_native": {"engine": "native"},
    "engine_recursive": {"engine": "recursive"},
    "engine_native_limit": {"engine": "native", "limit": 3},
}


class TestPayloadEquivalence:
    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_backend_matches_inline_reference(
        self, graph, shared_target_triples, remote_url, backend, scenario
    ):
        options = SCENARIOS[scenario]
        reference = _payload(graph, "inline", remote_url, shared_target_triples, options)
        actual = _payload(graph, backend, remote_url, shared_target_triples, options)
        assert actual == reference

    def test_limit_scenario_actually_truncates(self, graph, shared_target_triples):
        with Database(graph) as db:
            results = db.batch(shared_target_triples, limit=3).results()
        assert any(r.stats.truncated for r in results)
        assert all(r.count <= 3 for r in results)

    def test_engine_choice_does_not_change_the_payload(
        self, graph, shared_target_triples, remote_url
    ):
        kernel = _payload(
            graph, "remote", remote_url, shared_target_triples, {"engine": "kernel"}
        )
        recursive = _payload(
            graph, "remote", remote_url, shared_target_triples, {"engine": "recursive"}
        )
        native = _payload(
            graph, "remote", remote_url, shared_target_triples, {"engine": "native"}
        )
        assert kernel == recursive
        assert native == recursive

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_deadline_interruption_is_identical(
        self, graph, distinct_target_triples, remote_url, backend
    ):
        options = {"deadline": 0.0}
        reference = _payload(
            graph, "inline", remote_url, distinct_target_triples, options
        )
        assert any(
            entry["timed_out"] for entry in json.loads(reference)
        ), "deadline scenario never timed out — not exercising interruption"
        actual = _payload(graph, backend, remote_url, distinct_target_triples, options)
        assert actual == reference


class TestCacheFlagEquivalence:
    """Local backends charge cache flags the way a sequential session would.

    The remote backend is excluded: a long-lived server keeps its distance
    cache warm across jobs (flags go to all-hit), which is exactly why the
    flags are not part of the canonical payload.
    """

    @pytest.mark.parametrize("backend", ("threads", "processes"))
    def test_flags_match_a_fresh_inline_run(
        self, graph, shared_target_triples, backend
    ):
        def flags(chosen: str):
            kwargs = {} if chosen == "inline" else {"workers": 2}
            with Database(graph, backend=chosen, **kwargs) as db:
                return [
                    r.stats.bfs_cache_hit for r in db.batch(shared_target_triples).results()
                ]

        assert flags(backend) == flags("inline")


class TestRemoteEnginePlumbing:
    def test_unknown_engine_is_rejected_server_side(self, remote_url):
        """The submit frame carries the engine opt — the server validates it."""
        host, port = remote_url.rsplit(":", 1)

        async def scenario():
            client = await QueryClient.connect(host, int(port))
            async with client:
                job_id = await client.submit([[0, 10, 4]], engine="bogus")
                return await client.collect(job_id)

        outcome = asyncio.run(scenario())
        assert outcome.status == "error"
        assert "unknown engine 'bogus'" in str(outcome.info.get("error"))

    def test_explicit_engine_runs_server_side(self, remote_url):
        with Database(remote_url) as db:
            result = db.query((0, 10, 4), engine="kernel").result()
        assert result.count >= 0
