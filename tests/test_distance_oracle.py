"""Unit and property tests for the landmark distance oracle (Section 7.5 extension)."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.distance import LandmarkOracle, select_landmarks
from repro.errors import GraphError
from repro.graph.builder import GraphBuilder, from_edges
from repro.graph.generators import chain_graph, erdos_renyi, power_law_graph
from repro.graph.traversal import UNREACHABLE, distance


class TestLandmarkSelection:
    def test_degree_strategy_picks_hubs(self):
        graph = power_law_graph(200, 4.0, exponent=2.0, seed=5)
        landmarks = select_landmarks(graph, 5)
        degrees = graph.out_degrees() + graph.in_degrees()
        picked = min(degrees[v] for v in landmarks)
        others = max(degrees[v] for v in graph.vertices() if v not in set(landmarks))
        assert picked >= others - 1  # ties can go either way
        assert len(landmarks) == len(set(landmarks)) == 5

    def test_random_strategy_is_reproducible(self):
        graph = erdos_renyi(100, 3.0, seed=9)
        assert select_landmarks(graph, 4, strategy="random") == select_landmarks(
            graph, 4, strategy="random"
        )

    def test_count_is_clamped_to_vertex_count(self):
        graph = chain_graph(5)
        assert len(select_landmarks(graph, 50)) == 5

    def test_invalid_inputs(self):
        graph = chain_graph(5)
        with pytest.raises(GraphError):
            select_landmarks(graph, 0)
        with pytest.raises(GraphError):
            select_landmarks(graph, 2, strategy="closest-first")
        with pytest.raises(GraphError):
            LandmarkOracle(graph, [])


class TestBoundsOnSmallGraphs:
    def test_chain_bounds_are_exact_with_endpoint_landmarks(self):
        graph = chain_graph(8)
        oracle = LandmarkOracle(graph, [0, 7])
        assert oracle.upper_bound(0, 7) == 7
        assert oracle.lower_bound(0, 7) == 7
        assert oracle.might_reach_within(0, 7, 7)
        assert not oracle.might_reach_within(0, 7, 6)

    def test_unreachable_pair_is_rejected(self):
        graph = from_edges([(0, 1), (2, 3)])
        oracle = LandmarkOracle(graph, [0, 2])
        assert oracle.upper_bound(0, 3) is None
        # The reverse direction 1 -> 0 is also impossible and the landmark at
        # 0 proves d(0,·) asymmetry; the filter must never reject a reachable
        # pair, and may keep an unreachable one.
        assert oracle.might_reach_within(0, 1, 2)

    def test_same_vertex(self):
        graph = chain_graph(4)
        oracle = LandmarkOracle(graph, [0])
        assert oracle.upper_bound(2, 2) == 0
        assert oracle.lower_bound(2, 2) == 0

    def test_definitely_reaches_within(self):
        graph = chain_graph(6)
        oracle = LandmarkOracle(graph, [3])
        assert oracle.definitely_reaches_within(0, 5, 5)
        assert not oracle.definitely_reaches_within(0, 5, 3)

    def test_estimated_bytes_scales_with_landmarks(self):
        graph = erdos_renyi(100, 3.0, seed=2)
        small = LandmarkOracle.build(graph, num_landmarks=2)
        large = LandmarkOracle.build(graph, num_landmarks=8)
        assert large.estimated_bytes() > small.estimated_bytes()
        assert large.num_landmarks == 8


class TestOracleAsQueryFilter:
    def test_filter_never_rejects_a_query_with_results(self):
        """Soundness on a realistic graph: every (s, t) pair within k hops passes."""
        graph = power_law_graph(150, 4.0, exponent=2.1, seed=11)
        oracle = LandmarkOracle.build(graph, num_landmarks=8)
        checked = 0
        for s in range(0, 60, 7):
            for t in range(1, 60, 11):
                if s == t:
                    continue
                true_distance = distance(graph, s, t, cutoff=6)
                if true_distance == UNREACHABLE:
                    continue
                assert oracle.might_reach_within(s, t, true_distance), (s, t)
                checked += 1
        assert checked > 10

    def test_filter_skips_provably_empty_queries(self):
        # Two long chains joined only at the far end: with landmarks at the
        # junction the lower bound rules out small hop constraints.
        builder = GraphBuilder()
        for i in range(10):
            builder.add_edge(f"a{i}", f"a{i+1}")
        graph = builder.build()
        oracle = LandmarkOracle(graph, [graph.to_internal("a0"), graph.to_internal("a10")])
        s, t = graph.to_internal("a0"), graph.to_internal("a10")
        assert not oracle.might_reach_within(s, t, 4)
        assert oracle.might_reach_within(s, t, 10)


@st.composite
def oracle_case(draw):
    num_vertices = draw(st.integers(min_value=2, max_value=10))
    possible_edges = [
        (u, v) for u in range(num_vertices) for v in range(num_vertices) if u != v
    ]
    edges = draw(
        st.lists(st.sampled_from(possible_edges), min_size=1, max_size=30, unique=True)
    )
    builder = GraphBuilder()
    for v in range(num_vertices):
        builder.add_vertex(v)
    builder.add_edges(edges)
    graph = builder.build()
    source = draw(st.integers(min_value=0, max_value=num_vertices - 1))
    target = draw(st.integers(min_value=0, max_value=num_vertices - 1))
    num_landmarks = draw(st.integers(min_value=1, max_value=3))
    return graph, source, target, num_landmarks


@given(case=oracle_case())
@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_bounds_bracket_the_true_distance(case):
    """Property: lower_bound <= d(s, t) <= upper_bound whenever d is finite."""
    graph, source, target, num_landmarks = case
    oracle = LandmarkOracle.build(graph, num_landmarks=num_landmarks)
    true_distance = distance(graph, source, target)
    lower = oracle.lower_bound(source, target)
    upper = oracle.upper_bound(source, target)
    if true_distance != UNREACHABLE:
        assert lower <= true_distance
        if upper is not None:
            assert upper >= true_distance
        assert oracle.might_reach_within(source, target, true_distance)
    if upper is not None:
        assert lower <= upper
