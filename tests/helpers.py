"""Shared test helpers: reference implementations and example graphs.

The reference enumerator below is a deliberately naive brute force used as
the ground truth every algorithm is compared against.  It follows the
problem statement directly (simple paths from ``s`` to ``t`` with at most
``k`` edges) without any pruning, so its correctness is easy to audit.
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

from repro.graph.builder import GraphBuilder
from repro.graph.digraph import DiGraph

Path = Tuple[int, ...]

#: Edges of the example graph of Figure 1 in the paper (external string ids).
PAPER_FIGURE1_EDGES = [
    ("s", "v0"),
    ("s", "v1"),
    ("s", "v3"),
    ("v0", "v1"),
    ("v0", "v6"),
    ("v0", "t"),
    ("v1", "v2"),
    ("v1", "v3"),
    ("v2", "v0"),
    ("v2", "t"),
    ("v3", "v4"),
    ("v4", "v5"),
    ("v5", "v2"),
    ("v5", "t"),
    ("v5", "v7"),
    ("v6", "v0"),
    ("v7", "v3"),
]

#: Graph G0 of Figure 5a: two disjoint 4-hop branches plus parallel lanes —
#: every walk within 4 hops is a path.
PAPER_FIGURE5_G0_EDGES = [
    ("s", "v0"),
    ("s", "v1"),
    ("v0", "v2"),
    ("v0", "v3"),
    ("v1", "v2"),
    ("v1", "v3"),
    ("v2", "v4"),
    ("v2", "v5"),
    ("v3", "v4"),
    ("v3", "v5"),
    ("v4", "t"),
    ("v5", "t"),
]

#: Graph in the spirit of Figure 5b: a single short path plus a 2-cycle, so
#: within k = 4 hops there are more walks than paths and the index DFS hits
#: dead ends (invalid partial results).
PAPER_FIGURE5_G1_EDGES = [
    ("s", "v0"),
    ("v0", "t"),
    ("v0", "v1"),
    ("v1", "v0"),
]


def build_graph(edges: Sequence[Tuple[object, object]]) -> DiGraph:
    """Build a graph from external-id edge pairs."""
    builder = GraphBuilder()
    builder.add_edges(edges)
    return builder.build()


def paper_figure1_graph() -> DiGraph:
    """The running-example graph of the paper (Figure 1a)."""
    return build_graph(PAPER_FIGURE1_EDGES)


def brute_force_paths(graph: DiGraph, source: int, target: int, k: int) -> Set[Path]:
    """All simple paths from ``source`` to ``target`` with at most ``k`` edges.

    Unpruned backtracking over the raw adjacency lists; exponential but fine
    for the small graphs used in tests.
    """
    results: Set[Path] = set()

    def recurse(path: List[int]) -> None:
        v = path[-1]
        if v == target:
            results.add(tuple(path))
            return
        if len(path) - 1 == k:
            return
        for w in graph.neighbors(v):
            w = int(w)
            if w not in path:
                path.append(w)
                recurse(path)
                path.pop()

    recurse([source])
    return results


def brute_force_walks(graph: DiGraph, source: int, target: int, k: int) -> Set[Path]:
    """All walks from ``source`` to ``target`` with at most ``k`` edges.

    Walks follow Definition 2.1: interior vertices may repeat but must not be
    ``source`` or ``target``.  Used to validate the walk-based complexity
    bounds and the join model's padding semantics.
    """
    results: Set[Path] = set()

    def recurse(path: List[int]) -> None:
        v = path[-1]
        if v == target and len(path) > 1:
            results.add(tuple(path))
            return
        if len(path) - 1 == k:
            return
        for w in graph.neighbors(v):
            w = int(w)
            if w == source:
                continue
            path.append(w)
            recurse(path)
            path.pop()

    recurse([source])
    return results


def assert_same_paths(actual, expected: Set[Path], *, context: str = "") -> None:
    """Assert two path collections are equal with a readable failure message."""
    actual_set = set(tuple(p) for p in actual)
    missing = expected - actual_set
    extra = actual_set - expected
    assert not missing and not extra, (
        f"{context} path mismatch: missing={sorted(missing)[:5]} extra={sorted(extra)[:5]} "
        f"(|expected|={len(expected)}, |actual|={len(actual_set)})"
    )
