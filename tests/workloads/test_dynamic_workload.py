"""Unit tests for the dynamic-graph workload (Figure 8 setup)."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.graph.generators import erdos_renyi
from repro.workloads.dynamic import build_dynamic_workload


@pytest.fixture(scope="module")
def base_graph():
    return erdos_renyi(120, 5.0, seed=13)


class TestConstruction:
    def test_holds_out_requested_fraction(self, base_graph):
        workload = build_dynamic_workload(base_graph, update_fraction=0.10, seed=1)
        expected_updates = round(0.10 * base_graph.num_edges)
        assert len(workload) == expected_updates
        assert workload.initial_graph.num_edges == base_graph.num_edges - expected_updates

    def test_initial_graph_keeps_all_vertices(self, base_graph):
        workload = build_dynamic_workload(base_graph, seed=2)
        assert workload.initial_graph.num_vertices == base_graph.num_vertices

    def test_updates_are_edges_of_the_original_graph(self, base_graph):
        workload = build_dynamic_workload(base_graph, seed=3)
        for u, v in workload.updates:
            assert base_graph.has_edge(u, v)
            assert not workload.initial_graph.has_edge(u, v)

    def test_max_updates_caps_the_stream(self, base_graph):
        workload = build_dynamic_workload(base_graph, seed=4, max_updates=7)
        assert len(workload) == 7

    def test_deterministic_for_seed(self, base_graph):
        first = build_dynamic_workload(base_graph, seed=5)
        second = build_dynamic_workload(base_graph, seed=5)
        assert first.updates == second.updates

    def test_invalid_fraction(self, base_graph):
        with pytest.raises(WorkloadError):
            build_dynamic_workload(base_graph, update_fraction=0.0)

    def test_tiny_graph_rejected(self):
        from repro.graph.builder import from_edges

        with pytest.raises(WorkloadError):
            build_dynamic_workload(from_edges([(0, 1), (1, 2)]))


class TestReplay:
    def test_replay_applies_one_edge_per_step(self, base_graph):
        workload = build_dynamic_workload(base_graph, seed=6, max_updates=5, k=5)
        previous_edges = workload.initial_graph.num_edges
        seen_queries = 0
        for snapshot, (u, v), query in workload.replay():
            assert snapshot.num_edges == previous_edges + 1
            previous_edges = snapshot.num_edges
            assert snapshot.has_edge(snapshot.to_internal(u), snapshot.to_internal(v))
            if query is not None:
                seen_queries += 1
                # The cycle query runs from the head of the new edge back to
                # its tail with one hop less than k.
                assert query.k == workload.k - 1
                assert query.source == snapshot.to_internal(v)
                assert query.target == snapshot.to_internal(u)
        assert seen_queries == 5

    def test_replay_finds_cycles_closed_by_updates(self, base_graph):
        """End to end: the per-update query enumerates the cycles the edge closes."""
        from repro.api import Database

        workload = build_dynamic_workload(base_graph, seed=7, max_updates=10, k=4)
        for snapshot, (u, v), query in workload.replay():
            if query is None:
                continue
            with Database(snapshot) as database:
                paths = database.query(query, store_paths=True).paths()[0]
            for path in paths or []:
                # Closing the path with the inserted edge forms a cycle of
                # length <= k through (u, v).
                assert path[0] == snapshot.to_internal(v)
                assert path[-1] == snapshot.to_internal(u)
                assert len(path) <= workload.k

    def test_replay_queries_are_facade_specs(self, base_graph):
        from repro.api import QuerySpec

        workload = build_dynamic_workload(base_graph, seed=8, max_updates=3, k=5)
        for _snapshot, _edge, query in workload.replay():
            assert query is None or isinstance(query, QuerySpec)
