"""Unit tests for the synthetic dataset registry."""

from __future__ import annotations

import pytest

from repro.errors import DatasetError
from repro.graph.digraph import DiGraph
from repro.graph.properties import summarize
from repro.workloads.datasets import (
    DEFAULT_REPRESENTATIVES,
    dataset_names,
    dataset_spec,
    load_dataset,
    registry,
)


class TestRegistry:
    def test_fifteen_datasets_registered(self):
        assert len(registry()) == 15

    def test_paper_short_names_present(self):
        expected = {"up", "db", "gg", "st", "tw", "bk", "tr", "ep", "uk", "wt", "sl", "lj",
                    "da", "ye", "tm"}
        assert set(dataset_names()) == expected

    def test_representatives_are_registered(self):
        for name in DEFAULT_REPRESENTATIVES:
            assert name in registry()

    def test_scalability_graph_excluded_on_request(self):
        names = dataset_names(include_scalability=False)
        assert "tm" not in names
        assert len(names) == 14

    def test_specs_carry_paper_properties(self):
        spec = dataset_spec("ep")
        assert spec.full_name == "Soc-Epinions1"
        assert spec.category == "Social"
        assert spec.paper_vertices == 75_000
        assert spec.paper_avg_degree == pytest.approx(13.4)

    def test_unknown_dataset_raises(self):
        with pytest.raises(DatasetError):
            load_dataset("does-not-exist")
        with pytest.raises(DatasetError):
            dataset_spec("does-not-exist")


class TestLoading:
    def test_load_returns_digraph(self):
        graph = load_dataset("gg")
        assert isinstance(graph, DiGraph)
        assert graph.num_vertices > 0
        assert graph.num_edges > 0

    def test_cache_returns_same_object(self):
        assert load_dataset("gg") is load_dataset("gg")

    def test_cache_bypass_builds_fresh_object(self):
        cached = load_dataset("ep")
        fresh = load_dataset("ep", use_cache=False)
        assert cached is not fresh
        assert set(cached.edges()) == set(fresh.edges())

    def test_determinism_across_builds(self):
        first = load_dataset("tr", use_cache=False)
        second = load_dataset("tr", use_cache=False)
        assert set(first.edges()) == set(second.edges())

    @pytest.mark.parametrize("name", ["up", "gg", "ep", "ye", "da"])
    def test_average_degree_tracks_paper_ordering(self, name):
        """Dense paper datasets stay denser than sparse ones after scaling."""
        summary = summarize(load_dataset(name))
        assert summary.num_vertices >= 200
        assert summary.avg_degree > 1.0

    def test_hard_datasets_are_denser_than_easy_ones(self):
        easy = summarize(load_dataset("tw")).avg_degree
        hard = summarize(load_dataset("ye")).avg_degree
        assert hard > easy
