"""Unit tests for query-set generation (Section 7.1)."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.graph.generators import chain_graph, power_law_graph
from repro.graph.traversal import UNREACHABLE, distance
from repro.workloads.queries import (
    QuerySetting,
    generate_all_settings,
    generate_query_set,
    generate_target_centric_set,
    poisson_arrival_times,
    split_by_degree,
)


@pytest.fixture(scope="module")
def workload_graph():
    return power_law_graph(300, 6.0, exponent=2.0, seed=3)


class TestDegreeSplit:
    def test_split_sizes(self, workload_graph):
        high, low = split_by_degree(workload_graph, top_fraction=0.10)
        assert len(high) == 30
        assert len(high) + len(low) == workload_graph.num_vertices

    def test_high_vertices_have_larger_degrees(self, workload_graph):
        high, low = split_by_degree(workload_graph)
        degrees = workload_graph.out_degrees() + workload_graph.in_degrees()
        assert min(degrees[v] for v in high) >= max(0, min(degrees[v] for v in low))
        assert degrees[high].mean() > degrees[low].mean()

    def test_split_is_deterministic(self, workload_graph):
        first = split_by_degree(workload_graph)
        second = split_by_degree(workload_graph)
        assert list(first[0]) == list(second[0])

    def test_invalid_fraction(self, workload_graph):
        with pytest.raises(WorkloadError):
            split_by_degree(workload_graph, top_fraction=0.0)
        with pytest.raises(WorkloadError):
            split_by_degree(workload_graph, top_fraction=1.5)


class TestQueryGeneration:
    def test_requested_count_generated(self, workload_graph):
        workload = generate_query_set(workload_graph, count=25, k=6, seed=1)
        assert len(workload) == 25
        assert workload.k == 6

    def test_endpoints_satisfy_distance_constraint(self, workload_graph):
        workload = generate_query_set(workload_graph, count=15, k=6, seed=2, max_distance=3)
        for query in workload:
            d = distance(workload_graph, query.source, query.target, cutoff=3)
            assert d != UNREACHABLE and d <= 3

    def test_endpoints_respect_setting(self, workload_graph):
        high, low = split_by_degree(workload_graph)
        high_set, low_set = set(int(v) for v in high), set(int(v) for v in low)
        workload = generate_query_set(
            workload_graph, count=10, k=4, setting=QuerySetting.HIGH_LOW, seed=3
        )
        for query in workload:
            assert query.source in high_set
            assert query.target in low_set

    def test_queries_are_unique_pairs(self, workload_graph):
        workload = generate_query_set(workload_graph, count=30, k=4, seed=4)
        pairs = [(q.source, q.target) for q in workload]
        assert len(set(pairs)) == len(pairs)

    def test_deterministic_for_seed(self, workload_graph):
        first = generate_query_set(workload_graph, count=10, k=4, seed=5)
        second = generate_query_set(workload_graph, count=10, k=4, seed=5)
        assert [(q.source, q.target) for q in first] == [(q.source, q.target) for q in second]

    def test_impossible_workload_raises(self):
        graph = chain_graph(50)  # far too sparse for 100 close high-degree pairs
        with pytest.raises(WorkloadError):
            generate_query_set(graph, count=100, k=4, seed=6, max_attempts_factor=5)

    def test_invalid_count(self, workload_graph):
        with pytest.raises(WorkloadError):
            generate_query_set(workload_graph, count=0, k=4)

    def test_all_four_settings(self, workload_graph):
        workloads = generate_all_settings(workload_graph, count=5, k=4, seed=7)
        assert len(workloads) == 4
        assert {w.setting for w in workloads} == set(QuerySetting)


class TestWorkloadHelpers:
    def test_with_k_rescopes_every_query(self, workload_graph):
        workload = generate_query_set(workload_graph, count=8, k=4, seed=8)
        rescoped = workload.with_k(7)
        assert rescoped.k == 7
        assert all(q.k == 7 for q in rescoped)
        assert [(q.source, q.target) for q in rescoped] == [
            (q.source, q.target) for q in workload
        ]

    def test_subset(self, workload_graph):
        workload = generate_query_set(workload_graph, count=8, k=4, seed=9)
        subset = workload.subset(3)
        assert len(subset) == 3
        assert subset.queries == workload.queries[:3]

    def test_setting_flags(self):
        assert QuerySetting.HIGH_HIGH.source_high and QuerySetting.HIGH_HIGH.target_high
        assert QuerySetting.LOW_LOW.source_high is False
        assert QuerySetting.HIGH_LOW.target_high is False
        assert QuerySetting.LOW_HIGH.target_high is True


class TestTargetCentricSet:
    def test_targets_rotate_through_small_pool(self, workload_graph):
        workload = generate_target_centric_set(
            workload_graph, count=12, k=4, num_targets=3, seed=1
        )
        assert len(workload) == 12
        unique = workload.unique_targets()
        assert len(unique) <= 3
        assert len(unique) < len(workload)

    def test_distance_guarantee_holds(self, workload_graph):
        workload = generate_target_centric_set(
            workload_graph, count=8, k=5, num_targets=2, seed=2
        )
        for query in workload:
            d = distance(workload_graph, query.source, query.target, cutoff=3)
            assert d != UNREACHABLE and d <= 3

    def test_endpoint_pairs_are_unique(self, workload_graph):
        workload = generate_target_centric_set(
            workload_graph, count=10, k=4, num_targets=2, seed=4
        )
        pairs = [(q.source, q.target) for q in workload]
        assert len(set(pairs)) == len(pairs)

    def test_rejects_bad_arguments(self, workload_graph):
        with pytest.raises(WorkloadError):
            generate_target_centric_set(workload_graph, count=0, k=4)
        with pytest.raises(WorkloadError):
            generate_target_centric_set(workload_graph, count=4, k=4, num_targets=0)

    def test_unique_targets_preserves_first_appearance_order(self, workload_graph):
        workload = generate_target_centric_set(
            workload_graph, count=9, k=4, num_targets=3, seed=6
        )
        unique = workload.unique_targets()
        seen = []
        for query in workload:
            if query.target not in seen:
                seen.append(query.target)
        assert unique == seen


class TestPoissonArrivals:
    def test_deterministic_for_a_seed(self):
        first = poisson_arrival_times(50, 100.0, seed=7)
        second = poisson_arrival_times(50, 100.0, seed=7)
        assert (first == second).all()
        different = poisson_arrival_times(50, 100.0, seed=8)
        assert not (first == different).all()

    def test_strictly_increasing_and_positive(self):
        arrivals = poisson_arrival_times(200, 50.0, seed=1)
        assert arrivals[0] > 0.0  # no thundering herd at t=0
        assert (arrivals[1:] > arrivals[:-1]).all()

    def test_mean_gap_matches_rate(self):
        rate = 250.0
        arrivals = poisson_arrival_times(20_000, rate, seed=3)
        mean_gap = arrivals[-1] / len(arrivals)
        assert mean_gap == pytest.approx(1.0 / rate, rel=0.05)

    def test_rejects_bad_arguments(self):
        with pytest.raises(WorkloadError):
            poisson_arrival_times(0, 10.0)
        with pytest.raises(WorkloadError):
            poisson_arrival_times(10, 0.0)
        with pytest.raises(WorkloadError):
            poisson_arrival_times(10, -1.0)
