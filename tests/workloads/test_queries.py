"""Unit tests for query-set generation (Section 7.1)."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.graph.generators import chain_graph, power_law_graph
from repro.graph.traversal import UNREACHABLE, distance
from repro.workloads.queries import (
    QuerySetting,
    consistent_hash,
    partition_by_shard,
    generate_all_settings,
    generate_query_set,
    generate_target_centric_set,
    poisson_arrival_times,
    split_by_degree,
)


@pytest.fixture(scope="module")
def workload_graph():
    return power_law_graph(300, 6.0, exponent=2.0, seed=3)


class TestDegreeSplit:
    def test_split_sizes(self, workload_graph):
        high, low = split_by_degree(workload_graph, top_fraction=0.10)
        assert len(high) == 30
        assert len(high) + len(low) == workload_graph.num_vertices

    def test_high_vertices_have_larger_degrees(self, workload_graph):
        high, low = split_by_degree(workload_graph)
        degrees = workload_graph.out_degrees() + workload_graph.in_degrees()
        assert min(degrees[v] for v in high) >= max(0, min(degrees[v] for v in low))
        assert degrees[high].mean() > degrees[low].mean()

    def test_split_is_deterministic(self, workload_graph):
        first = split_by_degree(workload_graph)
        second = split_by_degree(workload_graph)
        assert list(first[0]) == list(second[0])

    def test_invalid_fraction(self, workload_graph):
        with pytest.raises(WorkloadError):
            split_by_degree(workload_graph, top_fraction=0.0)
        with pytest.raises(WorkloadError):
            split_by_degree(workload_graph, top_fraction=1.5)


class TestQueryGeneration:
    def test_requested_count_generated(self, workload_graph):
        workload = generate_query_set(workload_graph, count=25, k=6, seed=1)
        assert len(workload) == 25
        assert workload.k == 6

    def test_endpoints_satisfy_distance_constraint(self, workload_graph):
        workload = generate_query_set(workload_graph, count=15, k=6, seed=2, max_distance=3)
        for query in workload:
            d = distance(workload_graph, query.source, query.target, cutoff=3)
            assert d != UNREACHABLE and d <= 3

    def test_endpoints_respect_setting(self, workload_graph):
        high, low = split_by_degree(workload_graph)
        high_set, low_set = set(int(v) for v in high), set(int(v) for v in low)
        workload = generate_query_set(
            workload_graph, count=10, k=4, setting=QuerySetting.HIGH_LOW, seed=3
        )
        for query in workload:
            assert query.source in high_set
            assert query.target in low_set

    def test_queries_are_unique_pairs(self, workload_graph):
        workload = generate_query_set(workload_graph, count=30, k=4, seed=4)
        pairs = [(q.source, q.target) for q in workload]
        assert len(set(pairs)) == len(pairs)

    def test_deterministic_for_seed(self, workload_graph):
        first = generate_query_set(workload_graph, count=10, k=4, seed=5)
        second = generate_query_set(workload_graph, count=10, k=4, seed=5)
        assert [(q.source, q.target) for q in first] == [(q.source, q.target) for q in second]

    def test_impossible_workload_raises(self):
        graph = chain_graph(50)  # far too sparse for 100 close high-degree pairs
        with pytest.raises(WorkloadError):
            generate_query_set(graph, count=100, k=4, seed=6, max_attempts_factor=5)

    def test_invalid_count(self, workload_graph):
        with pytest.raises(WorkloadError):
            generate_query_set(workload_graph, count=0, k=4)

    def test_all_four_settings(self, workload_graph):
        workloads = generate_all_settings(workload_graph, count=5, k=4, seed=7)
        assert len(workloads) == 4
        assert {w.setting for w in workloads} == set(QuerySetting)


class TestWorkloadHelpers:
    def test_with_k_rescopes_every_query(self, workload_graph):
        workload = generate_query_set(workload_graph, count=8, k=4, seed=8)
        rescoped = workload.with_k(7)
        assert rescoped.k == 7
        assert all(q.k == 7 for q in rescoped)
        assert [(q.source, q.target) for q in rescoped] == [
            (q.source, q.target) for q in workload
        ]

    def test_subset(self, workload_graph):
        workload = generate_query_set(workload_graph, count=8, k=4, seed=9)
        subset = workload.subset(3)
        assert len(subset) == 3
        assert subset.queries == workload.queries[:3]

    def test_setting_flags(self):
        assert QuerySetting.HIGH_HIGH.source_high and QuerySetting.HIGH_HIGH.target_high
        assert QuerySetting.LOW_LOW.source_high is False
        assert QuerySetting.HIGH_LOW.target_high is False
        assert QuerySetting.LOW_HIGH.target_high is True


class TestTargetCentricSet:
    def test_targets_rotate_through_small_pool(self, workload_graph):
        workload = generate_target_centric_set(
            workload_graph, count=12, k=4, num_targets=3, seed=1
        )
        assert len(workload) == 12
        unique = workload.unique_targets()
        assert len(unique) <= 3
        assert len(unique) < len(workload)

    def test_distance_guarantee_holds(self, workload_graph):
        workload = generate_target_centric_set(
            workload_graph, count=8, k=5, num_targets=2, seed=2
        )
        for query in workload:
            d = distance(workload_graph, query.source, query.target, cutoff=3)
            assert d != UNREACHABLE and d <= 3

    def test_endpoint_pairs_are_unique(self, workload_graph):
        workload = generate_target_centric_set(
            workload_graph, count=10, k=4, num_targets=2, seed=4
        )
        pairs = [(q.source, q.target) for q in workload]
        assert len(set(pairs)) == len(pairs)

    def test_rejects_bad_arguments(self, workload_graph):
        with pytest.raises(WorkloadError):
            generate_target_centric_set(workload_graph, count=0, k=4)
        with pytest.raises(WorkloadError):
            generate_target_centric_set(workload_graph, count=4, k=4, num_targets=0)

    def test_unique_targets_preserves_first_appearance_order(self, workload_graph):
        workload = generate_target_centric_set(
            workload_graph, count=9, k=4, num_targets=3, seed=6
        )
        unique = workload.unique_targets()
        seen = []
        for query in workload:
            if query.target not in seen:
                seen.append(query.target)
        assert unique == seen


class TestPoissonArrivals:
    def test_deterministic_for_a_seed(self):
        first = poisson_arrival_times(50, 100.0, seed=7)
        second = poisson_arrival_times(50, 100.0, seed=7)
        assert (first == second).all()
        different = poisson_arrival_times(50, 100.0, seed=8)
        assert not (first == different).all()

    def test_strictly_increasing_and_positive(self):
        arrivals = poisson_arrival_times(200, 50.0, seed=1)
        assert arrivals[0] > 0.0  # no thundering herd at t=0
        assert (arrivals[1:] > arrivals[:-1]).all()

    def test_mean_gap_matches_rate(self):
        rate = 250.0
        arrivals = poisson_arrival_times(20_000, rate, seed=3)
        mean_gap = arrivals[-1] / len(arrivals)
        assert mean_gap == pytest.approx(1.0 / rate, rel=0.05)

    def test_rejects_bad_arguments(self):
        with pytest.raises(WorkloadError):
            poisson_arrival_times(0, 10.0)
        with pytest.raises(WorkloadError):
            poisson_arrival_times(10, 0.0)
        with pytest.raises(WorkloadError):
            poisson_arrival_times(10, -1.0)


class TestConsistentHash:
    """The routing contract: stable, deterministic, minimally-remapping."""

    def test_same_target_same_shard_within_a_run(self):
        for num_shards in (1, 2, 3, 8):
            first = [consistent_hash(t, num_shards) for t in range(200)]
            second = [consistent_hash(t, num_shards) for t in range(200)]
            assert first == second
            assert all(0 <= shard < num_shards for shard in first)

    def test_pinned_values_never_change(self):
        # Changing these values silently would strand every shard's warm
        # distance cache on a fleet restart — they are part of the wire-level
        # contract, like a serialisation format.
        assert [consistent_hash(t, 4) for t in range(12)] == [
            1, 1, 1, 0, 0, 2, 2, 0, 1, 3, 0, 0,
        ]
        assert [consistent_hash(str(t), 4) for t in range(12)] == [
            2, 2, 2, 2, 3, 0, 1, 0, 0, 0, 1, 3,
        ]

    def test_stable_across_processes(self):
        # PYTHONHASHSEED randomises str.__hash__ per process; the shard
        # mapping must not care.  Compute in a subprocess with a forced
        # different seed and compare.
        import json
        import subprocess
        import sys

        script = (
            "import json, sys\n"
            "from repro.workloads.queries import consistent_hash\n"
            "targets = list(range(64)) + [str(t) for t in range(64)] + ['alice', 'bob']\n"
            "print(json.dumps([consistent_hash(t, 5) for t in targets]))\n"
        )
        env = {"PYTHONHASHSEED": "12345", "PYTHONPATH": ":".join(sys.path)}
        output = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True, env=env,
            check=True,
        ).stdout
        targets = list(range(64)) + [str(t) for t in range(64)] + ["alice", "bob"]
        assert json.loads(output) == [consistent_hash(t, 5) for t in targets]

    def test_int_and_str_spellings_hash_independently(self):
        # '5' (external id) and 5 (internal id) are different vertices.
        assignments_int = [consistent_hash(t, 7) for t in range(100)]
        assignments_str = [consistent_hash(str(t), 7) for t in range(100)]
        assert assignments_int != assignments_str

    def test_rendezvous_minimal_remapping(self):
        # Growing 3 -> 4 shards moves only the targets the new shard wins:
        # roughly 1/4 of them, and every move lands on the new shard.
        before = [consistent_hash(t, 3) for t in range(1000)]
        after = [consistent_hash(t, 4) for t in range(1000)]
        moved = [(a, b) for a, b in zip(before, after) if a != b]
        assert 0 < len(moved) < 400
        assert all(b == 3 for _, b in moved), "a target moved between old shards"

    def test_distribution_is_roughly_balanced(self):
        counts = [0] * 8
        for target in range(4000):
            counts[consistent_hash(target, 8)] += 1
        assert min(counts) > 300  # perfect balance would be 500 each

    def test_rejects_nonpositive_shard_count(self):
        with pytest.raises(WorkloadError):
            consistent_hash(0, 0)
        with pytest.raises(WorkloadError):
            consistent_hash(0, -2)


class TestPartitionByShard:
    def test_partitions_cover_the_workload_with_positions(self):
        triples = [[i, 1000 + i, 4] for i in range(40)]
        parts = partition_by_shard(triples, 4)
        assert len(parts) == 4
        flattened = sorted(
            (position, tuple(triple)) for part in parts for position, triple in part
        )
        assert flattened == [(i, tuple(t)) for i, t in enumerate(triples)]
        for shard, part in enumerate(parts):
            for _, triple in part:
                assert consistent_hash(triple[1], 4) == shard

    def test_empty_shards_are_kept(self):
        parts = partition_by_shard([[0, 5, 3]], 4)
        assert len(parts) == 4
        assert sum(len(part) for part in parts) == 1
