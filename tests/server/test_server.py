"""End-to-end tests: TCP server + client over a real socket."""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.core.algorithm import Algorithm
from repro.core.engine import QuerySession
from repro.core.listener import RunConfig
from repro.core.result import EnumerationStats, QueryResult
from repro.graph.builder import GraphBuilder
from repro.graph.generators import erdos_renyi
from repro.server.client import QueryClient, run_queries
from repro.server.server import QueryServer
from repro.server.service import QueryService
from repro.workloads.queries import generate_target_centric_set


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(150, 4.0, seed=11)


@pytest.fixture(scope="module")
def queries(graph):
    workload = generate_target_centric_set(graph, count=10, k=4, num_targets=3, seed=5)
    return list(workload)


class _SlowAlgorithm(Algorithm):
    name = "SLOW"

    def __init__(self, delay: float = 0.04) -> None:
        self.delay = delay

    def run(self, graph, query, config=None):
        time.sleep(self.delay)
        return QueryResult(
            source=query.source, target=query.target, k=query.k,
            algorithm=self.name, count=1, paths=[(query.source, query.target)],
            stats=EnumerationStats(),
        )


def _serve(graph, scenario, **service_kwargs):
    """Run ``scenario(client, server)`` against a freshly booted server."""

    async def runner():
        service = QueryService(graph, **service_kwargs)
        server = QueryServer(service, port=0)
        await server.start()
        try:
            client = await QueryClient.connect(port=server.port)
            async with client:
                return await scenario(client, server)
        finally:
            await server.close()
            await service.close()

    return asyncio.run(runner())


class TestRoundTrip:
    def test_results_byte_identical_to_sequential_session(self, graph, queries):
        session = QuerySession(graph)
        expected = [session.run(q, RunConfig(store_paths=True)) for q in queries]

        async def scenario(client, server):
            return await client.run([[q.source, q.target, q.k] for q in queries])

        outcome = _serve(graph, scenario, threads=2)
        assert outcome.status == "done"
        assert outcome.info["queries"] == len(queries)
        for exp, act in zip(expected, outcome.results):
            assert (act.source, act.target, act.k) == (exp.source, exp.target, exp.k)
            assert act.count == exp.count
            # Same paths, same order — the wire format must not reorder.
            assert act.paths == exp.paths
            assert act.bfs_cache_hit == exp.stats.bfs_cache_hit

    def test_path_frames_reassemble_identically(self, graph, queries):
        session = QuerySession(graph)
        expected = [session.run(q, RunConfig(store_paths=True)) for q in queries]

        async def scenario(client, server):
            return await client.run(
                [[q.source, q.target, q.k] for q in queries], frames="path"
            )

        outcome = _serve(graph, scenario, threads=2)
        assert outcome.status == "done"
        for exp, act in zip(expected, outcome.results):
            assert act.paths == exp.paths

    def test_frames_stream_before_batch_completion(self, graph):
        queries = [[i, 100 + i, 2] for i in range(6)]

        async def scenario(client, server):
            job_id = await client.submit(queries)
            loop = asyncio.get_running_loop()
            started = loop.time()
            arrival_times = []
            async for frame in client.frames(job_id):
                arrival_times.append((frame["type"], loop.time() - started))
            return arrival_times

        arrivals = _serve(graph, scenario, algorithm=_SlowAlgorithm(0.04), threads=1)
        kinds = [kind for kind, _ in arrivals]
        assert kinds[-1] == "done"
        assert kinds.count("result") == len(queries)
        first_result = next(t for kind, t in arrivals if kind == "result")
        done_time = arrivals[-1][1]
        # One worker, 40 ms per query: the first frame arrives while the
        # batch is still enumerating, not with the final blob.
        assert first_result < done_time / 2

    def test_count_only_omits_paths(self, graph, queries):
        async def scenario(client, server):
            return await client.run(
                [[q.source, q.target, q.k] for q in queries[:4]], store_paths=False
            )

        outcome = _serve(graph, scenario, threads=1)
        assert outcome.status == "done"
        assert all(result.paths is None for result in outcome.results)
        assert all(result.count > 0 for result in outcome.results)

    def test_external_ids_translated_both_ways(self):
        builder = GraphBuilder()
        builder.add_edges([("a", "b"), ("b", "c"), ("a", "c")])
        labelled = builder.build()

        async def scenario(client, server):
            return await client.run([["a", "c", 2]], external=True)

        outcome = _serve(labelled, scenario, threads=1)
        assert outcome.status == "done"
        result = outcome.results[0]
        assert (result.source, result.target) == ("a", "c")
        assert sorted(result.paths) == [("a", "b", "c"), ("a", "c")]


class TestProtocolErrors:
    def test_malformed_queries_produce_error_frame(self, graph):
        async def scenario(client, server):
            job_id = await client.submit([[0, 1]])  # missing k
            return [frame async for frame in client.frames(job_id)]

        frames = _serve(graph, scenario, threads=1)
        assert frames[-1]["type"] == "error"
        assert "malformed query" in frames[-1]["error"]

    def test_out_of_range_vertex_rejected(self, graph):
        async def scenario(client, server):
            job_id = await client.submit([[0, graph.num_vertices + 7, 3]])
            return [frame async for frame in client.frames(job_id)]

        frames = _serve(graph, scenario, threads=1)
        assert frames[-1]["type"] == "error"
        assert "out of range" in frames[-1]["error"]

    def test_duplicate_in_flight_job_id_rejected(self, graph):
        queries = [[i, 100 + i, 2] for i in range(10)]

        async def scenario(client, server):
            from repro.server.protocol import write_frame

            # Two raw submits sharing one id: the second must be rejected
            # (an overwritten jobs-map entry would orphan the first job).
            await write_frame(
                client._writer,
                {"type": "submit", "id": "dup", "queries": queries, "opts": {}},
            )
            client._jobs["dup"] = asyncio.Queue()
            await write_frame(
                client._writer,
                {"type": "submit", "id": "dup", "queries": queries, "opts": {}},
            )
            queue = client._jobs["dup"]
            frames = []
            while True:
                frame = await asyncio.wait_for(queue.get(), timeout=15)
                frames.append(frame)
                if frame["type"] == "done":
                    return frames

        frames = _serve(graph, scenario, algorithm=_SlowAlgorithm(0.02), threads=1)
        rejections = [f for f in frames if f["type"] == "error"]
        assert rejections and "already in flight" in rejections[0]["error"]
        # The first job still completes normally.
        assert frames[-1]["type"] == "done"

    def test_unknown_message_type_answered_not_fatal(self, graph):
        async def scenario(client, server):
            from repro.server.protocol import write_frame

            await write_frame(client._writer, {"type": "frobnicate"})
            frame = await client._control.get()
            assert frame["type"] == "error"
            # The connection survives: a ping still round-trips.
            assert await client.ping()
            return True

        assert _serve(graph, scenario, threads=1)


class TestCancelAndStats:
    def test_cancel_over_the_wire(self, graph):
        queries = [[i, 100 + i, 2] for i in range(20)]

        async def scenario(client, server):
            job_id = await client.submit(queries)
            frames = []
            async for frame in client.frames(job_id):
                frames.append(frame)
                if frame["type"] == "result" and len(frames) == 2:
                    await client.cancel(job_id)
            return frames

        frames = _serve(graph, scenario, algorithm=_SlowAlgorithm(0.03), threads=1)
        assert frames[-1]["type"] == "cancelled"
        results = sum(1 for frame in frames if frame["type"] == "result")
        assert 0 < results < len(queries)
        assert frames[-1]["delivered"] == results

    def test_stats_roundtrip(self, graph, queries):
        async def scenario(client, server):
            await client.run([[q.source, q.target, q.k] for q in queries[:5]])
            return await client.stats()

        stats = _serve(graph, scenario, threads=2)
        assert stats["jobs_completed"] == 1
        assert stats["queries_completed"] == 5
        assert stats["backend"] == "thread"
        assert stats["graph_vertices"] == graph.num_vertices

    def test_disconnect_cancels_running_jobs(self, graph):
        queries = [[i, 100 + i, 2] for i in range(30)]

        async def runner():
            service = QueryService(graph, algorithm=_SlowAlgorithm(0.03), threads=1)
            server = QueryServer(service, port=0)
            await server.start()
            try:
                client = await QueryClient.connect(port=server.port)
                await client.submit(queries)
                await asyncio.sleep(0.1)
                await client.close()  # vanish mid-job
                deadline = asyncio.get_running_loop().time() + 5.0
                while service.stats()["jobs_active"]:
                    if asyncio.get_running_loop().time() > deadline:
                        raise AssertionError("job survived its client")
                    await asyncio.sleep(0.05)
                return service.stats()
            finally:
                await server.close()
                await service.close()

        stats = asyncio.run(runner())
        assert stats["jobs_cancelled"] == 1


class TestShutdown:
    def test_close_with_idle_client_does_not_hang(self, graph):
        # Since Python 3.12.1 Server.wait_closed() waits for every
        # connection handler; an idle client must not stall shutdown.
        async def runner():
            service = QueryService(graph, threads=1)
            server = QueryServer(service, port=0)
            await server.start()
            client = await QueryClient.connect(port=server.port)
            try:
                assert await client.ping()
                await asyncio.wait_for(server.close(), timeout=10.0)
            finally:
                await client.close()
                await service.close()
            return True

        assert asyncio.run(runner())

    def test_close_with_job_in_flight_cancels_it(self, graph):
        queries = [[i, 100 + i, 2] for i in range(30)]

        async def runner():
            service = QueryService(graph, algorithm=_SlowAlgorithm(0.03), threads=1)
            server = QueryServer(service, port=0)
            await server.start()
            client = await QueryClient.connect(port=server.port)
            try:
                await client.submit(queries)
                await asyncio.sleep(0.1)
                await asyncio.wait_for(server.close(), timeout=10.0)
                await service.close()
                return service.stats()
            finally:
                await client.close()

        stats = asyncio.run(runner())
        assert stats["jobs_active"] == 0


class TestSyncHelpers:
    def test_run_queries_helper(self, graph, queries):
        async def runner():
            service = QueryService(graph, threads=1)
            server = QueryServer(service, port=0)
            await server.start()
            try:
                workload = [[q.source, q.target, q.k] for q in queries[:3]]
                return await asyncio.to_thread(
                    run_queries, workload, port=server.port
                )
            finally:
                await server.close()
                await service.close()

        outcome = asyncio.run(runner())
        assert outcome.status == "done"
        assert len(outcome.results) == 3


class TestProtocolIdentity:
    """Protocol v2: identity fields on pong/stats, RTT, negotiation."""

    def test_ping_returns_identity_and_rtt(self, graph):
        from repro._version import __version__
        from repro.server.protocol import PROTOCOL_VERSION

        async def scenario(client, server):
            return await client.ping()

        pong = _serve(graph, scenario, threads=1, shard_id=3)
        assert pong  # still truthy for liveness asserts
        assert pong.protocol == PROTOCOL_VERSION
        assert pong.server_version == __version__
        assert pong.shard_id == 3
        assert 0.0 < pong.rtt_ms < 5_000.0

    def test_stats_carry_shard_identity(self, graph):
        from repro._version import __version__
        from repro.server.protocol import PROTOCOL_VERSION

        async def scenario(client, server):
            return await client.stats()

        stats = _serve(graph, scenario, threads=1, shard_id=7)
        assert stats["shard_id"] == 7
        assert stats["server_version"] == __version__
        assert stats["protocol"] == PROTOCOL_VERSION

    def test_standalone_server_has_no_shard_id(self, graph):
        async def scenario(client, server):
            return (await client.ping()).shard_id, (await client.stats())["shard_id"]

        assert _serve(graph, scenario, threads=1) == (None, None)

    def test_negotiate_against_live_server(self, graph):
        from repro.server.protocol import PROTOCOL_VERSION

        async def scenario(client, server):
            return await client.negotiate()

        assert _serve(graph, scenario, threads=1) == PROTOCOL_VERSION


class TestReconnect:
    def test_dead_endpoint_raises_connection_lost(self, graph):
        import socket

        from repro.errors import ConnectionLost

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            dead_port = probe.getsockname()[1]

        async def runner():
            with pytest.raises(ConnectionLost) as info:
                await QueryClient.connect("127.0.0.1", dead_port)
            return info.value

        error = asyncio.run(runner())
        assert error.port == dead_port
        assert error.attempts == 1
        # The old behaviour leaked raw OSErrors; the typed error still
        # satisfies except-ConnectionError handlers.
        assert isinstance(error, ConnectionError)

    def test_retries_follow_backoff_then_raise(self, graph):
        import socket

        from repro.errors import ConnectionLost
        from repro.server.client import ReconnectPolicy

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            dead_port = probe.getsockname()[1]

        policy = ReconnectPolicy(attempts=3, base_delay=0.01, max_delay=0.02, jitter=0.0)

        async def runner():
            started = asyncio.get_running_loop().time()
            with pytest.raises(ConnectionLost) as info:
                await QueryClient.connect("127.0.0.1", dead_port, policy=policy)
            return info.value, asyncio.get_running_loop().time() - started

        error, elapsed = asyncio.run(runner())
        assert error.attempts == 3
        assert elapsed >= 0.02  # slept between attempts (0.01 + 0.02)

    def test_reconnect_restores_a_working_connection(self, graph):
        async def runner():
            service = QueryService(graph, threads=1)
            server = QueryServer(service, port=0)
            await server.start()
            try:
                client = await QueryClient.connect(port=server.port, retries=2)
                assert client.connected
                # Simulate a dropped connection by closing the transport.
                client._writer.close()
                deadline = asyncio.get_running_loop().time() + 5.0
                while client.connected:
                    if asyncio.get_running_loop().time() > deadline:
                        raise AssertionError("reader loop never noticed the drop")
                    await asyncio.sleep(0.01)
                await client.reconnect()
                assert client.connected
                outcome = await client.run([[0, 100, 3]])
                await client.close()
                return outcome
            finally:
                await server.close()
                await service.close()

        outcome = asyncio.run(runner())
        assert outcome.status == "done"

    def test_reconnect_policy_delay_schedule(self):
        from repro.server.client import ReconnectPolicy

        policy = ReconnectPolicy(attempts=5, base_delay=0.1, max_delay=0.5, jitter=0.0)
        assert [policy.delay(n) for n in (1, 2, 3, 4)] == [0.1, 0.2, 0.4, 0.5]
        jittered = ReconnectPolicy(base_delay=0.1, jitter=0.5)
        samples = {round(jittered.delay(1), 6) for _ in range(20)}
        assert all(0.1 <= delay <= 0.15 for delay in samples)
        assert len(samples) > 1  # actually randomised
