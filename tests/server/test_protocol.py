"""Unit tests for the length-prefixed JSON frame protocol."""

from __future__ import annotations

import asyncio
import struct

import pytest

from repro.server.protocol import (
    MAX_FRAME_BYTES,
    FrameError,
    decode_frame,
    encode_frame,
    read_frame,
)


def _feed(*chunks: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    for chunk in chunks:
        reader.feed_data(chunk)
    reader.feed_eof()
    return reader


class TestEncodeDecode:
    def test_roundtrip(self):
        message = {"type": "submit", "id": "c1", "queries": [[0, 1, 4]], "opts": {}}
        encoded = encode_frame(message)
        length = struct.unpack(">I", encoded[:4])[0]
        assert length == len(encoded) - 4
        assert decode_frame(encoded[4:]) == message

    def test_rejects_non_object_bodies(self):
        with pytest.raises(FrameError):
            decode_frame(b"[1, 2, 3]")

    def test_rejects_undecodable_bodies(self):
        with pytest.raises(FrameError):
            decode_frame(b"{not json")
        with pytest.raises(FrameError):
            decode_frame(b"\xff\xfe")

    def test_rejects_oversized_messages(self):
        huge = {"payload": "x" * (MAX_FRAME_BYTES + 1)}
        with pytest.raises(FrameError):
            encode_frame(huge)


class TestReadFrame:
    def test_reads_consecutive_frames(self):
        first = encode_frame({"type": "ping"})
        second = encode_frame({"type": "stats"})

        async def scenario():
            reader = _feed(first + second)
            assert await read_frame(reader) == {"type": "ping"}
            assert await read_frame(reader) == {"type": "stats"}
            assert await read_frame(reader) is None  # clean EOF

        asyncio.run(scenario())

    def test_handles_arbitrarily_split_chunks(self):
        data = encode_frame({"type": "result", "paths": [[0, 1, 2]] * 50})

        async def scenario():
            reader = asyncio.StreamReader()

            async def feeder():
                for offset in range(0, len(data), 7):
                    reader.feed_data(data[offset : offset + 7])
                    await asyncio.sleep(0)
                reader.feed_eof()

            feed_task = asyncio.ensure_future(feeder())
            frame = await read_frame(reader)
            await feed_task
            assert frame is not None and frame["type"] == "result"

        asyncio.run(scenario())

    def test_truncated_prefix_raises(self):
        async def scenario():
            with pytest.raises(FrameError, match="length prefix"):
                await read_frame(_feed(b"\x00\x00"))

        asyncio.run(scenario())

    def test_truncated_body_raises(self):
        whole = encode_frame({"type": "ping"})

        async def scenario():
            with pytest.raises(FrameError, match="frame body"):
                await read_frame(_feed(whole[:-2]))

        asyncio.run(scenario())

    def test_oversized_length_prefix_rejected_before_allocation(self):
        async def scenario():
            reader = _feed(struct.pack(">I", MAX_FRAME_BYTES + 1))
            with pytest.raises(FrameError, match="exceeds"):
                await read_frame(reader)

        asyncio.run(scenario())


class TestRenderResultPaths:
    def _result(self, paths):
        from repro.core.result import EnumerationStats, QueryResult

        count = 0 if paths is None else len(paths)
        return QueryResult(
            source=0, target=5, k=4, algorithm="PathEnum", count=count,
            paths=paths, stats=EnumerationStats(),
        )

    def test_buffer_backed_result_renders_from_slices(self):
        from repro.core.result import PathBuffer
        from repro.server.protocol import render_result_paths

        buffer = PathBuffer.from_paths([(0, 1, 5), (0, 5)])
        result = self._result(buffer)
        assert render_result_paths(result) == [[0, 1, 5], [0, 5]]

    def test_tuple_backed_result_renders(self):
        from repro.server.protocol import render_result_paths

        result = self._result([(0, 1, 5)])
        assert render_result_paths(result) == [[0, 1, 5]]

    def test_no_paths_renders_none(self):
        from repro.server.protocol import render_result_paths

        assert render_result_paths(self._result(None)) is None

    def test_external_translation(self):
        from repro.core.result import PathBuffer
        from repro.server.protocol import render_result_paths
        from tests.helpers import build_graph

        graph = build_graph([("a", "b"), ("b", "c")])
        a, b, c = (graph.to_internal(v) for v in "abc")
        result = self._result(PathBuffer.from_paths([(a, b, c)]))
        assert render_result_paths(result, graph, external=True) == [["a", "b", "c"]]


class TestProtocolVersioning:
    def test_current_version_window(self):
        from repro.server.protocol import (
            MIN_SUPPORTED_PROTOCOL,
            PROTOCOL_VERSION,
            negotiate_protocol,
        )

        assert MIN_SUPPORTED_PROTOCOL <= PROTOCOL_VERSION
        assert negotiate_protocol(PROTOCOL_VERSION) == PROTOCOL_VERSION
        assert negotiate_protocol(MIN_SUPPORTED_PROTOCOL) == MIN_SUPPORTED_PROTOCOL

    def test_missing_field_is_a_version_one_peer(self):
        from repro.server.protocol import negotiate_protocol

        # Pongs from servers that predate versioning carry no field at all.
        assert negotiate_protocol(None) == 1

    def test_future_and_ancient_versions_are_rejected(self):
        from repro.server.protocol import (
            MIN_SUPPORTED_PROTOCOL,
            PROTOCOL_VERSION,
            ProtocolMismatch,
            negotiate_protocol,
        )

        with pytest.raises(ProtocolMismatch):
            negotiate_protocol(PROTOCOL_VERSION + 1)
        if MIN_SUPPORTED_PROTOCOL > 0:
            with pytest.raises(ProtocolMismatch):
                negotiate_protocol(MIN_SUPPORTED_PROTOCOL - 1)

    def test_mismatch_is_a_frame_error(self):
        from repro.server.protocol import FrameError, ProtocolMismatch

        assert issubclass(ProtocolMismatch, FrameError)
