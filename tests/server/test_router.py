"""End-to-end tests for the distributed shard router.

The failure paths are the point here: a shard dying mid-stream must be
absorbed by its replica with the merged stream unchanged, cancel must fan
out to every shard promptly, and a hedged duplicate's results must be
deduplicated exactly once.
"""

from __future__ import annotations

import asyncio
import json
import socket
import time

import pytest

from repro.core.algorithm import Algorithm
from repro.core.engine import QuerySession
from repro.core.listener import RunConfig
from repro.core.result import EnumerationStats, QueryResult
from repro.errors import ReproError
from repro.graph.generators import erdos_renyi
from repro.server.client import QueryClient, ReconnectPolicy
from repro.server.router import RouterServer, ShardMap, ShardRouter, parse_address
from repro.server.server import QueryServer
from repro.server.service import QueryService
from repro.workloads.queries import generate_target_centric_set


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(150, 4.0, seed=11)


@pytest.fixture(scope="module")
def queries(graph):
    workload = generate_target_centric_set(graph, count=12, k=4, num_targets=5, seed=5)
    return list(workload)


@pytest.fixture(scope="module")
def triples(queries):
    return [[q.source, q.target, q.k] for q in queries]


@pytest.fixture(scope="module")
def expected(graph, queries):
    session = QuerySession(graph)
    return [session.run(q, RunConfig(store_paths=True)) for q in queries]


class _SlowAlgorithm(Algorithm):
    name = "SLOW"

    def __init__(self, delay: float = 0.05) -> None:
        self.delay = delay

    def run(self, graph, query, config=None):
        time.sleep(self.delay)
        return QueryResult(
            source=query.source, target=query.target, k=query.k,
            algorithm=self.name, count=1, paths=[(query.source, query.target)],
            stats=EnumerationStats(),
        )


class _Fleet:
    """In-process shard fleet: ``shards`` lists of (service, server) replicas."""

    def __init__(self):
        self.shards = []

    async def add_shard(self, graph, replicas=1, **service_kwargs):
        entries = []
        shard_id = len(self.shards)
        for _ in range(replicas):
            service = QueryService(graph, shard_id=shard_id, **service_kwargs)
            server = QueryServer(service, port=0)
            await server.start()
            entries.append((service, server))
        self.shards.append(entries)

    def shard_map(self) -> ShardMap:
        return ShardMap.from_entries(
            [
                ",".join(f"127.0.0.1:{server.port}" for _, server in replicas)
                for replicas in self.shards
            ]
        )

    async def close(self):
        for replicas in self.shards:
            for service, server in replicas:
                await server.close()
                await service.close()


def _run(coro):
    return asyncio.run(coro)


def _check_results(outcome_results, expected):
    assert [r.position for r in outcome_results] == list(range(len(expected)))
    for exp, act in zip(expected, outcome_results):
        assert (act.source, act.target, act.k) == (exp.source, exp.target, exp.k)
        assert act.count == exp.count
        assert act.paths == exp.paths


def _free_port() -> int:
    """A port that was just free — dialling it refuses (dead replica stand-in)."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


class TestShardMap:
    def test_from_entries_and_to_dict_round_trip(self):
        shard_map = ShardMap.from_entries(["127.0.0.1:7301,127.0.0.1:7401", "127.0.0.1:7302"])
        assert shard_map.num_shards == 2
        assert shard_map.num_replicas == 3
        assert ShardMap.from_dict(shard_map.to_dict()) == shard_map

    def test_from_file(self, tmp_path):
        payload = {"shards": [{"replicas": ["127.0.0.1:7301"]}, ["127.0.0.1:7302"]]}
        path = tmp_path / "shards.json"
        path.write_text(json.dumps(payload))
        shard_map = ShardMap.from_file(path)
        assert shard_map.shards == ((("127.0.0.1", 7301),), (("127.0.0.1", 7302),))

    def test_rejects_empty_and_malformed(self, tmp_path):
        with pytest.raises(ReproError):
            ShardMap(())
        with pytest.raises(ReproError):
            ShardMap(((),))
        with pytest.raises(ReproError):
            parse_address("no-port-here")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ReproError):
            ShardMap.from_file(bad)

    def test_shard_of_is_stable(self):
        shard_map = ShardMap.from_entries(["h:1", "h:2", "h:3"])
        assignments = [shard_map.shard_of(target) for target in range(50)]
        assert assignments == [shard_map.shard_of(target) for target in range(50)]
        assert set(assignments) == {0, 1, 2}


class TestMergedStream:
    def test_two_shard_merge_matches_sequential_session(self, graph, triples, expected):
        async def scenario():
            fleet = _Fleet()
            try:
                await fleet.add_shard(graph, threads=2)
                await fleet.add_shard(graph, threads=2)
                router = ShardRouter(fleet.shard_map(), hedge=False)
                async with RouterServer(router, port=0) as front:
                    client = await QueryClient.connect(port=front.port)
                    async with client:
                        outcome = await client.run(triples)
                await router.close()
                per_shard = [
                    replicas[0][0].stats()["queries_completed"]
                    for replicas in fleet.shards
                ]
                return outcome, per_shard
            finally:
                await fleet.close()

        outcome, per_shard = _run(scenario())
        assert outcome.status == "done"
        assert outcome.info["queries"] == len(triples)
        _check_results(outcome.results, expected)
        # The workload really was split: every shard served some queries.
        assert all(count > 0 for count in per_shard)
        assert sum(per_shard) == len(triples)

    def test_path_frames_merge_identically(self, graph, triples, expected):
        async def scenario():
            fleet = _Fleet()
            try:
                await fleet.add_shard(graph, threads=2)
                await fleet.add_shard(graph, threads=2)
                router = ShardRouter(fleet.shard_map(), hedge=False)
                async with RouterServer(router, port=0) as front:
                    client = await QueryClient.connect(port=front.port)
                    async with client:
                        return await client.run(triples, frames="path")
            finally:
                await fleet.close()

        outcome = _run(scenario())
        assert outcome.status == "done"
        _check_results(outcome.results, expected)

    def test_router_ping_and_stats(self, graph, triples):
        async def scenario():
            fleet = _Fleet()
            try:
                await fleet.add_shard(graph, threads=2)
                await fleet.add_shard(graph, threads=2)
                router = ShardRouter(fleet.shard_map(), hedge=False)
                async with RouterServer(router, port=0) as front:
                    client = await QueryClient.connect(port=front.port)
                    async with client:
                        pong = await client.ping()
                        await client.run(triples)
                        stats = await client.stats()
                await router.close()
                return pong, stats
            finally:
                await fleet.close()

        pong, stats = _run(scenario())
        assert pong.protocol >= 2
        assert pong.server_version
        assert pong.shard_id is None  # the router is not a shard
        assert stats["role"] == "router"
        assert stats["jobs_completed"] == 1
        assert stats["results_merged"] == len(triples)
        probes = [r for shard in stats["shards"] for r in shard["replicas"]]
        assert all(probe["connected"] for probe in probes)
        assert {probe["shard_id"] for probe in probes} == {0, 1}

    def test_shard_error_fails_the_job(self, graph):
        # Vertex 10**9 exists on no shard: the owning shard rejects its
        # sub-batch and the whole job must fail, not hang.
        async def scenario():
            fleet = _Fleet()
            try:
                await fleet.add_shard(graph, threads=1)
                await fleet.add_shard(graph, threads=1)
                router = ShardRouter(fleet.shard_map(), hedge=False)
                job = await router.submit([[0, 10**9, 4]], {})
                frames = [frame async for frame in job.frames()]
                await router.close()
                return frames
            finally:
                await fleet.close()

        frames = _run(scenario())
        assert frames[-1]["type"] == "error"
        assert "out of range" in frames[-1]["error"]


class TestFailover:
    def test_shard_death_mid_stream_is_absorbed_by_replica(self, graph, triples, expected):
        """Kill the primary replica after two results; the merged stream must
        still be byte-identical to the sequential session."""

        async def scenario():
            fleet = _Fleet()
            try:
                # One shard, two replicas, slow primary so the kill lands
                # mid-stream deterministically.
                await fleet.add_shard(graph, replicas=2, threads=1,
                                      algorithm=_SlowAlgorithm(0.03))
                shard_map = fleet.shard_map()
                router = ShardRouter(shard_map, hedge=False,
                                     policy=ReconnectPolicy(attempts=1))
                job = await router.submit(list(triples), {"store_paths": True})
                primary_service, primary_server = fleet.shards[0][0]
                frames, results_seen = [], 0
                async for frame in job.frames():
                    frames.append(frame)
                    if frame["type"] == "result":
                        results_seen += 1
                        if results_seen == 2:
                            await primary_server.close()
                            await primary_service.close()
                failovers = router.counters.failovers
                await router.close()
                return frames, failovers
            finally:
                await fleet.close()

        frames, failovers = _run(scenario())
        assert frames[-1]["type"] == "done"
        assert failovers >= 1
        results = [f for f in frames if f["type"] == "result"]
        positions = [f["position"] for f in results]
        assert sorted(positions) == list(range(len(triples)))
        assert len(positions) == len(set(positions)), "duplicate positions delivered"
        by_position = {f["position"]: f for f in results}
        # The replica ran the slow stand-in algorithm too, so compare the
        # stand-in's known output (not the real enumeration results).
        for position, (s, t, k) in enumerate(triples):
            frame = by_position[position]
            assert (frame["source"], frame["target"], frame["k"]) == (s, t, k)
            assert frame["count"] == 1
            assert frame["paths"] == [[s, t]]

    def test_real_results_identical_after_failover(self, graph, triples, expected):
        """Same scenario on the real algorithm: payload equality end to end."""

        async def scenario():
            fleet = _Fleet()
            try:
                await fleet.add_shard(graph, replicas=2, threads=1)
                router = ShardRouter(fleet.shard_map(), hedge=False,
                                     policy=ReconnectPolicy(attempts=1))
                # Kill the primary *before* the submit: failover happens at
                # dial time and every query lands on the replica.
                primary_service, primary_server = fleet.shards[0][0]
                await primary_server.close()
                await primary_service.close()
                job = await router.submit(list(triples), {"store_paths": True})
                frames = [frame async for frame in job.frames()]
                failovers = router.counters.failovers
                await router.close()
                return frames, failovers
            finally:
                await fleet.close()

        frames, failovers = _run(scenario())
        assert frames[-1]["type"] == "done"
        assert failovers >= 1
        by_position = {f["position"]: f for f in frames if f["type"] == "result"}
        assert sorted(by_position) == list(range(len(triples)))
        for position, exp in enumerate(expected):
            frame = by_position[position]
            assert frame["count"] == exp.count
            assert [tuple(p) for p in frame["paths"]] == [tuple(p) for p in exp.paths]

    def test_unreachable_then_reachable_replica(self, graph, triples):
        """First replica address refuses connections outright."""

        async def scenario():
            fleet = _Fleet()
            try:
                await fleet.add_shard(graph, threads=1)
                live_port = fleet.shards[0][0][1].port
                shard_map = ShardMap.from_entries(
                    [f"127.0.0.1:{_free_port()},127.0.0.1:{live_port}"]
                )
                router = ShardRouter(shard_map, hedge=False,
                                     policy=ReconnectPolicy(attempts=1))
                job = await router.submit(list(triples), {})
                frames = [frame async for frame in job.frames()]
                failovers = router.counters.failovers
                await router.close()
                return frames, failovers
            finally:
                await fleet.close()

        frames, failovers = _run(scenario())
        assert frames[-1]["type"] == "done"
        assert failovers >= 1

    def test_single_replica_death_fails_the_job(self, graph, triples):
        async def scenario():
            fleet = _Fleet()
            try:
                await fleet.add_shard(graph, threads=1, algorithm=_SlowAlgorithm(0.05))
                router = ShardRouter(fleet.shard_map(), hedge=False, max_attempts=2,
                                     policy=ReconnectPolicy(attempts=1))
                job = await router.submit(list(triples), {})
                frames = []
                async for frame in job.frames():
                    frames.append(frame)
                    if frame["type"] == "result":
                        service, server = fleet.shards[0][0]
                        await server.close()
                        await service.close()
                await router.close()
                return frames
            finally:
                await fleet.close()

        frames = _run(scenario())
        assert frames[-1]["type"] == "error"


class TestCancelFanOut:
    def test_cancel_reaches_every_shard_promptly(self, graph):
        # Enough slow queries that both shards are mid-batch when the
        # cancel lands; both shard services must record the cancellation.
        workload = generate_target_centric_set(
            graph, count=16, k=4, num_targets=8, seed=9
        )
        triples = [[q.source, q.target, q.k] for q in workload]

        async def scenario():
            fleet = _Fleet()
            try:
                await fleet.add_shard(graph, threads=1, algorithm=_SlowAlgorithm(0.08))
                await fleet.add_shard(graph, threads=1, algorithm=_SlowAlgorithm(0.08))
                router = ShardRouter(fleet.shard_map(), hedge=False)
                job = await router.submit(triples, {})
                # Wait for the first streamed result, then cancel.
                first = await asyncio.wait_for(job.queue.get(), timeout=10.0)
                assert first["type"] == "result"
                cancelled_at = asyncio.get_event_loop().time()
                await router.cancel(job)
                frames = [frame async for frame in job.frames()]
                terminal_delay = asyncio.get_event_loop().time() - cancelled_at
                # Give the shard drive threads a beat to mark their jobs.
                await asyncio.sleep(0.3)
                shard_counts = [
                    replicas[0][0].stats()["jobs_cancelled"]
                    for replicas in fleet.shards
                ]
                return frames, terminal_delay, shard_counts
            finally:
                await fleet.close()

        frames, terminal_delay, shard_counts = _run(scenario())
        assert frames[-1]["type"] == "cancelled"
        # Prompt: well under the ~1.3 s a shard would need to drain its
        # sub-batch at 80 ms per query.
        assert terminal_delay < 1.0
        assert all(count == 1 for count in shard_counts), shard_counts

    def test_cancel_before_any_result_cancels_cleanly(self, graph, triples):
        async def scenario():
            fleet = _Fleet()
            try:
                await fleet.add_shard(graph, threads=1, algorithm=_SlowAlgorithm(0.2))
                router = ShardRouter(fleet.shard_map(), hedge=False)
                job = await router.submit(list(triples), {})
                await asyncio.sleep(0.05)
                await router.cancel(job)
                frames = [frame async for frame in job.frames()]
                await router.close()
                return frames
            finally:
                await fleet.close()

        frames = _run(scenario())
        assert frames[-1]["type"] == "cancelled"


class TestHedging:
    def test_hedged_duplicate_deduplicated_exactly_once(self, graph, triples, expected):
        """Slow primary + fast replica: the hedge fires, the replica wins,
        and every position is delivered exactly once."""

        async def scenario():
            fleet = _Fleet()
            shard_id = 0
            try:
                # Replica 0 (primary): slow stand-in; replica 1: the real,
                # fast algorithm.  Built by hand to mix per-replica configs.
                primary = QueryService(graph, shard_id=shard_id, threads=1,
                                       algorithm=_SlowAlgorithm(0.25))
                primary_server = QueryServer(primary, port=0)
                await primary_server.start()
                fast = QueryService(graph, shard_id=shard_id, threads=2)
                fast_server = QueryServer(fast, port=0)
                await fast_server.start()
                fleet.shards.append([(primary, primary_server), (fast, fast_server)])
                router = ShardRouter(
                    fleet.shard_map(),
                    hedge=True,
                    hedge_initial_delay=0.05,
                    hedge_min_delay=0.05,
                )
                job = await router.submit(list(triples), {"store_paths": True})
                frames = [frame async for frame in job.frames()]
                counters = router.counters
                snapshot = (
                    counters.hedges_fired,
                    counters.hedge_wins,
                    counters.duplicates_dropped,
                )
                await router.close()
                return frames, snapshot
            finally:
                await fleet.close()

        frames, (hedges_fired, hedge_wins, duplicates_dropped) = _run(scenario())
        assert frames[-1]["type"] == "done"
        assert hedges_fired >= 1
        assert hedge_wins >= 1
        results = [f for f in frames if f["type"] == "result"]
        positions = [f["position"] for f in results]
        # Exactly once: every workload position delivered, none twice —
        # duplicates from the losing attempt were dropped, not merged.
        assert sorted(positions) == list(range(len(triples)))
        assert len(positions) == len(set(positions))
        # The fast replica's results are the real algorithm's output.
        by_position = {f["position"]: f for f in results}
        winners = [p for p, f in by_position.items() if f["count"] == expected[p].count
                   and [tuple(q) for q in f["paths"]] == [tuple(q) for q in expected[p].paths]]
        assert len(winners) >= 1

    def test_hedge_delay_tracks_winning_latency_percentile(self):
        shard_map = ShardMap.from_entries(["h:1,h:2"])
        router = ShardRouter(shard_map, hedge_min_samples=4,
                             hedge_min_delay=0.01, hedge_max_delay=1.0,
                             hedge_initial_delay=0.2)
        # Below the sample threshold: the initial delay rules.
        assert router.hedge_delay() == pytest.approx(0.2)
        for latency in (0.02, 0.03, 0.04, 0.05):
            router.record_latency(latency)
        # p95 of the window, clamped: near the top sample.
        assert router.hedge_delay() == pytest.approx(0.05)
        router.record_latency(5.0)
        assert router.hedge_delay() == pytest.approx(1.0)  # upper clamp

    def test_no_hedge_with_single_replica(self, graph, triples):
        async def scenario():
            fleet = _Fleet()
            try:
                await fleet.add_shard(graph, threads=1, algorithm=_SlowAlgorithm(0.05))
                router = ShardRouter(fleet.shard_map(), hedge=True,
                                     hedge_initial_delay=0.01, hedge_min_delay=0.01)
                job = await router.submit(list(triples[:4]), {})
                frames = [frame async for frame in job.frames()]
                fired = router.counters.hedges_fired
                await router.close()
                return frames, fired
            finally:
                await fleet.close()

        frames, fired = _run(scenario())
        assert frames[-1]["type"] == "done"
        assert fired == 0
