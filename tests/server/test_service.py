"""Tests for the serving core: streaming jobs over the executor."""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.core.algorithm import Algorithm
from repro.core.engine import QuerySession
from repro.core.listener import RunConfig
from repro.core.query import Query
from repro.core.result import EnumerationStats, QueryResult
from repro.graph.generators import erdos_renyi
from repro.server.service import JobState, QueryService
from repro.workloads.queries import generate_target_centric_set


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(150, 4.0, seed=11)


@pytest.fixture(scope="module")
def queries(graph):
    workload = generate_target_centric_set(graph, count=10, k=4, num_targets=3, seed=5)
    return list(workload)


class _SlowAlgorithm(Algorithm):
    """Sleeps per query so streaming/cancellation timing is observable."""

    name = "SLOW"

    def __init__(self, delay: float = 0.05) -> None:
        self.delay = delay

    def run(self, graph, query, config=None):
        time.sleep(self.delay)
        return QueryResult(
            source=query.source, target=query.target, k=query.k,
            algorithm=self.name, count=1, paths=[(query.source, query.target)],
            stats=EnumerationStats(),
        )


class TestServiceResults:
    def test_results_identical_to_sequential_session(self, graph, queries):
        config = RunConfig(store_paths=True)
        session = QuerySession(graph)
        expected = [session.run(query, config) for query in queries]

        async def scenario():
            service = QueryService(graph, threads=2)
            try:
                return await service.run(queries, config)
            finally:
                await service.close()

        actual = asyncio.run(scenario())
        for exp, act in zip(expected, actual):
            assert act.source == exp.source
            assert act.target == exp.target
            assert act.count == exp.count
            assert act.paths == exp.paths
            assert act.stats.bfs_cache_hit == exp.stats.bfs_cache_hit

    def test_events_stream_before_completion(self, graph):
        """The first result event must arrive while later queries still run."""
        queries = [Query(i, 100 + i, 2) for i in range(6)]

        async def scenario():
            service = QueryService(graph, algorithm=_SlowAlgorithm(0.05), threads=1)
            try:
                job = await service.submit(queries, RunConfig(store_paths=True))
                loop = asyncio.get_running_loop()
                started = loop.time()
                first_result = done = None
                async for event in job.events():
                    if event[0] == "result" and first_result is None:
                        first_result = loop.time() - started
                    elif event[0] == "done":
                        done = loop.time() - started
                assert first_result is not None and done is not None
                # 6 queries x 50 ms on one worker: the first frame lands
                # roughly one delay in, far before the job completes.
                assert first_result < done / 2
                assert job.state is JobState.DONE
            finally:
                await service.close()

        asyncio.run(scenario())

    def test_positions_cover_workload_order(self, graph, queries):
        async def scenario():
            service = QueryService(graph, threads=2)
            try:
                job = await service.submit(queries, RunConfig(store_paths=False))
                positions = []
                async for event in job.events():
                    if event[0] == "result":
                        positions.append(event[1])
                return positions
            finally:
                await service.close()

        positions = asyncio.run(scenario())
        assert sorted(positions) == list(range(len(queries)))


class TestCancellation:
    def test_cancel_mid_stream(self, graph):
        queries = [Query(i, 100 + i, 2) for i in range(20)]

        async def scenario():
            service = QueryService(graph, algorithm=_SlowAlgorithm(0.03), threads=1)
            try:
                job = await service.submit(queries, RunConfig(store_paths=False))
                events = []
                async for event in job.events():
                    events.append(event)
                    if event[0] == "result" and len(events) == 2:
                        job.cancel()
                return job, events
            finally:
                await service.close()

        job, events = asyncio.run(scenario())
        assert events[-1][0] == "cancelled"
        delivered = sum(1 for event in events if event[0] == "result")
        # Some results streamed, but cancellation stopped the rest.
        assert 0 < delivered < len(queries)
        assert events[-1][1] == delivered
        assert job.state is JobState.CANCELLED

    def test_cancel_before_drive_starts(self, graph, queries):
        async def scenario():
            # A single busy drive slot delays the second job, so cancelling
            # it hits the pre-run branch deterministically.
            service = QueryService(
                graph, algorithm=_SlowAlgorithm(0.05), threads=1, max_concurrent_jobs=1
            )
            try:
                blocker = await service.submit(queries[:3], RunConfig(store_paths=False))
                victim = await service.submit(queries, RunConfig(store_paths=False))
                victim.cancel()
                events = [event async for event in victim.events()]
                async for _ in blocker.events():
                    pass
                return events
            finally:
                await service.close()

        events = asyncio.run(scenario())
        assert events == [("cancelled", 0)]


class TestServiceStats:
    def test_counters_and_cache_sharing(self, graph, queries):
        async def scenario():
            service = QueryService(graph, threads=2)
            try:
                await service.run(queries, RunConfig(store_paths=False))
                after_first = service.stats()
                await service.run(queries, RunConfig(store_paths=False))
                return after_first, service.stats()
            finally:
                await service.close()

        first, second = asyncio.run(scenario())
        assert first["jobs_completed"] == 1
        assert first["queries_completed"] == len(queries)
        assert first["reverse_bfs_runs"] == 3  # distinct targets
        # The second job reuses the warm distance cache entirely.
        assert second["reverse_bfs_runs"] == 3
        assert second["jobs_completed"] == 2
        assert second["backend"] == "thread"

    def test_submit_after_close_raises(self, graph, queries):
        async def scenario():
            service = QueryService(graph, threads=1)
            await service.close()
            await service.close()  # idempotent
            with pytest.raises(RuntimeError):
                await service.submit(queries, RunConfig())

        asyncio.run(scenario())

    def test_worker_error_becomes_error_event(self, graph, queries):
        class Exploder(Algorithm):
            name = "BOOM"

            def run(self, graph, query, config=None):
                raise RuntimeError("kaboom")

        async def scenario():
            service = QueryService(graph, algorithm=Exploder(), threads=1)
            try:
                job = await service.submit(queries[:2], RunConfig())
                return [event async for event in job.events()]
            finally:
                await service.close()

        events = asyncio.run(scenario())
        assert events[-1][0] == "error"
        assert "kaboom" in events[-1][1]
