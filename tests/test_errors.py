"""Unit tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro import errors


class TestHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in errors.__all__:
            if name == "ReproError":
                continue
            exc_class = getattr(errors, name)
            assert issubclass(exc_class, errors.ReproError), name

    def test_vertex_not_found_is_key_error(self):
        exc = errors.VertexNotFoundError("v42")
        assert isinstance(exc, KeyError)
        assert exc.vertex == "v42"
        assert "v42" in str(exc)

    def test_edge_not_found_carries_endpoints(self):
        exc = errors.EdgeNotFoundError(1, 2)
        assert (exc.source, exc.target) == (1, 2)

    def test_invalid_query_is_value_error(self):
        assert issubclass(errors.InvalidQueryError, ValueError)

    def test_timeout_carries_partial_stats(self):
        stats = object()
        exc = errors.EnumerationTimeout(stats=stats)
        assert exc.stats is stats

    def test_catching_the_base_class(self):
        with pytest.raises(errors.ReproError):
            raise errors.DatasetError("missing")


class TestConnectionLost:
    def test_is_a_connection_error(self):
        # Typed replacement for the raw OSError the client used to leak:
        # callers can catch ConnectionError/OSError as before, or the
        # precise class for retry logic.
        assert issubclass(errors.ConnectionLost, ConnectionError)
        assert issubclass(errors.ConnectionLost, errors.ReproError)

    def test_carries_endpoint_and_attempts(self):
        exc = errors.ConnectionLost("10.0.0.7", 7284, attempts=3, reason="refused")
        assert (exc.host, exc.port, exc.attempts) == ("10.0.0.7", 7284, 3)
        assert "10.0.0.7:7284" in str(exc)
        assert "3 attempts" in str(exc)
        assert "refused" in str(exc)

    def test_singular_attempt_message(self):
        exc = errors.ConnectionLost("h", 1)
        assert "1 attempt" in str(exc)
        assert "attempts" not in str(exc)
