"""Asyncio client for the query service, plus the open-loop load driver.

:class:`QueryClient` wraps one TCP connection: a background reader task
demultiplexes incoming frames by job id, so any number of jobs (and
``stats`` probes) can be in flight on one connection.  The convenience
entry points cover the two scripted uses:

* :func:`run_queries` — synchronous one-shot: connect, submit one workload,
  collect the ordered results (the ``repro client`` default);
* :func:`open_loop_load` — the serving benchmark's traffic generator: each
  query becomes its own job, submitted at a scheduled arrival time
  regardless of completions (open-loop, so queueing delay is *measured*,
  not hidden), across a pool of concurrent connections.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConnectionLost
from repro.server.protocol import (
    DEFAULT_PORT,
    PROTOCOL_VERSION,
    negotiate_protocol,
    read_frame,
    write_frame,
)

__all__ = [
    "ReconnectPolicy",
    "RemoteResult",
    "JobOutcome",
    "Pong",
    "QueryClient",
    "run_queries",
    "open_loop_load",
    "LoadReport",
]


@dataclass(frozen=True)
class ReconnectPolicy:
    """Exponential backoff with jitter for (re)dialling a query server.

    ``attempts`` counts connection *tries*: 1 means a single dial and no
    retry.  The delay before retry ``n`` is ``base_delay * 2**(n-1)``
    capped at ``max_delay``, stretched by a uniform random factor in
    ``[1, 1 + jitter]`` — the jitter keeps a fleet of clients (or a router's
    shard channels) from redialling a recovering server in lockstep.
    """

    attempts: int = 1
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.5

    def delay(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """Seconds to sleep after failed attempt number ``attempt`` (1-based)."""
        base = min(self.max_delay, self.base_delay * (2.0 ** (attempt - 1)))
        spread = (rng.random() if rng is not None else random.random()) * self.jitter
        return base * (1.0 + spread)


@dataclass
class Pong:
    """A ``pong`` reply: liveness plus identity plus round-trip latency.

    Truthy (so ``assert await client.ping()`` keeps reading naturally);
    ``rtt_ms`` is measured on the client's clock around the full control
    round trip; ``protocol`` / ``server_version`` / ``shard_id`` are absent
    (``None`` / 1) when the peer predates protocol version 2.
    """

    rtt_ms: float
    protocol: int = 1
    server_version: Optional[str] = None
    shard_id: Optional[int] = None

    def __bool__(self) -> bool:
        return True


@dataclass
class RemoteResult:
    """One query's result as received over the wire."""

    position: int
    source: object
    target: object
    k: int
    count: int
    paths: Optional[List[Tuple[object, ...]]]
    query_ms: float
    plan: Optional[str]
    timed_out: bool
    bfs_cache_hit: bool

    @classmethod
    def from_frame(
        cls, frame: Dict[str, object], paths: Optional[List[Tuple[object, ...]]]
    ) -> "RemoteResult":
        return cls(
            position=int(frame["position"]),
            source=frame["source"],
            target=frame["target"],
            k=int(frame["k"]),
            count=int(frame["count"]),
            paths=paths,
            query_ms=float(frame["query_ms"]),
            plan=frame.get("plan"),
            timed_out=bool(frame.get("timed_out", False)),
            bfs_cache_hit=bool(frame.get("bfs_cache_hit", False)),
        )


@dataclass
class JobOutcome:
    """Everything one job streamed back, reassembled."""

    job_id: str
    #: Results in workload order (sorted by ``position``).
    results: List[RemoteResult]
    #: ``"done"``, ``"cancelled"``, ``"overloaded"`` or ``"error"``.
    status: str
    #: The terminal frame (carries ``total_paths`` / ``wall_ms`` on done,
    #: ``retry_after_ms`` on overloaded).
    info: Dict[str, object]
    #: Client-side seconds from submit to the first streamed frame / the
    #: terminal frame — the serving latency split the benchmark reports.
    first_frame_seconds: Optional[float] = None
    wall_seconds: float = 0.0
    #: Overload retries :meth:`QueryClient.run_with_retries` spent before
    #: this outcome (0 for a first-attempt answer).
    retries: int = 0

    @property
    def total_paths(self) -> int:
        return sum(result.count for result in self.results)

    def raise_on_error(self) -> "JobOutcome":
        if self.status == "error":
            raise RuntimeError(f"job {self.job_id} failed: {self.info.get('error')}")
        return self


class QueryClient:
    """One protocol connection with frame demultiplexing."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        endpoint: Optional[Tuple[str, int]] = None,
        policy: Optional[ReconnectPolicy] = None,
    ) -> None:
        self._endpoint = endpoint
        self._policy = policy if policy is not None else ReconnectPolicy()
        self._connected = True
        self._attach(reader, writer)

    def _attach(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        """(Re)bind the connection state around a fresh socket."""
        self._reader = reader
        self._writer = writer
        self._write_lock = asyncio.Lock()
        self._jobs: Dict[str, asyncio.Queue] = {}
        self._control: asyncio.Queue = asyncio.Queue()
        self._control_lock = asyncio.Lock()
        self._next_id = getattr(self, "_next_id", 0)
        self._connected = True
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @staticmethod
    async def _dial(
        host: str, port: int, policy: ReconnectPolicy
    ) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        """Open a connection under ``policy``; :class:`ConnectionLost` when spent."""
        attempt = 0
        while True:
            attempt += 1
            try:
                return await asyncio.open_connection(host, port)
            except OSError as error:
                if attempt >= max(1, policy.attempts):
                    raise ConnectionLost(host, port, attempt, str(error)) from error
                await asyncio.sleep(policy.delay(attempt))

    @classmethod
    async def connect(
        cls,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        *,
        retries: int = 0,
        policy: Optional[ReconnectPolicy] = None,
    ) -> "QueryClient":
        """Dial a server; a refused/unreachable endpoint raises
        :class:`~repro.errors.ConnectionLost` (never a raw ``OSError``).

        ``retries`` adds that many redial attempts with the default
        exponential backoff + jitter; ``policy`` overrides the whole
        schedule.  The policy is remembered for :meth:`reconnect`.
        """
        policy = policy if policy is not None else ReconnectPolicy(attempts=1 + max(0, retries))
        reader, writer = await cls._dial(host, port, policy)
        return cls(reader, writer, endpoint=(host, port), policy=policy)

    @property
    def connected(self) -> bool:
        """Whether the reader loop still considers the connection live."""
        return self._connected and not self._reader_task.done()

    async def reconnect(self) -> None:
        """Redial the remembered endpoint under the connect-time policy.

        Jobs in flight on the old connection are already poisoned (their
        server-side state died with the socket) — reconnecting restores the
        *connection*, not the jobs; resubmission is the caller's decision.
        Raises :class:`~repro.errors.ConnectionLost` when the policy's
        attempts are exhausted, ``RuntimeError`` when the client was built
        from a raw stream pair and no endpoint is known.
        """
        if self._endpoint is None:
            raise RuntimeError("cannot reconnect: client was not built via connect()")
        await self.close()
        reader, writer = await self._dial(*self._endpoint, self._policy)
        self._attach(reader, writer)

    async def __aenter__(self) -> "QueryClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def close(self) -> None:
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):  # noqa: BLE001 - teardown
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def _read_loop(self) -> None:
        reason = "connection closed"
        try:
            while True:
                frame = await read_frame(self._reader)
                if frame is None:
                    break
                job_id = frame.get("id")
                queue = self._jobs.get(job_id) if job_id is not None else None
                if queue is not None:
                    queue.put_nowait(frame)
                else:
                    self._control.put_nowait(frame)
        except asyncio.CancelledError:
            raise
        except Exception as error:  # noqa: BLE001 - reported through the poison frame
            reason = f"connection failed: {type(error).__name__}: {error}"
        finally:
            # Wake every waiter so nobody blocks on a dead connection — and
            # tell them *why* (protocol error vs. plain disconnect).  The
            # marker lets control-frame waiters distinguish this local
            # "connection is gone" signal from an ordinary server error
            # frame that happens to carry no job id.
            self._connected = False
            poison = {"type": "error", "error": reason, "_closed": True}
            for job_id, queue in self._jobs.items():
                queue.put_nowait({**poison, "id": job_id})
            self._control.put_nowait(poison)

    # -- requests ------------------------------------------------------ #
    async def submit(
        self,
        queries: Sequence[Sequence[object]],
        *,
        store_paths: bool = True,
        result_limit: Optional[int] = None,
        time_limit_seconds: Optional[float] = None,
        response_k: int = 1000,
        external: bool = False,
        frames: str = "result",
        engine: Optional[str] = None,
    ) -> str:
        """Send one submit frame; returns the job id to stream/collect.

        ``engine`` selects the enumeration engine server-side
        (``auto`` / ``kernel`` / ``recursive``), exactly like the ``engine``
        option of a local :class:`~repro.core.listener.RunConfig`; ``None``
        leaves the server default (``auto``) in place.
        """
        self._next_id += 1
        job_id = f"c{self._next_id}"
        self._jobs[job_id] = asyncio.Queue()
        opts: Dict[str, object] = {
            "store_paths": store_paths,
            "response_k": response_k,
        }
        if result_limit is not None:
            opts["result_limit"] = result_limit
        if time_limit_seconds is not None:
            opts["time_limit_seconds"] = time_limit_seconds
        if external:
            opts["external"] = True
        if frames != "result":
            opts["frames"] = frames
        if engine is not None:
            opts["engine"] = engine
        await write_frame(
            self._writer,
            {
                "type": "submit",
                "id": job_id,
                "queries": [list(query) for query in queries],
                "opts": opts,
            },
            lock=self._write_lock,
        )
        return job_id

    async def frames(self, job_id: str):
        """Yield the job's raw frames until (and including) the terminal one."""
        queue = self._jobs[job_id]
        try:
            while True:
                frame = await queue.get()
                yield frame
                if frame["type"] in ("done", "cancelled", "error", "overloaded"):
                    return
        finally:
            self._jobs.pop(job_id, None)

    async def collect(self, job_id: str) -> JobOutcome:
        """Drain one job into a :class:`JobOutcome` (results position-sorted)."""
        loop = asyncio.get_running_loop()
        started = loop.time()
        first: Optional[float] = None
        pending_paths: Dict[int, List[Tuple[object, ...]]] = {}
        results: List[RemoteResult] = []
        status, info = "error", {"error": "stream ended without a terminal frame"}
        async for frame in self.frames(job_id):
            if first is None:
                first = loop.time() - started
            kind = frame["type"]
            if kind == "path":
                pending_paths.setdefault(int(frame["position"]), []).append(
                    tuple(frame["path"])
                )
            elif kind == "result":
                position = int(frame["position"])
                if "paths" in frame:
                    paths = [tuple(path) for path in frame["paths"]]
                else:
                    paths = pending_paths.pop(position, None)
                results.append(RemoteResult.from_frame(frame, paths))
            else:
                status, info = kind, frame
        results.sort(key=lambda result: result.position)
        return JobOutcome(
            job_id=job_id,
            results=results,
            status=status,
            info=info,
            first_frame_seconds=first,
            wall_seconds=loop.time() - started,
        )

    async def run(self, queries: Sequence[Sequence[object]], **opts) -> JobOutcome:
        """Submit one workload and collect its outcome."""
        job_id = await self.submit(queries, **opts)
        return await self.collect(job_id)

    async def run_with_retries(
        self,
        queries: Sequence[Sequence[object]],
        *,
        overload_retries: int = 4,
        rng: Optional[random.Random] = None,
        **opts,
    ) -> JobOutcome:
        """:meth:`run`, honouring ``overloaded`` rejects with backoff.

        The sleep before retry ``n`` is the larger of the server's
        ``retry_after_ms`` hint and ``0.05 * 2**(n-1)`` seconds, capped at
        2 s and stretched by up to 50 % jitter (so a rejected fleet does not
        retry in lockstep).  After ``overload_retries`` rejected attempts
        the final ``overloaded`` outcome is returned — never raised — with
        :attr:`JobOutcome.retries` recording the attempts spent.
        """
        attempt = 0
        while True:
            outcome = await self.run(queries, **opts)
            outcome.retries = attempt
            if outcome.status != "overloaded" or attempt >= overload_retries:
                return outcome
            attempt += 1
            hint = float(outcome.info.get("retry_after_ms", 50.0)) / 1e3
            backoff = min(2.0, max(hint, 0.05 * (2.0 ** (attempt - 1))))
            spread = (rng.random() if rng is not None else random.random()) * 0.5
            await asyncio.sleep(backoff * (1.0 + spread))

    async def cancel(self, job_id: str) -> None:
        await write_frame(
            self._writer, {"type": "cancel", "id": job_id}, lock=self._write_lock
        )

    async def stats(self) -> Dict[str, object]:
        """Request one service statistics snapshot."""
        return (await self._control_request({"type": "stats"}, "stats")).get("stats")

    async def update(
        self,
        add: Sequence[Sequence[object]] = (),
        remove: Sequence[Sequence[object]] = (),
        *,
        external: bool = False,
    ) -> Dict[str, object]:
        """Apply one edge batch server-side; returns the ``updated`` frame.

        The reply carries the new ``epoch`` id, the ``added`` / ``removed``
        counts that actually took effect, the distance-cache ``repair``
        breakdown and the live-graph ``stats`` counters (protocol version
        3).  A server-side validation failure raises ``RuntimeError`` with
        the server's message.
        """
        request: Dict[str, object] = {
            "type": "update",
            "add": [list(edge) for edge in add],
            "remove": [list(edge) for edge in remove],
        }
        if external:
            request["external"] = True
        async with self._control_lock:
            await write_frame(self._writer, request, lock=self._write_lock)
            while True:
                frame = await self._control.get()
                if frame["type"] == "updated":
                    return frame
                if frame.get("_closed"):
                    host, port = self._endpoint if self._endpoint else ("?", 0)
                    raise ConnectionLost(
                        host, port, 1, str(frame.get("error", "connection closed"))
                    )
                if frame["type"] == "error":
                    raise RuntimeError(f"update failed: {frame.get('error')}")

    async def ping(self) -> Pong:
        """Round-trip a liveness probe; returns the (truthy) :class:`Pong`.

        The ping frame carries the client's monotonic clock sample and
        protocol version; the pong echoes the former (round-trip latency
        measured on one clock) and reports the server's identity fields.
        """
        loop = asyncio.get_running_loop()
        sent = loop.time()
        frame = await self._control_request(
            {"type": "ping", "protocol": PROTOCOL_VERSION, "t": sent}, "pong"
        )
        rtt_ms = (loop.time() - sent) * 1e3
        return Pong(
            rtt_ms=rtt_ms,
            protocol=1 if frame.get("protocol") is None else int(frame["protocol"]),
            server_version=frame.get("server_version"),
            shard_id=frame.get("shard_id"),
        )

    async def negotiate(self) -> int:
        """Ping the server and validate its protocol version.

        Returns the negotiated version; raises
        :class:`~repro.server.protocol.ProtocolMismatch` when the server
        speaks a version outside this build's supported window.  A pong
        without a ``protocol`` field is a version-1 server.
        """
        pong = await self.ping()
        return negotiate_protocol(pong.protocol)

    async def _control_request(
        self, request: Dict[str, object], reply_type: str
    ) -> Dict[str, object]:
        """Send a control frame and wait for its reply (the whole frame).

        Unrelated control-queue traffic (e.g. a server error frame that
        carries no job id) is skipped, not raised — only the dead-connection
        poison aborts the wait, as :class:`~repro.errors.ConnectionLost`.
        """
        async with self._control_lock:
            await write_frame(self._writer, request, lock=self._write_lock)
            while True:
                frame = await self._control.get()
                if frame["type"] == reply_type:
                    return frame
                if frame.get("_closed"):
                    host, port = self._endpoint if self._endpoint else ("?", 0)
                    raise ConnectionLost(
                        host, port, 1, str(frame.get("error", "connection closed"))
                    )


def run_queries(
    queries: Sequence[Sequence[object]],
    *,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    **opts,
) -> JobOutcome:
    """Synchronous one-shot: connect, run one workload, disconnect."""

    async def _run() -> JobOutcome:
        client = await QueryClient.connect(host, port)
        async with client:
            return await client.run(queries, **opts)

    return asyncio.run(_run())


@dataclass
class LoadReport:
    """Outcome of one open-loop load run."""

    concurrency: int
    offered_rate: float
    wall_seconds: float
    completed: int
    errors: int
    total_paths: int
    #: Per-query completion latency in milliseconds, measured from each
    #: query's *scheduled* arrival time (queueing delay included).
    latencies_ms: List[float] = field(default_factory=list)
    #: Queries the server refused with ``overloaded`` beyond the retry
    #: budget — shed load, counted separately from errors.
    shed: int = 0
    #: Overload-rejected submissions that were retried (attempts, not
    #: distinct queries).
    retried: int = 0
    #: Arrivals moved off a dead connection onto a surviving one.
    reassigned: int = 0
    #: ``(index, JobOutcome)`` of completed queries, kept only when
    #: ``keep_outcomes`` was requested (equivalence checks).
    outcomes: List[Tuple[int, "JobOutcome"]] = field(default_factory=list)

    @property
    def achieved_qps(self) -> float:
        if self.wall_seconds <= 0.0:
            return float(self.completed)
        return self.completed / self.wall_seconds


async def open_loop_load(
    queries: Sequence[Sequence[object]],
    arrivals_seconds: Sequence[float],
    *,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    connections: int = 1,
    store_paths: bool = False,
    result_limit: Optional[int] = None,
    time_limit_seconds: Optional[float] = None,
    external: bool = False,
    engine: Optional[str] = None,
    overload_retries: int = 3,
    rng: Optional[random.Random] = None,
    keep_outcomes: bool = False,
) -> LoadReport:
    """Drive open-loop traffic: query ``i`` is submitted at its arrival time.

    Every query is its own single-query job; jobs round-robin over
    ``connections`` concurrent client connections.  Submission times follow
    ``arrivals_seconds`` (offsets from the start of the run) without waiting
    for completions — when the service falls behind, latency grows instead
    of the arrival process stalling, which is what makes the measured
    percentiles honest.

    The driver degrades instead of aborting: an ``overloaded`` reject is
    retried with backoff + jitter up to ``overload_retries`` times (the
    final reject counts as *shed*, not an error), and an arrival whose
    preferred connection died is handed to a surviving connection (counted
    in :attr:`LoadReport.reassigned`) rather than silently lost — a query
    that was mid-flight when its connection died may be re-executed
    server-side, which an open-loop measurement tolerates.  ``rng`` seeds
    the backoff jitter for reproducible runs.
    """
    if len(queries) != len(arrivals_seconds):
        raise ValueError("queries and arrivals_seconds must have equal length")
    if connections < 1:
        raise ValueError("connections must be at least 1")
    loop = asyncio.get_running_loop()
    clients: List[QueryClient] = []
    started = loop.time()
    counters = {"shed": 0, "retried": 0, "reassigned": 0}

    async def one(index: int, query: Sequence[object], offset: float):
        scheduled = started + offset
        delay = scheduled - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        preferred = index % len(clients)
        overloads = 0
        hops = 0
        max_hops = 2 * len(clients)
        while True:
            client = clients[preferred]
            if not client.connected:
                live = [i for i, c in enumerate(clients) if c.connected]
                if not live or hops >= max_hops:
                    return "lost", None, None
                preferred = live[index % len(live)]
                client = clients[preferred]
                counters["reassigned"] += 1
                hops += 1
            try:
                job_id = await client.submit(
                    [query],
                    store_paths=store_paths,
                    result_limit=result_limit,
                    time_limit_seconds=time_limit_seconds,
                    external=external,
                    engine=engine,
                )
                outcome = await client.collect(job_id)
            except (ConnectionError, OSError):
                hops += 1
                if hops > max_hops:
                    return "lost", None, None
                continue
            if outcome.status == "error" and outcome.info.get("_closed"):
                # The connection died mid-flight (poison frame): loop back —
                # the dead-client branch above reassigns to a survivor.
                hops += 1
                if hops > max_hops:
                    return "lost", None, None
                continue
            if outcome.status == "overloaded":
                overloads += 1
                if overloads > overload_retries:
                    return "shed", outcome, None
                counters["retried"] += 1
                hint = float(outcome.info.get("retry_after_ms", 50.0)) / 1e3
                backoff = min(2.0, max(hint, 0.05 * (2.0 ** (overloads - 1))))
                spread = (rng.random() if rng is not None else random.random()) * 0.5
                await asyncio.sleep(backoff * (1.0 + spread))
                continue
            latency_ms = (loop.time() - scheduled) * 1e3
            return outcome.status, outcome, latency_ms

    try:
        # Connections open inside the try so a mid-list refusal (fd limit,
        # server backlog) still closes the ones already established.
        for _ in range(min(connections, max(1, len(queries)))):
            clients.append(await QueryClient.connect(host, port))
        started = loop.time()
        settled = await asyncio.gather(
            *(one(i, q, a) for i, (q, a) in enumerate(zip(queries, arrivals_seconds))),
            return_exceptions=True,
        )
        wall = loop.time() - started
    finally:
        for client in clients:
            await client.close()

    latencies: List[float] = []
    outcomes: List[Tuple[int, JobOutcome]] = []
    completed = errors = total_paths = 0
    for index, entry in enumerate(settled):
        if isinstance(entry, BaseException):
            errors += 1
            continue
        status, outcome, latency_ms = entry
        if status == "shed":
            counters["shed"] += 1
            continue
        if status != "done":
            errors += 1
            continue
        completed += 1
        total_paths += outcome.total_paths
        latencies.append(latency_ms)
        if keep_outcomes:
            outcomes.append((index, outcome))
    return LoadReport(
        concurrency=len(clients),
        offered_rate=(len(queries) / arrivals_seconds[-1]) if len(queries) and arrivals_seconds[-1] > 0 else 0.0,
        wall_seconds=wall,
        completed=completed,
        errors=errors,
        total_paths=total_paths,
        latencies_ms=latencies,
        shed=counters["shed"],
        retried=counters["retried"],
        reassigned=counters["reassigned"],
        outcomes=outcomes,
    )
