"""The serving core: jobs, streaming delivery and worker-pool ownership.

:class:`QueryService` is the asyncio-facing layer over
:class:`~repro.core.engine.ExecutorCore`: it owns one graph image (published
to shared memory when the process backend is selected), one warm reverse-BFS
distance cache and one persistent worker pool, shared by every job for the
life of the service.  A *job* is one submitted workload; its per-query
results stream to an :class:`asyncio.Queue` the moment a worker finishes
them, so a network front end can ship frame ``n`` while query ``n+1`` is
still enumerating.

The bridge between the blocking executor world and asyncio is one *drive*
thread per active job (from a bounded pool): it performs the warm phase,
consumes the run's chunk stream and hands events into the event loop with
``call_soon_threadsafe``.  Cancellation flows the other way — a flag the
drive thread and the executor check between chunks/queries.
"""

from __future__ import annotations

import asyncio
import enum
import itertools
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import AsyncIterator, Dict, List, Optional, Sequence, Tuple

from repro.core.algorithm import Algorithm
from repro.core.engine import ExecutorCore, StreamRun
from repro.core.native import warmup as native_warmup
from repro.core.listener import RunConfig
from repro.core.query import Query
from repro.core.result import EnumerationStats, QueryResult
from repro.errors import ServiceOverloaded
from repro.graph.digraph import DiGraph

__all__ = ["JobState", "ServiceJob", "QueryService"]


class JobState(enum.Enum):
    """Lifecycle of a submitted job."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    CANCELLED = "cancelled"
    FAILED = "failed"
    #: Admitted but shed before execution (queue delay past the budget).
    SHED = "shed"


#: Events delivered on a job's queue:
#: ``("result", position, QueryResult)`` — one completed query;
#: ``("done", info)`` / ``("cancelled", delivered)`` / ``("error", message)``
#: / ``("overloaded", info)`` — exactly one terminal event per job.
JobEvent = Tuple


class ServiceJob:
    """One submitted workload and its streaming event queue."""

    def __init__(self, job_id: str, num_queries: int, loop: asyncio.AbstractEventLoop) -> None:
        self.id = job_id
        self.num_queries = num_queries
        self.state = JobState.PENDING
        #: Results delivered so far (drive-thread side counter).
        self.delivered = 0
        self._loop = loop
        self._queue: "asyncio.Queue[JobEvent]" = asyncio.Queue()
        self._cancel = threading.Event()
        self._run: Optional[StreamRun] = None
        self._drive_future = None
        #: Stamped by ``QueryService.submit`` on admission; queue delay is
        #: measured against it when the drive slot finally comes up.
        self._enqueued_monotonic = time.monotonic()

    def cancel(self) -> None:
        """Request cancellation; safe from any thread, idempotent.

        Queries not yet started are dropped; the job's terminal event
        becomes ``cancelled`` unless it already completed.
        """
        self._cancel.set()
        run = self._run
        if run is not None:
            run.cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancel.is_set()

    async def events(self) -> AsyncIterator[JobEvent]:
        """Yield streamed events until (and including) the terminal one."""
        while True:
            event = await self._queue.get()
            yield event
            if event[0] in ("done", "cancelled", "error", "overloaded"):
                return

    # -- drive-thread side --------------------------------------------- #
    def _deliver(self, event: JobEvent) -> None:
        try:
            self._loop.call_soon_threadsafe(self._queue.put_nowait, event)
        except RuntimeError:  # pragma: no cover - loop already closed
            pass


@dataclass
class ServiceStats:
    """Monotonic service counters (guarded by the service lock)."""

    jobs_submitted: int = 0
    jobs_completed: int = 0
    jobs_cancelled: int = 0
    jobs_failed: int = 0
    jobs_shed: int = 0
    queries_submitted: int = 0
    queries_completed: int = 0
    queries_admitted: int = 0
    queries_shed: int = 0
    queries_expired: int = 0
    queue_depth_high_water: int = 0
    paths_streamed: int = 0
    active_jobs: Dict[str, "ServiceJob"] = field(default_factory=dict)


class QueryService:
    """A long-lived query service over one graph.

    Parameters mirror the batch executors: ``processes > 1`` selects the
    process backend of :class:`~repro.core.engine.ExecutorCore` (shared
    graph image, packed distance cache, worker processes), otherwise a
    ``threads``-wide thread backend serves jobs in-process — the right
    default for small graphs and tests, and the only mode that stops
    mid-shard on cancellation.

    One service hosts many concurrent jobs: they share the worker pool, the
    distance cache (a query whose ``(target, k)`` any earlier job warmed
    skips its reverse BFS) and the ``max_concurrent_jobs``-wide drive pool.

    Admission control: ``max_pending_queries`` bounds the number of
    admitted-but-unfinished queries — a submit that would exceed it raises
    :class:`~repro.errors.ServiceOverloaded` with a retry-after estimate
    derived from recent service times.  ``max_queue_delay`` (seconds) sheds
    a job whose drive slot came up too late (terminal ``overloaded`` event
    instead of execution), and — only while either knob is set — a job whose
    per-query ``time_limit_seconds`` fully elapsed *while queued* is
    answered with deadline results without ever reaching a worker.  Both
    knobs default to off, and off means *exactly* the unhardened semantics:
    an unconfigured server still runs already-expired queries, because the
    engine's own deadline handling (a few paths may be emitted before the
    first poll) is part of the byte-identical-to-inline contract.
    """

    #: Clamp window of the retry-after hint (seconds).
    _RETRY_AFTER_BOUNDS = (0.05, 5.0)

    def __init__(
        self,
        graph: DiGraph,
        *,
        algorithm: Optional[Algorithm] = None,
        processes: int = 1,
        threads: int = 2,
        shards: Optional[int] = None,
        start_method: Optional[str] = None,
        max_cached: int = 1024,
        max_concurrent_jobs: int = 32,
        shard_id: Optional[int] = None,
        max_pending_queries: Optional[int] = None,
        max_queue_delay: Optional[float] = None,
    ) -> None:
        if processes < 1:
            raise ValueError("processes must be at least 1")
        if threads < 1:
            raise ValueError("threads must be at least 1")
        if max_pending_queries is not None and max_pending_queries < 1:
            raise ValueError("max_pending_queries must be at least 1")
        if max_queue_delay is not None and max_queue_delay <= 0.0:
            raise ValueError("max_queue_delay must be positive")
        self.graph = graph
        #: Identity of this host in a routed deployment (``repro serve
        #: --shard-id N``); ``None`` for a standalone server.  Reported in
        #: ``stats`` / ``pong`` frames so a router (and ``repro client
        #: --server-stats``) can attribute per-shard health.
        self.shard_id = shard_id
        backend = "process" if processes > 1 else "thread"
        self._core = ExecutorCore(
            graph,
            algorithm=algorithm,
            backend=backend,
            workers=processes if processes > 1 else threads,
            shards=shards,
            start_method=start_method,
            max_cached=max_cached,
        )
        self._drive_pool = ThreadPoolExecutor(
            max_workers=max(1, int(max_concurrent_jobs)), thread_name_prefix="repro-job"
        )
        # Warm the native engine's JIT compile cache before the first job:
        # compilation writes a disk cache, so worker processes spawned later
        # load it instead of compiling on a live query (p99 protection).
        # A no-op without the Numba toolchain.
        native_warmup()
        self.max_pending_queries = max_pending_queries
        self.max_queue_delay = max_queue_delay
        #: Hardening configured at all?  Gates the expired-in-queue fast
        #: path: an unconfigured server must stay byte-identical to inline.
        self._admission_active = (
            max_pending_queries is not None or max_queue_delay is not None
        )
        #: Admitted-but-unfinished queries (the pending-work gauge).
        self._pending_queries = 0
        #: EWMA of per-query service seconds, feeding the retry-after hint.
        self._ewma_query_seconds: Optional[float] = None
        self._stats = ServiceStats()
        self._lock = threading.Lock()
        self._job_ids = itertools.count(1)
        self._started_monotonic = time.monotonic()
        self._closed = False

    # -- introspection ------------------------------------------------- #
    @property
    def backend(self) -> str:
        """Worker backend of the underlying core (``process`` / ``thread``)."""
        return self._core.backend

    @property
    def workers(self) -> int:
        return self._core.workers

    @property
    def closed(self) -> bool:
        return self._closed

    def stats(self) -> Dict[str, object]:
        """A flat snapshot for the ``stats`` protocol frame."""
        with self._lock:
            counters = {
                "jobs_submitted": self._stats.jobs_submitted,
                "jobs_completed": self._stats.jobs_completed,
                "jobs_cancelled": self._stats.jobs_cancelled,
                "jobs_failed": self._stats.jobs_failed,
                "jobs_shed": self._stats.jobs_shed,
                "jobs_active": len(self._stats.active_jobs),
                "queries_submitted": self._stats.queries_submitted,
                "queries_completed": self._stats.queries_completed,
                "queries_admitted": self._stats.queries_admitted,
                "queries_shed": self._stats.queries_shed,
                "queries_expired": self._stats.queries_expired,
                "queries_inflight": self._pending_queries,
                "queue_depth_high_water": self._stats.queue_depth_high_water,
                "max_pending_queries": self.max_pending_queries,
                "max_queue_delay": self.max_queue_delay,
                "paths_streamed": self._stats.paths_streamed,
            }
        from repro._version import __version__
        from repro.server.protocol import PROTOCOL_VERSION

        session_stats = self._core.session.stats
        return {
            **counters,
            "backend": self.backend,
            "workers": self.workers,
            "shard_id": self.shard_id,
            "server_version": __version__,
            "protocol": PROTOCOL_VERSION,
            "current_epoch": self._core.current_epoch,
            **self._core.live_stats,
            "reverse_bfs_runs": session_stats.reverse_bfs_runs,
            "distance_cache_entries": len(self._core.session.export_distances()),
            "uptime_seconds": round(time.monotonic() - self._started_monotonic, 3),
            "graph_vertices": self.graph.num_vertices,
            "graph_edges": self.graph.num_edges,
            "graph_store": self.graph.store_backend,
            "graph_resident_bytes": self.graph.memory_usage()["resident_bytes"],
        }

    # -- job lifecycle ------------------------------------------------- #
    async def submit(
        self,
        queries: Sequence[Query],
        config: Optional[RunConfig] = None,
    ) -> ServiceJob:
        """Register a job and start driving it; returns immediately.

        The returned job's :meth:`ServiceJob.events` yields one ``result``
        event per query as workers complete them, then a terminal event.
        ``config.on_result`` must be unset (results stream as events
        instead); constraints are rejected by the core.

        Raises :class:`~repro.errors.ServiceOverloaded` (with a
        ``retry_after`` hint) when admitting the job would exceed
        ``max_pending_queries``.
        """
        if self._closed:
            raise RuntimeError("QueryService is closed")
        config = config if config is not None else RunConfig()
        loop = asyncio.get_running_loop()
        queries = list(queries)
        job = ServiceJob(f"job-{next(self._job_ids)}", len(queries), loop)
        with self._lock:
            self._stats.jobs_submitted += 1
            self._stats.queries_submitted += len(queries)
            limit = self.max_pending_queries
            if (
                limit is not None
                and queries
                and self._pending_queries + len(queries) > limit
            ):
                self._stats.jobs_shed += 1
                self._stats.queries_shed += len(queries)
                raise ServiceOverloaded(
                    "pending-work budget exhausted",
                    retry_after=self._retry_after_locked(),
                    pending=self._pending_queries,
                    limit=limit,
                )
            self._stats.queries_admitted += len(queries)
            self._pending_queries += len(queries)
            if self._pending_queries > self._stats.queue_depth_high_water:
                self._stats.queue_depth_high_water = self._pending_queries
            self._stats.active_jobs[job.id] = job
        job._enqueued_monotonic = time.monotonic()
        job._drive_future = self._drive_pool.submit(self._drive, job, queries, config)
        return job

    def _retry_after_locked(self) -> float:
        """Estimate seconds until capacity frees up (caller holds the lock).

        Pending work divided by worker parallelism, priced at the EWMA of
        recent per-query service times, clamped so a cold service still
        answers something sane.
        """
        lo, hi = self._RETRY_AFTER_BOUNDS
        per_query = self._ewma_query_seconds if self._ewma_query_seconds else lo
        estimate = per_query * max(1, self._pending_queries) / max(1, self.workers)
        return min(hi, max(lo, estimate))

    async def run(
        self,
        queries: Sequence[Query],
        config: Optional[RunConfig] = None,
    ) -> List[QueryResult]:
        """Submit and await one workload, returning results in workload order."""
        queries = list(queries)
        job = await self.submit(queries, config)
        results: List[Optional[QueryResult]] = [None] * len(queries)
        async for event in job.events():
            if event[0] == "result":
                results[event[1]] = event[2]
            elif event[0] == "error":
                raise RuntimeError(event[1])
            elif event[0] == "cancelled":
                raise asyncio.CancelledError(f"job {job.id} cancelled")
        return results  # type: ignore[return-value]

    # -- mutation ------------------------------------------------------- #
    def mutate(
        self,
        add: Sequence[Tuple[int, int]] = (),
        remove: Sequence[Tuple[int, int]] = (),
    ) -> Dict[str, object]:
        """Apply one edge batch; blocking (call via an executor from asyncio).

        Delegates to :meth:`~repro.core.engine.ExecutorCore.mutate`: the new
        epoch publishes atomically, jobs already streaming keep their pinned
        snapshot, and the service's own graph reference moves forward so the
        ``stats`` frame describes what new jobs run against.
        """
        if self._closed:
            raise RuntimeError("QueryService is closed")
        info = self._core.mutate(add=add, remove=remove)
        self.graph = self._core.graph
        return info

    def _drive(self, job: ServiceJob, queries: List[Query], config: RunConfig) -> None:
        """Drive one job to completion (runs on a drive-pool thread)."""
        started = time.perf_counter()
        total_paths = 0
        try:
            if job.cancelled:
                self._finish(job, JobState.CANCELLED)
                job._deliver(("cancelled", 0))
                return
            queue_delay = time.monotonic() - job._enqueued_monotonic
            if self.max_queue_delay is not None and queue_delay > self.max_queue_delay:
                with self._lock:
                    self._stats.jobs_shed += 1
                    self._stats.queries_shed += job.num_queries
                    retry_after = self._retry_after_locked()
                self._finish(job, JobState.SHED)
                job._deliver(
                    (
                        "overloaded",
                        {
                            "retry_after_ms": round(retry_after * 1e3, 3),
                            "queue_delay_ms": round(queue_delay * 1e3, 3),
                        },
                    )
                )
                return
            if (
                self._admission_active
                and config.time_limit_seconds is not None
                and queue_delay >= config.time_limit_seconds
            ):
                # The per-query deadline fully elapsed while the job waited
                # for a drive slot: answer every position with a deadline
                # result instead of burning workers on queries whose callers
                # have already timed out.
                with self._lock:
                    self._stats.queries_expired += job.num_queries
                algorithm_name = self._core.algorithm.name
                for position, query in enumerate(queries):
                    job.delivered += 1
                    job._deliver(
                        (
                            "result",
                            position,
                            QueryResult(
                                query.source,
                                query.target,
                                query.k,
                                algorithm_name,
                                0,
                                [] if config.store_paths else None,
                                EnumerationStats(timed_out=True),
                                response_k=config.response_k,
                            ),
                        )
                    )
                self._finish(job, JobState.DONE, queries=job.delivered, paths=0)
                job._deliver(
                    (
                        "done",
                        {
                            "queries": job.delivered,
                            "total_paths": 0,
                            "expired_in_queue": True,
                            "wall_ms": round((time.perf_counter() - started) * 1e3, 3),
                        },
                    )
                )
                return
            job.state = JobState.RUNNING
            run = self._core.start(queries, config, chunk_queries=1)
            job._run = run
            if job.cancelled:
                run.cancel()
            # Charge each warm-phase reverse BFS to the first query (in
            # workload order) of its key, as the batch executors do, so a
            # served result carries the same cache-hit flag a sequential
            # session run would report.
            paying_positions: set = set()
            if self._core.distance_aware:
                first_position: Dict[Tuple[int, int], int] = {}
                for position, query in enumerate(queries):
                    first_position.setdefault((query.target, query.k), position)
                paying_positions = {
                    first_position[key] for key in run.fresh if key in first_position
                }
            for chunk in run.chunks():
                for position, result in chunk:
                    if self._core.distance_aware:
                        result.stats.bfs_cache_hit = position not in paying_positions
                    job.delivered += 1
                    total_paths += result.count
                    job._deliver(("result", position, result))
            if job.delivered == job.num_queries:
                self._finish(
                    job,
                    JobState.DONE,
                    queries=job.delivered,
                    paths=total_paths,
                    wall_seconds=time.perf_counter() - started,
                )
                job._deliver(
                    (
                        "done",
                        {
                            "queries": job.delivered,
                            "total_paths": total_paths,
                            "wall_ms": round((time.perf_counter() - started) * 1e3, 3),
                        },
                    )
                )
            elif job.cancelled:
                self._finish(job, JobState.CANCELLED, queries=job.delivered, paths=total_paths)
                job._deliver(("cancelled", job.delivered))
            else:
                raise RuntimeError(
                    f"stream ended with {job.num_queries - job.delivered} results missing"
                )
        except Exception as error:  # noqa: BLE001 - forwarded to the client
            self._finish(job, JobState.FAILED, queries=job.delivered, paths=total_paths)
            job._deliver(("error", f"{type(error).__name__}: {error}"))

    def _finish(
        self,
        job: ServiceJob,
        state: JobState,
        *,
        queries: int = 0,
        paths: int = 0,
        wall_seconds: Optional[float] = None,
    ) -> None:
        job.state = state
        with self._lock:
            if self._stats.active_jobs.pop(job.id, None) is not None:
                # Release the job's pending-work budget exactly once (both
                # _drive and _shutdown_blocking may try to finish a job).
                self._pending_queries = max(0, self._pending_queries - job.num_queries)
            self._stats.queries_completed += queries
            self._stats.paths_streamed += paths
            if state is JobState.DONE:
                self._stats.jobs_completed += 1
                if wall_seconds is not None and job.num_queries > 0:
                    per_query = wall_seconds / job.num_queries
                    if self._ewma_query_seconds is None:
                        self._ewma_query_seconds = per_query
                    else:
                        self._ewma_query_seconds += 0.2 * (per_query - self._ewma_query_seconds)
            elif state is JobState.CANCELLED:
                self._stats.jobs_cancelled += 1
            elif state is JobState.FAILED:
                self._stats.jobs_failed += 1

    # -- shutdown ------------------------------------------------------ #
    async def close(self) -> None:
        """Cancel active jobs and release the pool + shared segments.

        Blocking teardown (pool joins, segment unlinks) runs on the default
        executor so the event loop keeps serving terminal frames meanwhile.
        Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        with self._lock:
            active = list(self._stats.active_jobs.values())
        for job in active:
            job.cancel()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self._shutdown_blocking)

    def close_sync(self) -> None:
        """Synchronous variant of :meth:`close` for non-asyncio teardown."""
        if self._closed:
            return
        self._closed = True
        with self._lock:
            active = list(self._stats.active_jobs.values())
        for job in active:
            job.cancel()
        self._shutdown_blocking()

    def _shutdown_blocking(self) -> None:
        self._drive_pool.shutdown(wait=True, cancel_futures=True)
        # A job queued behind max_concurrent_jobs whose _drive never ran was
        # cancelled as a bare future — nobody delivered its terminal event,
        # and an events()/run() awaiter would hang on the empty queue.
        with self._lock:
            stranded = list(self._stats.active_jobs.values())
        for job in stranded:
            future = job._drive_future
            if future is not None and future.cancelled():
                self._finish(job, JobState.CANCELLED)
                job._deliver(("cancelled", 0))
        self._core.close()
