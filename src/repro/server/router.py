"""Distributed shard router: one logical database over N serve hosts.

The router is the graph-free tier between the public API and a fleet of
``repro serve`` shard hosts (the thin-server-over-graph-image shape
swh-graph uses to serve multi-billion-edge graphs).  It owns exactly three
things:

* a **shard map** (:class:`ShardMap`) — rendezvous consistent hashing over
  query *targets* (:func:`repro.workloads.queries.consistent_hash`), with a
  replica set per shard.  Hashing by target keeps every ``(target, k)``
  distance-cache key on one host across batches and restarts, so shard
  caches stay hot, and growing the fleet only remaps ``1/(n+1)`` of the
  target space;
* **persistent connections** (:class:`ShardChannel`) — one demultiplexing
  :class:`~repro.server.client.QueryClient` per replica address, shared by
  every routed job, redialled with exponential backoff + jitter when lost;
* **routing state** (:class:`ShardRouter`) — each submitted batch is split
  by target shard, fanned out as per-shard submit frames, and the streamed
  result/path frames are merged back into one job with positions remapped
  to the original workload order.  Cancel fans out to every in-flight
  shard job.

Robustness and tail-latency machinery layer on top of that core:

* **failover** — a shard attempt that dies (connection loss mid-stream,
  dial failure) is retried on the next replica, resubmitting only the
  positions still outstanding; results already merged are never recomputed;
* **hedged requests** — when a shard attempt straggles past a
  latency-percentile-derived delay (p95 of recent winning attempts,
  clamped), the outstanding sub-batch is duplicated to another replica.
  The first result per position wins, duplicates are dropped exactly once
  each, and the losing attempt receives a cancel frame.

:class:`RouterServer` / :func:`route_forever` expose the router over the
same length-prefixed frame protocol the shards speak, so any existing
client — ``repro client``, the ``remote`` backend, another router — can
talk to ``repro route`` unchanged; ``Database("router://host:port")`` and
shard-map files wire it into the public API.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import json
import math
import signal
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import AsyncIterator, Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ConnectionLost, ReproError
from repro.server.client import QueryClient, ReconnectPolicy
from repro.server.protocol import (
    DEFAULT_PORT,
    DEFAULT_ROUTER_PORT,
    PROTOCOL_VERSION,
    FrameError,
    read_frame,
    write_frame,
)
from repro.workloads.queries import consistent_hash

__all__ = [
    "parse_address",
    "ShardMap",
    "ShardChannel",
    "RouterJob",
    "ShardRouter",
    "RouterServer",
    "route_forever",
]


def parse_address(text: str) -> Tuple[str, int]:
    """Parse one ``host:port`` replica address (``tcp://`` prefix allowed)."""
    candidate = text[len("tcp://"):] if text.startswith("tcp://") else text
    host, separator, port = candidate.strip().rpartition(":")
    if not separator or not host or not port.isdigit():
        raise ReproError(f"malformed replica address {text!r}: expected host:port")
    return host, int(port)


@dataclass(frozen=True)
class ShardMap:
    """The routing table: per-shard replica address lists.

    Shard ``i`` of a target is :func:`consistent_hash(target, num_shards)
    <repro.workloads.queries.consistent_hash>`; ``shards[i]`` lists the
    replica endpoints serving that shard (all replicas of one shard must
    host the same graph image).  The first replica is the shard's primary;
    later entries are failover/hedging candidates.
    """

    shards: Tuple[Tuple[Tuple[str, int], ...], ...]

    def __post_init__(self) -> None:
        if not self.shards:
            raise ReproError("a shard map needs at least one shard")
        for index, replicas in enumerate(self.shards):
            if not replicas:
                raise ReproError(f"shard {index} has no replicas")

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def num_replicas(self) -> int:
        return sum(len(replicas) for replicas in self.shards)

    def shard_of(self, target) -> int:
        """The shard index owning ``target`` (stable across processes)."""
        return consistent_hash(target, self.num_shards)

    @classmethod
    def from_entries(cls, entries: Sequence[str]) -> "ShardMap":
        """Build a map from CLI-style entries: one ``h:p[,h:p...]`` per shard."""
        shards = []
        for entry in entries:
            replicas = tuple(
                parse_address(part) for part in str(entry).split(",") if part.strip()
            )
            shards.append(replicas)
        return cls(tuple(shards))

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ShardMap":
        """Build a map from the shard-map file shape (see :meth:`to_dict`)."""
        raw = payload.get("shards")
        if not isinstance(raw, list):
            raise ReproError("shard map must carry a 'shards' list")
        shards = []
        for entry in raw:
            if isinstance(entry, dict):
                entry = entry.get("replicas")
            if not isinstance(entry, (list, tuple)):
                raise ReproError(
                    "each shard must be a list of addresses or "
                    "{'replicas': [...]}"
                )
            shards.append(tuple(parse_address(str(address)) for address in entry))
        return cls(tuple(shards))

    @classmethod
    def from_file(cls, path) -> "ShardMap":
        """Load the JSON shard-map file format::

            {"shards": [
              {"replicas": ["127.0.0.1:7301", "127.0.0.1:7401"]},
              {"replicas": ["127.0.0.1:7302"]}
            ]}

        A bare list per shard (``"shards": [["h:p", ...], ...]``) is also
        accepted.
        """
        text = Path(path).read_text(encoding="utf-8")
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ReproError(f"unreadable shard map {path}: {error}") from None
        return cls.from_dict(payload)

    def to_dict(self) -> Dict[str, object]:
        return {
            "shards": [
                {"replicas": [f"{host}:{port}" for host, port in replicas]}
                for replicas in self.shards
            ]
        }


class ShardChannel:
    """Persistent demultiplexed connections to one shard's replica set.

    One :class:`~repro.server.client.QueryClient` per replica address,
    created lazily and shared by every routed job (the protocol
    demultiplexes jobs by id on one socket).  A dead client is replaced on
    the next acquisition, dialling under the router's backoff policy; the
    per-address lock stops two concurrent jobs from racing one redial.

    The channel also keeps the per-replica **circuit breaker**:
    ``breaker_threshold`` consecutive failed attempts open a replica's
    breaker, and :meth:`pick_replica` then routes around it so a flapping
    host stops absorbing attempts (and hedges).  After
    ``breaker_cooldown`` seconds one half-open probe attempt is let
    through — success closes the breaker, failure re-opens it for another
    cooldown.
    """

    def __init__(
        self,
        shard_id: int,
        replicas: Sequence[Tuple[str, int]],
        policy: ReconnectPolicy,
        *,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 5.0,
    ) -> None:
        self.shard_id = shard_id
        self.replicas = tuple(replicas)
        self.breaker_threshold = int(breaker_threshold)
        self.breaker_cooldown = float(breaker_cooldown)
        self._policy = policy
        self._probe_policy = ReconnectPolicy(attempts=1)
        self._clients: Dict[Tuple[str, int], QueryClient] = {}
        self._locks: Dict[Tuple[str, int], asyncio.Lock] = {}
        #: Consecutive failures per replica index (reset on any success).
        self._failures: Dict[int, int] = {}
        #: Loop time each open breaker last tripped/re-tripped.
        self._opened_at: Dict[int, float] = {}
        #: Replicas whose half-open probe is currently in flight.
        self._half_open: set = set()

    def replica_index(self, attempt: int) -> int:
        """Replica for attempt number ``attempt`` (0-based): primary first."""
        return attempt % len(self.replicas)

    # -- circuit breaker ------------------------------------------------ #
    def record_success(self, replica: int) -> None:
        """A replica answered: reset its failure streak, close its breaker."""
        replica %= len(self.replicas)
        self._failures.pop(replica, None)
        self._opened_at.pop(replica, None)
        self._half_open.discard(replica)

    def record_failure(self, replica: int) -> bool:
        """Count one failed attempt; ``True`` when this trip *opened* the breaker."""
        replica %= len(self.replicas)
        self._half_open.discard(replica)
        count = self._failures.get(replica, 0) + 1
        self._failures[replica] = count
        if count >= self.breaker_threshold:
            self._opened_at[replica] = asyncio.get_event_loop().time()
        return count == self.breaker_threshold

    def breaker_state(self, replica: int) -> str:
        """``"closed"``, ``"open"`` or ``"half-open"`` (for stats)."""
        replica %= len(self.replicas)
        if self._failures.get(replica, 0) < self.breaker_threshold:
            return "closed"
        if replica in self._half_open:
            return "half-open"
        elapsed = asyncio.get_event_loop().time() - self._opened_at.get(replica, 0.0)
        return "half-open" if elapsed >= self.breaker_cooldown else "open"

    def _breaker_blocks(self, replica: int) -> bool:
        """Whether the breaker currently refuses attempts at ``replica``.

        A breaker past its cooldown admits exactly one half-open probe:
        the first caller through marks the replica half-open (and attempts
        it); further callers keep being refused until the probe settles via
        :meth:`record_success` / :meth:`record_failure`.
        """
        if self._failures.get(replica, 0) < self.breaker_threshold:
            return False
        if replica in self._half_open:
            return True
        elapsed = asyncio.get_event_loop().time() - self._opened_at.get(replica, 0.0)
        if elapsed >= self.breaker_cooldown:
            self._half_open.add(replica)
            return False
        return True

    def pick_replica(self, attempt: int) -> Tuple[int, int]:
        """Replica for this attempt, skipping open breakers.

        Returns ``(replica, skipped)`` — ``skipped`` counts replicas
        routed around.  With every breaker open, the plain round-robin
        choice is returned (refusing all replicas would turn a flap into a
        full outage).
        """
        count = len(self.replicas)
        base = attempt % count
        skipped = 0
        for step in range(count):
            candidate = (base + step) % count
            if not self._breaker_blocks(candidate):
                return candidate, skipped
            skipped += 1
        return base, skipped

    async def client(self, replica: int, *, probe: bool = False) -> QueryClient:
        """A live client for replica ``replica``; dials when needed.

        ``probe=True`` dials at most once with no backoff — used by health
        probes that must not stall on a dead replica.  Raises
        :class:`~repro.errors.ConnectionLost` when the replica stays
        unreachable.
        """
        address = self.replicas[replica % len(self.replicas)]
        lock = self._locks.setdefault(address, asyncio.Lock())
        async with lock:
            existing = self._clients.get(address)
            if existing is not None and existing.connected:
                return existing
            if existing is not None:
                self._clients.pop(address, None)
                await existing.close()
            client = await QueryClient.connect(
                address[0],
                address[1],
                policy=self._probe_policy if probe else self._policy,
            )
            self._clients[address] = client
            return client

    async def close(self) -> None:
        clients, self._clients = list(self._clients.values()), {}
        for client in clients:
            await client.close()


@dataclass
class RouterStatsCounters:
    """Monotonic routing counters (event-loop confined, no lock needed)."""

    jobs_routed: int = 0
    jobs_completed: int = 0
    jobs_cancelled: int = 0
    jobs_failed: int = 0
    queries_routed: int = 0
    results_merged: int = 0
    duplicates_dropped: int = 0
    failovers: int = 0
    hedges_fired: int = 0
    hedge_wins: int = 0
    loser_cancels: int = 0
    cancels_forwarded: int = 0
    breaker_trips: int = 0
    breaker_skips: int = 0
    shard_overloads: int = 0


class RouterJob:
    """One routed batch: merged frame queue plus fan-out bookkeeping."""

    def __init__(self, job_id: str, num_queries: int) -> None:
        self.id = job_id
        self.num_queries = num_queries
        self.queue: "asyncio.Queue[Dict[str, object]]" = asyncio.Queue()
        #: Global positions whose result already reached the merged stream —
        #: the exactly-once gate for hedged duplicates and failover retries.
        self.delivered: Set[int] = set()
        self.total_paths = 0
        self.cancel_event = asyncio.Event()
        #: Live shard-side attempts: key → (shard id, client, shard-side
        #: job id).  Cancel fan-out walks all of it; loser cancellation only
        #: the entries of the finishing attempt's own shard.
        self.active: Dict[int, Tuple[int, QueryClient, str]] = {}
        self.tasks: List[asyncio.Task] = []
        self.error: Optional[str] = None
        self.started = asyncio.get_event_loop().time()
        #: Latest retry-after hint (seconds) from an ``overloaded`` shard.
        self.retry_after_seconds = 0.05

    @property
    def cancelled(self) -> bool:
        return self.cancel_event.is_set()

    def claim(self, position: int) -> bool:
        """Atomically claim one global position; ``False`` for a duplicate.

        Runs on the event loop with no awaits between check and insert, so
        two racing attempts (primary vs. hedge, or failover overlap) can
        never both win one position.
        """
        if position in self.delivered:
            return False
        self.delivered.add(position)
        return True

    def fail(self, message: str) -> None:
        if self.error is None:
            self.error = message

    def emit(self, frame: Dict[str, object]) -> None:
        self.queue.put_nowait(frame)

    async def frames(self) -> AsyncIterator[Dict[str, object]]:
        """Yield merged frames until (and including) the terminal one."""
        while True:
            frame = await self.queue.get()
            yield frame
            if frame["type"] in ("done", "cancelled", "error"):
                return


class ShardRouter:
    """The routing core: fan-out, merge, failover, hedging.  Holds no graph.

    All methods run on one event loop.  ``max_attempts`` bounds how many
    replica attempts one shard sub-batch gets before the whole job fails;
    hedging needs at least two replicas on a shard to do anything.  The
    hedge delay is the ``hedge_percentile``-th percentile of recent
    *winning* attempt latencies, clamped to
    ``[hedge_min_delay, hedge_max_delay]`` — until ``hedge_min_samples``
    attempts have completed, ``hedge_initial_delay`` is used.
    """

    def __init__(
        self,
        shard_map: ShardMap,
        *,
        hedge: bool = True,
        hedge_percentile: float = 95.0,
        hedge_initial_delay: float = 0.1,
        hedge_min_delay: float = 0.025,
        hedge_max_delay: float = 2.0,
        hedge_min_samples: int = 8,
        max_attempts: int = 4,
        policy: Optional[ReconnectPolicy] = None,
        latency_window: int = 256,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 5.0,
    ) -> None:
        if not 0.0 < hedge_percentile <= 100.0:
            raise ReproError("hedge_percentile must lie in (0, 100]")
        if max_attempts < 1:
            raise ReproError("max_attempts must be positive")
        if breaker_threshold < 1:
            raise ReproError("breaker_threshold must be positive")
        if breaker_cooldown <= 0.0:
            raise ReproError("breaker_cooldown must be positive")
        self.shard_map = shard_map
        self.hedge = hedge
        self.hedge_percentile = hedge_percentile
        self.hedge_initial_delay = hedge_initial_delay
        self.hedge_min_delay = hedge_min_delay
        self.hedge_max_delay = hedge_max_delay
        self.hedge_min_samples = hedge_min_samples
        self.max_attempts = max_attempts
        self.policy = policy if policy is not None else ReconnectPolicy(attempts=3)
        self.channels = [
            ShardChannel(
                index,
                replicas,
                self.policy,
                breaker_threshold=breaker_threshold,
                breaker_cooldown=breaker_cooldown,
            )
            for index, replicas in enumerate(shard_map.shards)
        ]
        self.counters = RouterStatsCounters()
        self._latencies: Deque[float] = deque(maxlen=latency_window)
        self._job_ids = itertools.count(1)
        self._attempt_ids = itertools.count(1)
        self._closed = False

    # -- hedge delay ---------------------------------------------------- #
    def record_latency(self, seconds: float) -> None:
        self._latencies.append(seconds)

    def hedge_delay(self) -> float:
        """Current hedge trigger in seconds (percentile-derived, clamped)."""
        clamp = lambda v: min(self.hedge_max_delay, max(self.hedge_min_delay, v))  # noqa: E731
        if len(self._latencies) < self.hedge_min_samples:
            return clamp(self.hedge_initial_delay)
        ordered = sorted(self._latencies)
        rank = max(0, math.ceil(self.hedge_percentile / 100.0 * len(ordered)) - 1)
        return clamp(ordered[rank])

    # -- job lifecycle -------------------------------------------------- #
    async def submit(self, triples: Sequence[Sequence[object]], opts: Dict[str, object]) -> RouterJob:
        """Route one batch; returns the job whose :meth:`RouterJob.frames`
        streams the merged result frames (positions in workload space)."""
        if self._closed:
            raise RuntimeError("ShardRouter is closed")
        triples = [list(triple) for triple in triples]
        job = RouterJob(f"r{next(self._job_ids)}", len(triples))
        self.counters.jobs_routed += 1
        self.counters.queries_routed += len(triples)
        shards: Dict[int, List[int]] = {}
        for position, triple in enumerate(triples):
            shards.setdefault(self.shard_map.shard_of(triple[1]), []).append(position)
        for shard_id, positions in shards.items():
            job.tasks.append(
                asyncio.ensure_future(
                    self._run_shard(job, shard_id, positions, triples, dict(opts))
                )
            )
        asyncio.ensure_future(self._finish(job))
        return job

    async def cancel(self, job: RouterJob) -> None:
        """Cancel fan-out: flag the job and cancel every in-flight shard job."""
        job.cancel_event.set()
        for _shard, client, shard_job in list(job.active.values()):
            with contextlib.suppress(ConnectionError, OSError, RuntimeError):
                await client.cancel(shard_job)
                self.counters.cancels_forwarded += 1

    async def _finish(self, job: RouterJob) -> None:
        """Emit the job's terminal frame once every shard task settled."""
        outcomes = await asyncio.gather(*job.tasks, return_exceptions=True)
        for outcome in outcomes:
            if isinstance(outcome, BaseException):
                job.fail(f"{type(outcome).__name__}: {outcome}")
        loop = asyncio.get_event_loop()
        if len(job.delivered) == job.num_queries:
            self.counters.jobs_completed += 1
            job.emit(
                {
                    "type": "done",
                    "id": job.id,
                    "queries": len(job.delivered),
                    "total_paths": job.total_paths,
                    "wall_ms": round((loop.time() - job.started) * 1e3, 3),
                }
            )
        elif job.cancelled and job.error is None:
            self.counters.jobs_cancelled += 1
            job.emit({"type": "cancelled", "id": job.id, "delivered": len(job.delivered)})
        else:
            self.counters.jobs_failed += 1
            job.emit(
                {
                    "type": "error",
                    "id": job.id,
                    "error": job.error
                    or f"{job.num_queries - len(job.delivered)} results missing",
                }
            )

    # -- per-shard fan-out ---------------------------------------------- #
    async def _run_shard(
        self,
        job: RouterJob,
        shard_id: int,
        positions: List[int],
        triples: List[List[object]],
        opts: Dict[str, object],
    ) -> None:
        """Drive one shard's sub-batch to completion: retries, failover, hedging."""
        channel = self.channels[shard_id]
        outstanding: Set[int] = set(positions)
        for attempt in range(self.max_attempts):
            if not outstanding or job.cancelled:
                return
            replica, skipped = channel.pick_replica(attempt)
            self.counters.breaker_skips += skipped
            primary = asyncio.ensure_future(
                self._attempt(job, channel, replica, outstanding, triples, opts)
            )
            hedge_task = None
            if self.hedge and len(channel.replicas) > 1:
                hedge_task = asyncio.ensure_future(
                    self._hedge(job, channel, replica, outstanding, triples, opts, primary)
                )
            status = await primary
            # Primary attempts feed the breaker (hedges race on a different
            # replica and report their own status out of band).
            if status in ("done", "cancelled", "overloaded"):
                channel.record_success(replica)
            elif status in ("lost", "unreachable"):
                if channel.record_failure(replica):
                    self.counters.breaker_trips += 1
            if hedge_task is not None:
                if status == "done" and not outstanding:
                    hedge_task.cancel()
                    with contextlib.suppress(asyncio.CancelledError):
                        await hedge_task
                else:
                    # The hedge may still be racing (or about to rescue a
                    # lost primary): let it run to its own conclusion.
                    await hedge_task
            if not outstanding or job.cancelled:
                return
            if status == "error":
                # A shard-side rejection (malformed query, unknown engine)
                # is permanent: retrying elsewhere would fail identically.
                await self.cancel(job)
                return
            if status == "overloaded":
                # The shard shed the sub-batch: wait out its retry-after
                # hint, then re-attempt — a reject is live capacity
                # signalling, not a replica failure, so the breaker stays
                # untouched.
                self.counters.shard_overloads += 1
                await asyncio.sleep(
                    min(2.0, max(0.05, job.retry_after_seconds))
                )
                continue
            if status in ("lost", "unreachable"):
                self.counters.failovers += 1
                continue
            # "done" with outstanding left means the shard answered fewer
            # results than asked (should not happen) — retry the rest.
        job.fail(
            f"shard {shard_id}: {len(outstanding)} queries undelivered after "
            f"{self.max_attempts} attempts"
        )
        await self.cancel(job)

    async def _hedge(
        self,
        job: RouterJob,
        channel: ShardChannel,
        primary_replica: int,
        outstanding: Set[int],
        triples: List[List[object]],
        opts: Dict[str, object],
        primary: asyncio.Task,
    ) -> str:
        """Duplicate a straggling sub-batch to the next replica.

        Waits the percentile-derived delay; if the primary attempt has not
        finished by then, the positions still outstanding are submitted to
        another replica and the two attempts race — :meth:`RouterJob.claim`
        keeps every position exactly-once, and whichever attempt finishes
        the shard cancels the other.
        """
        await asyncio.wait({primary}, timeout=self.hedge_delay())
        if primary.done() or not outstanding or job.cancelled:
            return "idle"
        self.counters.hedges_fired += 1
        replica, skipped = channel.pick_replica(primary_replica + 1)
        self.counters.breaker_skips += skipped
        status = await self._attempt(
            job,
            channel,
            replica,
            outstanding,
            triples,
            opts,
            hedged=True,
        )
        return status

    async def _attempt(
        self,
        job: RouterJob,
        channel: ShardChannel,
        replica: int,
        outstanding: Set[int],
        triples: List[List[object]],
        opts: Dict[str, object],
        *,
        hedged: bool = False,
    ) -> str:
        """One submit-and-stream attempt against one replica.

        Returns ``"done"`` (terminal done frame seen), ``"cancelled"``,
        ``"lost"`` (connection died mid-stream), ``"unreachable"`` (dial
        failed), ``"overloaded"`` (the shard shed the sub-batch; the
        retry-after hint lands in ``job.retry_after_seconds``) or
        ``"error"`` (the shard rejected the sub-batch).  Result
        frames are merged into ``job`` with positions remapped from the
        sub-batch's local space to the workload's global space; ``path``
        frames buffer per local position and flush only when that
        position's result wins, so a losing duplicate contributes nothing.
        """
        try:
            client = await channel.client(replica)
        except ConnectionLost:
            return "unreachable"
        sub_positions = sorted(outstanding)
        if not sub_positions:
            return "done"
        loop = asyncio.get_event_loop()
        started = loop.time()
        try:
            shard_job = await client.submit(
                [triples[position] for position in sub_positions],
                **self._submit_kwargs(opts),
            )
        except (ConnectionError, OSError):
            return "lost"
        key = next(self._attempt_ids)
        job.active[key] = (channel.shard_id, client, shard_job)
        won_as_hedge = False
        claimed_any = False
        loser_cancelled = False
        pending_paths: Dict[int, List[Dict[str, object]]] = {}
        try:
            async for frame in client.frames(shard_job):
                kind = frame["type"]
                if kind == "path":
                    local = int(frame["position"])
                    pending_paths.setdefault(local, []).append(frame)
                elif kind == "result":
                    local = int(frame["position"])
                    if local >= len(sub_positions):
                        job.fail(f"shard {channel.shard_id} returned position {local} "
                                 f"for a {len(sub_positions)}-query sub-batch")
                        return "error"
                    position = sub_positions[local]
                    if job.claim(position):
                        claimed_any = True
                        outstanding.discard(position)
                        self.counters.results_merged += 1
                        job.total_paths += int(frame.get("count", 0))
                        if hedged and not won_as_hedge:
                            won_as_hedge = True
                            self.counters.hedge_wins += 1
                        for buffered in pending_paths.pop(local, ()):
                            job.emit({**buffered, "id": job.id, "position": position})
                        job.emit({**frame, "id": job.id, "position": position})
                    else:
                        self.counters.duplicates_dropped += 1
                        pending_paths.pop(local, None)
                    if not outstanding and not loser_cancelled:
                        loser_cancelled = True
                        await self._cancel_others(job, channel.shard_id, key)
                elif kind == "done":
                    # Only attempts that actually won a claim inform the
                    # hedge-delay estimator; a duplicate that lost every
                    # race to its hedge measures the slow path, and feeding
                    # it back would push the hedge delay up to exactly the
                    # latency hedging exists to cut.
                    if claimed_any:
                        self.record_latency(loop.time() - started)
                    return "done"
                elif kind == "cancelled":
                    return "cancelled"
                elif kind == "overloaded":
                    job.retry_after_seconds = (
                        float(frame.get("retry_after_ms", 50.0)) / 1e3
                    )
                    return "overloaded"
                else:  # error — local poison or a shard-side rejection
                    if frame.get("_closed"):
                        return "lost"
                    job.fail(f"shard {channel.shard_id}: {frame.get('error')}")
                    return "error"
        finally:
            job.active.pop(key, None)
        return "lost"  # stream ended without a terminal frame

    async def _cancel_others(self, job: RouterJob, shard_id: int, winner_key: int) -> None:
        """First-response-wins: cancel the *same shard's* other attempts.

        Scoped to one shard on purpose — the registry also holds the other
        shards' perfectly healthy attempts, which must keep streaming.
        """
        for key, (owner, client, shard_job) in list(job.active.items()):
            if key == winner_key or owner != shard_id:
                continue
            with contextlib.suppress(ConnectionError, OSError, RuntimeError):
                await client.cancel(shard_job)
                self.counters.loser_cancels += 1

    @staticmethod
    def _submit_kwargs(opts: Dict[str, object]) -> Dict[str, object]:
        """Translate raw submit-frame opts into ``QueryClient.submit`` kwargs."""
        limit = opts.get("result_limit")
        deadline = opts.get("time_limit_seconds")
        return {
            "store_paths": bool(opts.get("store_paths", True)),
            "result_limit": None if limit is None else int(limit),
            "time_limit_seconds": None if deadline is None else float(deadline),
            "response_k": int(opts.get("response_k", 1000)),
            "external": bool(opts.get("external", False)),
            "frames": str(opts.get("frames", "result")),
            "engine": opts.get("engine"),
        }

    # -- health & teardown ---------------------------------------------- #
    async def stats(self, *, probe_timeout: float = 2.0) -> Dict[str, object]:
        """Routing counters plus a live per-shard health probe.

        Every replica is pinged (round-trip latency on the router's clock)
        and asked for its stats snapshot — the ``shard_id`` /
        ``server_version`` fields added to the protocol in version 2 are
        what lets the probe attribute health to fleet members.  Dead
        replicas are reported, not raised, and probed with a single
        no-backoff dial so a down host cannot stall the stats frame.
        """
        from repro._version import __version__

        shards: List[Dict[str, object]] = []
        for channel in self.channels:
            replicas: List[Dict[str, object]] = []
            for index, (host, port) in enumerate(channel.replicas):
                info: Dict[str, object] = {
                    "address": f"{host}:{port}",
                    "connected": False,
                    "breaker": channel.breaker_state(index),
                }
                try:
                    client = await channel.client(index, probe=True)
                    pong = await asyncio.wait_for(client.ping(), probe_timeout)
                    remote = await asyncio.wait_for(client.stats(), probe_timeout)
                    info.update(
                        connected=True,
                        rtt_ms=round(pong.rtt_ms, 3),
                        protocol=pong.protocol,
                        server_version=remote.get("server_version"),
                        shard_id=remote.get("shard_id"),
                        backend=remote.get("backend"),
                        workers=remote.get("workers"),
                        jobs_active=remote.get("jobs_active"),
                        queries_completed=remote.get("queries_completed"),
                    )
                except (ConnectionLost, ConnectionError, OSError, asyncio.TimeoutError) as error:
                    info["error"] = str(error) or type(error).__name__
                replicas.append(info)
            shards.append({"shard": channel.shard_id, "replicas": replicas})
        counters = self.counters
        return {
            "role": "router",
            "protocol": PROTOCOL_VERSION,
            "server_version": __version__,
            "num_shards": self.shard_map.num_shards,
            "num_replicas": self.shard_map.num_replicas,
            "hedging": self.hedge,
            "hedge_delay_ms": round(self.hedge_delay() * 1e3, 3),
            "jobs_routed": counters.jobs_routed,
            "jobs_completed": counters.jobs_completed,
            "jobs_cancelled": counters.jobs_cancelled,
            "jobs_failed": counters.jobs_failed,
            "queries_routed": counters.queries_routed,
            "results_merged": counters.results_merged,
            "duplicates_dropped": counters.duplicates_dropped,
            "failovers": counters.failovers,
            "hedges_fired": counters.hedges_fired,
            "hedge_wins": counters.hedge_wins,
            "loser_cancels": counters.loser_cancels,
            "cancels_forwarded": counters.cancels_forwarded,
            "breaker_trips": counters.breaker_trips,
            "breaker_skips": counters.breaker_skips,
            "shard_overloads": counters.shard_overloads,
            "shards": shards,
        }

    async def close(self) -> None:
        """Close every shard connection; idempotent."""
        if self._closed:
            return
        self._closed = True
        for channel in self.channels:
            await channel.close()


# --------------------------------------------------------------------- #
# the TCP front end: ``repro route``
# --------------------------------------------------------------------- #
class RouterServer:
    """A graph-free TCP server speaking the shard protocol downstream.

    Clients talk to it exactly as they would to ``repro serve`` — submit /
    cancel / stats / ping frames — and never learn the topology behind it;
    the router rewrites job ids and positions so the merged stream is
    indistinguishable from a single-host stream (modulo the richer stats
    payload).  Closing a connection cancels its in-flight routed jobs.
    """

    def __init__(
        self,
        router: ShardRouter,
        *,
        host: str = "127.0.0.1",
        port: int = DEFAULT_ROUTER_PORT,
    ) -> None:
        self.router = router
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Set[asyncio.Task] = set()
        self._anon_ids = itertools.count()

    async def start(self) -> None:
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            for task in list(self._connections):
                task.cancel()
            if self._connections:
                await asyncio.gather(*self._connections, return_exceptions=True)
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "RouterServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._connections.add(asyncio.current_task())
        lock = asyncio.Lock()
        jobs: Dict[str, RouterJob] = {}
        streams: Set[asyncio.Task] = set()
        try:
            while True:
                try:
                    message = await read_frame(reader)
                except FrameError as error:
                    with contextlib.suppress(ConnectionError):
                        await write_frame(
                            writer, {"type": "error", "error": str(error)}, lock=lock
                        )
                    break
                if message is None:
                    break
                await self._dispatch(message, writer, lock, jobs, streams)
        except ConnectionError:
            pass
        except asyncio.CancelledError:
            pass
        finally:
            self._connections.discard(asyncio.current_task())
            for job in jobs.values():
                asyncio.ensure_future(self.router.cancel(job))
            for task in streams:
                task.cancel()
            if streams:
                await asyncio.gather(*streams, return_exceptions=True)
            writer.close()
            with contextlib.suppress(ConnectionError, asyncio.CancelledError):
                await writer.wait_closed()

    async def _dispatch(
        self,
        message: Dict[str, object],
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
        jobs: Dict[str, RouterJob],
        streams: Set[asyncio.Task],
    ) -> None:
        kind = message.get("type")
        if kind == "submit":
            await self._handle_submit(message, writer, lock, jobs, streams)
        elif kind == "cancel":
            job = jobs.get(str(message.get("id")))
            if job is not None:
                await self.router.cancel(job)
        elif kind == "stats":
            stats = await self.router.stats()
            await write_frame(writer, {"type": "stats", "stats": stats}, lock=lock)
        elif kind == "ping":
            from repro._version import __version__

            pong: Dict[str, object] = {
                "type": "pong",
                "protocol": PROTOCOL_VERSION,
                "server_version": __version__,
                "shard_id": None,
                "role": "router",
            }
            if "t" in message:
                pong["t"] = message["t"]
            await write_frame(writer, pong, lock=lock)
        else:
            await write_frame(
                writer,
                {"type": "error", "error": f"unknown message type {kind!r}"},
                lock=lock,
            )

    @staticmethod
    def _validate_queries(raw: object) -> List[List[object]]:
        """Shape-check only: the router has no graph to resolve ids against."""
        if not isinstance(raw, list):
            raise ValueError("'queries' must be a list of [source, target, k] triples")
        triples: List[List[object]] = []
        for entry in raw:
            if not isinstance(entry, (list, tuple)) or len(entry) != 3:
                raise ValueError(
                    f"malformed query {entry!r}: expected [source, target, k]"
                )
            source, target, k = entry
            k = int(k)
            if k < 1:
                raise ValueError(f"hop budget must be positive, got {k}")
            triples.append([source, target, k])
        return triples

    async def _handle_submit(
        self,
        message: Dict[str, object],
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
        jobs: Dict[str, RouterJob],
        streams: Set[asyncio.Task],
    ) -> None:
        client_id = str(message.get("id", f"anon-{next(self._anon_ids)}"))
        opts = message.get("opts") or {}
        if not isinstance(opts, dict):
            opts = {}
        if client_id in jobs:
            await write_frame(
                writer,
                {
                    "type": "error",
                    "id": client_id,
                    "error": f"job id {client_id!r} is already in flight",
                },
                lock=lock,
            )
            return
        try:
            triples = self._validate_queries(message.get("queries"))
        except (ValueError, TypeError) as error:
            await write_frame(
                writer, {"type": "error", "id": client_id, "error": str(error)}, lock=lock
            )
            return
        try:
            job = await self.router.submit(triples, opts)
        except Exception as error:  # noqa: BLE001 - e.g. router shutting down
            await write_frame(
                writer,
                {"type": "error", "id": client_id, "error": f"submit failed: {error}"},
                lock=lock,
            )
            return
        jobs[client_id] = job

        def _forget(_task: asyncio.Task) -> None:
            streams.discard(_task)
            if jobs.get(client_id) is job:
                del jobs[client_id]

        task = asyncio.ensure_future(self._stream_job(client_id, job, writer, lock))
        streams.add(task)
        task.add_done_callback(_forget)

    async def _stream_job(
        self,
        client_id: str,
        job: RouterJob,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
    ) -> None:
        try:
            async for frame in job.frames():
                await write_frame(writer, {**frame, "id": client_id}, lock=lock)
        except (ConnectionError, asyncio.CancelledError):
            await self.router.cancel(job)
            raise
        except Exception as error:  # noqa: BLE001 - e.g. an unencodable frame
            await self.router.cancel(job)
            with contextlib.suppress(Exception):
                await write_frame(
                    writer,
                    {
                        "type": "error",
                        "id": client_id,
                        "error": f"stream failed: {type(error).__name__}: {error}",
                    },
                    lock=lock,
                )


async def route_forever(
    router: ShardRouter,
    *,
    host: str = "127.0.0.1",
    port: int = DEFAULT_ROUTER_PORT,
    ready: Optional[asyncio.Event] = None,
) -> int:
    """Run a router until SIGINT/SIGTERM, then shut down cleanly.

    Prints one ``routing on HOST:PORT`` line once the socket is bound (the
    CLI / CI handshake, mirroring ``serving on`` from ``repro serve``).
    """
    server = RouterServer(router, host=host, port=port)
    await server.start()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    registered = []
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
            registered.append(signum)
        except (NotImplementedError, RuntimeError):  # pragma: no cover - non-Unix
            pass
    print(
        f"routing on {server.host}:{server.port} "
        f"({router.shard_map.num_shards} shards, "
        f"{router.shard_map.num_replicas} replicas, "
        f"hedging {'on' if router.hedge else 'off'}, no graph held)",
        flush=True,
    )
    if ready is not None:
        ready.set()
    try:
        await stop.wait()
    finally:
        for signum in registered:
            loop.remove_signal_handler(signum)
        await server.close()
        await router.close()
    print("router shutdown complete", flush=True)
    return 0
