"""Async query serving: a long-lived TCP front end over the batch engine.

The paper's headline claim is *real-time* hop-constrained s-t path
enumeration; this package turns the engine into a service that can actually
be measured under open-loop concurrent traffic instead of one-shot CLI
batches:

* :mod:`repro.server.protocol` — the length-prefixed JSON wire format
  (``submit`` / streamed ``path`` / ``result`` frames / ``done`` /
  ``cancel`` / ``stats``);
* :mod:`repro.server.service` — :class:`QueryService`, the asyncio-facing
  core: it owns a shared graph image, a warm reverse-BFS distance cache and
  a persistent worker pool (threads or processes) through
  :class:`~repro.core.engine.ExecutorCore`, and streams per-query results to
  submitted jobs as workers produce them;
* :mod:`repro.server.server` — :class:`QueryServer`, the asyncio TCP
  front end (``repro serve``);
* :mod:`repro.server.client` — :class:`QueryClient` plus the open-loop
  load driver behind ``repro client`` and the serving benchmark.
"""

from repro.server.client import LoadReport, QueryClient, open_loop_load, run_queries
from repro.server.protocol import (
    DEFAULT_PORT,
    FrameError,
    MAX_FRAME_BYTES,
    decode_frame,
    encode_frame,
    read_frame,
    write_frame,
)
from repro.server.server import QueryServer, serve_forever
from repro.server.service import JobState, QueryService, ServiceJob

__all__ = [
    "DEFAULT_PORT",
    "MAX_FRAME_BYTES",
    "FrameError",
    "encode_frame",
    "decode_frame",
    "read_frame",
    "write_frame",
    "QueryService",
    "ServiceJob",
    "JobState",
    "QueryServer",
    "serve_forever",
    "QueryClient",
    "run_queries",
    "open_loop_load",
    "LoadReport",
]
