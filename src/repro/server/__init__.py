"""Async query serving: a long-lived TCP front end over the batch engine.

The paper's headline claim is *real-time* hop-constrained s-t path
enumeration; this package turns the engine into a service that can actually
be measured under open-loop concurrent traffic instead of one-shot CLI
batches:

* :mod:`repro.server.protocol` — the length-prefixed JSON wire format
  (``submit`` / streamed ``path`` / ``result`` frames / ``done`` /
  ``cancel`` / ``stats``), now versioned for fleet rollouts;
* :mod:`repro.server.service` — :class:`QueryService`, the asyncio-facing
  core: it owns a shared graph image, a warm reverse-BFS distance cache and
  a persistent worker pool (threads or processes) through
  :class:`~repro.core.engine.ExecutorCore`, and streams per-query results to
  submitted jobs as workers produce them;
* :mod:`repro.server.server` — :class:`QueryServer`, the asyncio TCP
  front end (``repro serve``);
* :mod:`repro.server.client` — :class:`QueryClient` plus the open-loop
  load driver behind ``repro client`` and the serving benchmark, with
  backoff-based reconnection (:class:`~repro.server.client.ReconnectPolicy`);
* :mod:`repro.server.router` — the distributed tier: :class:`ShardRouter`
  consistent-hashes queries by target across per-shard serve hosts, merges
  the streamed results back into workload order, and layers replica
  failover plus hedged requests on top; :class:`RouterServer` exposes it
  over the same wire protocol (``repro route``).
"""

from repro.server.client import (
    LoadReport,
    Pong,
    QueryClient,
    ReconnectPolicy,
    open_loop_load,
    run_queries,
)
from repro.server.protocol import (
    DEFAULT_PORT,
    DEFAULT_ROUTER_PORT,
    MIN_SUPPORTED_PROTOCOL,
    PROTOCOL_VERSION,
    FrameError,
    MAX_FRAME_BYTES,
    ProtocolMismatch,
    decode_frame,
    encode_frame,
    negotiate_protocol,
    read_frame,
    write_frame,
)
from repro.server.router import (
    RouterJob,
    RouterServer,
    ShardChannel,
    ShardMap,
    ShardRouter,
    parse_address,
    route_forever,
)
from repro.server.server import QueryServer, serve_forever
from repro.server.service import JobState, QueryService, ServiceJob

__all__ = [
    "DEFAULT_PORT",
    "DEFAULT_ROUTER_PORT",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "MIN_SUPPORTED_PROTOCOL",
    "FrameError",
    "ProtocolMismatch",
    "encode_frame",
    "decode_frame",
    "read_frame",
    "write_frame",
    "negotiate_protocol",
    "QueryService",
    "ServiceJob",
    "JobState",
    "QueryServer",
    "serve_forever",
    "QueryClient",
    "ReconnectPolicy",
    "Pong",
    "run_queries",
    "open_loop_load",
    "LoadReport",
    "parse_address",
    "ShardMap",
    "ShardChannel",
    "RouterJob",
    "ShardRouter",
    "RouterServer",
    "route_forever",
]
