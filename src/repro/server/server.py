"""The asyncio TCP front end: ``repro serve``.

One :class:`QueryServer` wraps one :class:`~repro.server.service.QueryService`
behind ``asyncio.start_server``.  Every connection speaks the
length-prefixed JSON protocol of :mod:`repro.server.protocol`; a connection
may run any number of jobs concurrently — their frames interleave on the
wire (serialised per frame by a connection lock) and clients demultiplex by
job id.  Closing a connection cancels its outstanding jobs.

:func:`serve_forever` adds the process-level glue (signal handlers, clean
shutdown) used by the CLI.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import signal
from typing import Dict, List, Optional, Set, Tuple

from repro.core.listener import ENGINE_CHOICES, RunConfig
from repro.core.query import Query
from repro.errors import ReproError, ServiceOverloaded, VertexNotFoundError
from repro.server.protocol import (
    DEFAULT_PORT,
    FrameError,
    read_frame,
    render_result_paths,
    write_frame,
)
from repro.server.service import QueryService, ServiceJob

__all__ = ["QueryServer", "serve_forever"]

#: Fault-injection site of every frame this server writes
#: (see :mod:`repro.testing.faults`).
_FRAME_SITE = "server.frame.out"


def _config_from_opts(opts: Dict[str, object]) -> RunConfig:
    """Build the per-job :class:`RunConfig` from a submit frame's options."""
    result_limit = opts.get("result_limit")
    time_limit = opts.get("time_limit_seconds")
    engine = str(opts.get("engine", "auto"))
    if engine not in ENGINE_CHOICES:
        raise ValueError(f"unknown engine {engine!r}: use one of {ENGINE_CHOICES}")
    return RunConfig(
        store_paths=bool(opts.get("store_paths", True)),
        result_limit=None if result_limit is None else int(result_limit),
        time_limit_seconds=None if time_limit is None else float(time_limit),
        response_k=int(opts.get("response_k", 1000)),
        engine=engine,
    )


class QueryServer:
    """TCP server streaming query results over the frame protocol."""

    def __init__(
        self,
        service: QueryService,
        *,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Set[asyncio.Task] = set()
        #: Fallback ids for submits without one; monotonic, never reused
        #: (``len(jobs)`` would collide once an earlier job finished).
        self._anon_ids = itertools.count()

    async def start(self) -> None:
        """Bind and start accepting connections (``port=0`` picks a free one)."""
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        """Stop accepting connections, drop live ones, wait for the listener.

        Open connections are cancelled, not waited out: since Python 3.12.1
        ``Server.wait_closed()`` blocks until every connection handler
        returns, and a handler reads until its client hangs up — an idle
        client would stall shutdown forever.
        """
        if self._server is not None:
            self._server.close()
            for task in list(self._connections):
                task.cancel()
            if self._connections:
                await asyncio.gather(*self._connections, return_exceptions=True)
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "QueryServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # -- connection handling ------------------------------------------- #
    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._connections.add(asyncio.current_task())
        lock = asyncio.Lock()
        jobs: Dict[str, ServiceJob] = {}
        streams: Set[asyncio.Task] = set()
        try:
            while True:
                try:
                    message = await read_frame(reader)
                except FrameError as error:
                    with contextlib.suppress(ConnectionError):
                        await write_frame(
                            writer, {"type": "error", "error": str(error)}, lock=lock, site=_FRAME_SITE
                        )
                    break
                if message is None:
                    break
                await self._dispatch(message, writer, lock, jobs, streams)
        except ConnectionError:
            pass
        except asyncio.CancelledError:
            # Server shutdown cancelled this handler; fall through to the
            # cleanup below so wait_closed() can complete.
            pass
        finally:
            self._connections.discard(asyncio.current_task())
            # A vanished client must not keep its jobs burning workers.
            for job in jobs.values():
                job.cancel()
            for task in streams:
                task.cancel()
            if streams:
                await asyncio.gather(*streams, return_exceptions=True)
            writer.close()
            with contextlib.suppress(ConnectionError, asyncio.CancelledError):
                await writer.wait_closed()

    async def _dispatch(
        self,
        message: Dict[str, object],
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
        jobs: Dict[str, ServiceJob],
        streams: Set[asyncio.Task],
    ) -> None:
        kind = message.get("type")
        if kind == "submit":
            await self._handle_submit(message, writer, lock, jobs, streams)
        elif kind == "cancel":
            # Cancellation is an idempotent, advisory request: a job that
            # already finished (its id left the map) needs no reply — the
            # client saw its terminal frame, and an error here would race
            # completion on every cancel.
            job = jobs.get(str(message.get("id")))
            if job is not None:
                job.cancel()
        elif kind == "update":
            await self._handle_update(message, writer, lock)
        elif kind == "stats":
            await write_frame(
                writer, {"type": "stats", "stats": self.service.stats()}, lock=lock, site=_FRAME_SITE
            )
        elif kind == "ping":
            from repro._version import __version__
            from repro.server.protocol import PROTOCOL_VERSION

            pong: Dict[str, object] = {
                "type": "pong",
                "protocol": PROTOCOL_VERSION,
                "server_version": __version__,
                "shard_id": self.service.shard_id,
            }
            # Echo the client's clock sample verbatim: the round trip is
            # then measured entirely on the client's clock, no cross-host
            # clock agreement needed.
            if "t" in message:
                pong["t"] = message["t"]
            await write_frame(writer, pong, lock=lock, site=_FRAME_SITE)
        else:
            await write_frame(
                writer,
                {"type": "error", "error": f"unknown message type {kind!r}"},
                lock=lock, site=_FRAME_SITE,
            )

    def _parse_edges(self, raw: object, external: bool, field: str) -> List[Tuple[int, int]]:
        """Parse one ``update`` frame's edge list into internal-id pairs."""
        if raw is None:
            return []
        if not isinstance(raw, list):
            raise ValueError(f"{field!r} must be a list of [u, v] pairs")
        graph = self.service.graph
        pairs: List[Tuple[int, int]] = []
        for entry in raw:
            if not isinstance(entry, (list, tuple)) or len(entry) != 2:
                raise ValueError(f"malformed edge {entry!r}: expected [u, v]")
            u, v = entry
            if external:
                pairs.append((self._resolve_external(u), self._resolve_external(v)))
                continue
            u, v = int(u), int(v)
            for vertex in (u, v):
                if not 0 <= vertex < graph.num_vertices:
                    raise ValueError(
                        f"vertex {vertex} out of range (graph has "
                        f"{graph.num_vertices} vertices)"
                    )
            pairs.append((u, v))
        return pairs

    async def _handle_update(
        self,
        message: Dict[str, object],
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
    ) -> None:
        """Apply one edge batch and answer with an ``updated`` frame.

        The mutation itself is blocking (CSR rebuild, distance repair), so
        it runs on the default executor; the event loop keeps streaming
        in-flight jobs — which read their own pinned epoch — meanwhile.
        """
        client_id = message.get("id")
        external = bool(message.get("external", False))
        try:
            add = self._parse_edges(message.get("add"), external, "add")
            remove = self._parse_edges(message.get("remove"), external, "remove")
            loop = asyncio.get_running_loop()
            info = await loop.run_in_executor(
                None, lambda: self.service.mutate(add=add, remove=remove)
            )
        except (ValueError, TypeError, ReproError) as error:
            frame: Dict[str, object] = {"type": "error", "error": str(error)}
            if client_id is not None:
                frame["id"] = client_id
            await write_frame(writer, frame, lock=lock, site=_FRAME_SITE)
            return
        reply: Dict[str, object] = {"type": "updated", **info}
        if client_id is not None:
            reply["id"] = client_id
        await write_frame(writer, reply, lock=lock, site=_FRAME_SITE)

    def _resolve_external(self, value: object) -> int:
        """Map one external vertex id to its internal id.

        JSON (and remote clients without the graph at hand) cannot tell a
        numeric-string external id from an integer one, so both spellings
        are tried before giving up — the server is the only party that
        actually knows the id type.
        """
        graph = self.service.graph
        candidates = [value]
        if isinstance(value, int):
            candidates.append(str(value))
        elif isinstance(value, str):
            try:
                candidates.append(int(value))
            except ValueError:
                pass
        for candidate in candidates[:-1]:
            try:
                return graph.to_internal(candidate)
            except VertexNotFoundError:
                continue
        return graph.to_internal(candidates[-1])

    def _parse_queries(
        self, raw: object, external: bool
    ) -> List[Query]:
        if not isinstance(raw, list):
            raise ValueError("'queries' must be a list of [source, target, k] triples")
        graph = self.service.graph
        queries: List[Query] = []
        for entry in raw:
            if not isinstance(entry, (list, tuple)) or len(entry) != 3:
                raise ValueError(f"malformed query {entry!r}: expected [source, target, k]")
            source, target, k = entry
            k = int(k)
            if k < 1:
                raise ValueError(f"hop budget must be positive, got {k}")
            if external:
                queries.append(
                    Query(
                        self._resolve_external(source),
                        self._resolve_external(target),
                        k,
                    )
                )
                continue
            source, target = int(source), int(target)
            for vertex in (source, target):
                if not 0 <= vertex < graph.num_vertices:
                    raise ValueError(
                        f"vertex {vertex} out of range (graph has "
                        f"{graph.num_vertices} vertices)"
                    )
            queries.append(Query(source, target, k))
        return queries

    async def _handle_submit(
        self,
        message: Dict[str, object],
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
        jobs: Dict[str, ServiceJob],
        streams: Set[asyncio.Task],
    ) -> None:
        client_id = str(message.get("id", f"anon-{next(self._anon_ids)}"))
        opts = message.get("opts") or {}
        if not isinstance(opts, dict):
            opts = {}
        external = bool(opts.get("external", False))
        per_path = opts.get("frames") == "path"
        if client_id in jobs:
            # Overwriting an in-flight id would orphan the first job: it
            # could no longer be cancelled, burning workers past the
            # connection's lifetime.
            await write_frame(
                writer,
                {
                    "type": "error",
                    "id": client_id,
                    "error": f"job id {client_id!r} is already in flight",
                },
                lock=lock, site=_FRAME_SITE,
            )
            return
        try:
            queries = self._parse_queries(message.get("queries"), external)
            config = _config_from_opts(opts)
        except (ValueError, TypeError, ReproError) as error:
            await write_frame(
                writer, {"type": "error", "id": client_id, "error": str(error)}, lock=lock, site=_FRAME_SITE
            )
            return
        try:
            job = await self.service.submit(queries, config)
        except ServiceOverloaded as error:
            frame: Dict[str, object] = {
                "type": "overloaded",
                "id": client_id,
                "retry_after_ms": round(error.retry_after * 1e3, 3),
            }
            if error.pending is not None:
                frame["pending"] = error.pending
            if error.limit is not None:
                frame["limit"] = error.limit
            await write_frame(writer, frame, lock=lock, site=_FRAME_SITE)
            return
        except Exception as error:  # noqa: BLE001 - e.g. service shutting down
            await write_frame(
                writer,
                {"type": "error", "id": client_id, "error": f"submit failed: {error}"},
                lock=lock, site=_FRAME_SITE,
            )
            return
        jobs[client_id] = job

        def _forget(_task: asyncio.Task) -> None:
            streams.discard(_task)
            if jobs.get(client_id) is job:
                del jobs[client_id]

        task = asyncio.create_task(
            self._stream_job(client_id, job, writer, lock, external, per_path)
        )
        streams.add(task)
        task.add_done_callback(_forget)

    async def _stream_job(
        self,
        client_id: str,
        job: ServiceJob,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
        external: bool,
        per_path: bool,
    ) -> None:
        graph = self.service.graph
        try:
            async for event in job.events():
                kind = event[0]
                if kind == "result":
                    _, position, result = event
                    # Kernel-produced results serialise straight from their
                    # columnar buffer (no per-path tuples on the wire path).
                    rendered = render_result_paths(result, graph, external=external)
                    frame: Dict[str, object] = {
                        "type": "result",
                        "id": client_id,
                        "position": position,
                        "source": graph.to_external(result.source) if external else result.source,
                        "target": graph.to_external(result.target) if external else result.target,
                        "k": result.k,
                        "count": result.count,
                        "query_ms": round(result.query_millis, 3),
                        "plan": result.stats.plan,
                        "timed_out": result.stats.timed_out,
                        "bfs_cache_hit": result.stats.bfs_cache_hit,
                    }
                    if rendered is not None:
                        if per_path:
                            for path in rendered:
                                await write_frame(
                                    writer,
                                    {
                                        "type": "path",
                                        "id": client_id,
                                        "position": position,
                                        "path": path,
                                    },
                                    lock=lock, site=_FRAME_SITE,
                                )
                        else:
                            frame["paths"] = rendered
                    await write_frame(writer, frame, lock=lock, site=_FRAME_SITE)
                elif kind == "done":
                    await write_frame(
                        writer, {"type": "done", "id": client_id, **event[1]}, lock=lock, site=_FRAME_SITE
                    )
                elif kind == "cancelled":
                    await write_frame(
                        writer,
                        {"type": "cancelled", "id": client_id, "delivered": event[1]},
                        lock=lock, site=_FRAME_SITE,
                    )
                elif kind == "overloaded":
                    # Admitted but shed before execution (queue delay past
                    # the budget): the job's terminal frame is the same
                    # typed reject a budget-exhausted submit gets.
                    await write_frame(
                        writer,
                        {"type": "overloaded", "id": client_id, **event[1]},
                        lock=lock, site=_FRAME_SITE,
                    )
                elif kind == "error":
                    await write_frame(
                        writer,
                        {"type": "error", "id": client_id, "error": event[1]},
                        lock=lock, site=_FRAME_SITE,
                    )
        except (ConnectionError, asyncio.CancelledError):
            # The client went away (or the connection handler is tearing
            # down): stop the job, frames have nowhere to go.
            job.cancel()
            raise
        except Exception as error:  # noqa: BLE001 - e.g. an unencodable frame
            # A dead stream task must not strand the client without a
            # terminal frame (it would await the job queue forever) or
            # leave the job burning workers.
            job.cancel()
            with contextlib.suppress(Exception):
                await write_frame(
                    writer,
                    {
                        "type": "error",
                        "id": client_id,
                        "error": f"stream failed: {type(error).__name__}: {error}",
                    },
                    lock=lock, site=_FRAME_SITE,
                )


async def serve_forever(
    service: QueryService,
    *,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    ready: Optional[asyncio.Event] = None,
) -> int:
    """Run a server until SIGINT/SIGTERM, then shut down cleanly.

    Prints one ``serving on HOST:PORT`` line once the socket is bound (the
    CLI / CI handshake), sets ``ready`` if given, and returns 0 after both
    the listener and the service released their resources.
    """
    server = QueryServer(service, host=host, port=port)
    await server.start()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    registered = []
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
            registered.append(signum)
        except (NotImplementedError, RuntimeError):  # pragma: no cover - non-Unix
            pass
    print(
        f"serving on {server.host}:{server.port} "
        f"({service.backend} backend, {service.workers} workers, "
        f"|V|={service.graph.num_vertices}, |E|={service.graph.num_edges})",
        flush=True,
    )
    if ready is not None:
        ready.set()
    try:
        await stop.wait()
    finally:
        for signum in registered:
            loop.remove_signal_handler(signum)
        await server.close()
        await service.close()
    print("shutdown complete", flush=True)
    return 0
