"""The wire format of the query service: length-prefixed JSON frames.

Every message — in both directions — is one *frame*: a 4-byte big-endian
unsigned length followed by that many bytes of UTF-8 JSON encoding one
object.  Framing first keeps the protocol trivially incremental (a stream
reader never needs to re-scan for delimiters) and JSON keeps it
inspectable with ``nc`` and a hexdump.

Client → server messages (``type`` field):

``submit``
    ``{"type": "submit", "id": <client job id>, "queries": [[s, t, k], ...],
    "opts": {...}}``.  Recognised options: ``store_paths`` (bool, default
    true), ``result_limit`` (int), ``time_limit_seconds`` (float),
    ``response_k`` (int), ``external`` (bool — endpoints are external vertex
    ids, translated server-side, results translated back), ``frames``
    (``"result"`` (default) or ``"path"`` — additionally stream one frame
    per emitted path), ``engine`` (``"auto"`` (default), ``"native"``,
    ``"kernel"`` or ``"recursive"`` — enumeration engine selection, see
    :attr:`repro.core.listener.RunConfig.engine`).
``cancel``
    ``{"type": "cancel", "id": <job id>}``.
``update``
    ``{"type": "update", "id"?: <client request id>, "add": [[u, v], ...],
    "remove": [[u, v], ...], "external"?: bool}`` — apply one edge batch to
    the served graph (protocol version 3).  The batch publishes a new graph
    epoch atomically: jobs already streaming keep reading the epoch they
    started on, jobs submitted after the ``updated`` reply see every
    change.  ``external`` says the endpoint pairs are external vertex ids,
    translated server-side.
``stats``
    ``{"type": "stats"}`` — service statistics snapshot.
``ping``
    ``{"type": "ping", "protocol"?: <client protocol version>, "t"?: <opaque
    client clock>}`` — liveness probe; answered with ``pong``.  ``t`` is
    echoed back verbatim so the client can compute the round-trip latency
    from its own clock; ``protocol`` announces the client's protocol
    version for negotiation (absent ⇒ version 1).

Server → client messages:

``path``
    One enumerated path of one query (only with ``frames: "path"``):
    ``{"type": "path", "id", "position", "path": [v, ...]}``.
``result``
    One completed query: ``{"type": "result", "id", "position", "source",
    "target", "k", "count", "paths", "query_ms", "plan", "timed_out",
    "bfs_cache_hit"}``.  ``paths`` is omitted when path storage is off or
    per-path frames were requested.  Results of one job stream as each
    query completes — a client sorting frames by ``position`` reconstructs
    workload order.
``done``
    Job completion: ``{"type": "done", "id", "queries", "total_paths",
    "wall_ms"}``.  Always the job's final frame.
``cancelled``
    ``{"type": "cancelled", "id", "delivered"}`` — terminal frame of a
    cancelled job.
``updated``
    Reply to ``update``: ``{"type": "updated", "id"?, "epoch", "added",
    "removed", "repair", "stats"}``.  ``epoch`` is the id of the snapshot
    new jobs run against; ``added`` / ``removed`` count the pairs that
    actually took effect; ``repair`` breaks down how the warm distance
    cache was fixed up (``repaired`` incrementally, ``recomputed`` from
    scratch, ``invalidated``); ``stats`` carries the live-graph counters.
``overloaded``
    ``{"type": "overloaded", "id", "retry_after_ms", "pending"?,
    "limit"?}`` — the server shed the job instead of admitting it
    (pending-work budget exhausted, or the queue delay budget elapsed
    before a drive slot came up).  Terminal for the job; ``retry_after_ms``
    is the server's own estimate of when capacity frees up, so a client
    backs off by at least that long before retrying.
``error``
    ``{"type": "error", "error": <message>, "id"?}`` — malformed input or a
    failed job; terminal when ``id`` is present.
``stats`` / ``pong``
    Responses to the matching requests.  A ``pong`` carries ``protocol``
    (the server's :data:`PROTOCOL_VERSION`), ``server_version`` (the repro
    package version), ``shard_id`` (when the server was started as one
    shard of a routed deployment) and the echoed ``t``; a ``stats`` reply's
    payload likewise includes ``shard_id``, ``server_version`` and
    ``protocol`` so a router can report per-shard health.

Protocol versioning
-------------------

:data:`PROTOCOL_VERSION` is bumped whenever the frame vocabulary changes;
version 2 added the ``pong`` / ``stats`` identity fields above, version 3
the ``update`` / ``updated`` live-mutation pair.  Servers
stay backward compatible down to :data:`MIN_SUPPORTED_PROTOCOL`, and
negotiation is pull-based: a client pings, reads the server's ``protocol``
(a missing field means a version-1 server) and decides with
:func:`negotiate_protocol` whether it can speak to it.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import struct
from typing import Dict, List, Optional

from repro.testing import faults

__all__ = [
    "DEFAULT_PORT",
    "DEFAULT_ROUTER_PORT",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "MIN_SUPPORTED_PROTOCOL",
    "FrameError",
    "ProtocolMismatch",
    "negotiate_protocol",
    "encode_frame",
    "decode_frame",
    "read_frame",
    "write_frame",
    "render_result_paths",
]

#: Default TCP port of ``repro serve`` (unassigned range, PATH on a phone pad).
DEFAULT_PORT = 7284

#: Default TCP port of ``repro route`` (one above the serve port, so a
#: single-host demo topology needs no flags).
DEFAULT_ROUTER_PORT = 7285

#: Version of the frame vocabulary this build speaks.  2 added ``protocol``
#: / ``server_version`` / ``shard_id`` to ``pong`` and ``stats`` replies and
#: the ``t`` echo on ``ping``; 3 added the ``update`` / ``updated`` pair
#: for live edge-batch mutation.
PROTOCOL_VERSION = 3

#: Oldest peer protocol version this build can still talk to.  Version-1
#: peers simply lack the identity fields — every frame they do send is
#: understood — so the floor stays at 1 until a breaking change.
MIN_SUPPORTED_PROTOCOL = 1

#: Upper bound on one frame's JSON body.  Generous — a frame carries at most
#: one query's paths — but finite, so a corrupt length prefix cannot make the
#: reader allocate gigabytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class FrameError(ValueError):
    """A malformed frame: oversized, truncated or undecodable."""


class ProtocolMismatch(FrameError):
    """The peer speaks a protocol version outside our supported window."""


def negotiate_protocol(peer_version: Optional[object]) -> int:
    """Validate a peer's announced protocol version; returns it as an int.

    ``None`` (the field is absent from the peer's frame) means a version-1
    peer — the field itself arrived with version 2.  Raises
    :class:`ProtocolMismatch` when the peer is older than
    :data:`MIN_SUPPORTED_PROTOCOL` or newer than :data:`PROTOCOL_VERSION`
    (a newer peer may depend on frames this build does not emit).
    """
    version = 1 if peer_version is None else int(peer_version)
    if version < MIN_SUPPORTED_PROTOCOL or version > PROTOCOL_VERSION:
        raise ProtocolMismatch(
            f"peer speaks protocol {version}, supported range is "
            f"[{MIN_SUPPORTED_PROTOCOL}, {PROTOCOL_VERSION}]"
        )
    return version


def render_result_paths(result, graph=None, *, external: bool = False) -> Optional[List[List[int]]]:
    """The JSON shape of one result's paths: a list of vertex-id lists.

    Results produced by the iterative kernels carry their paths columnar
    (:attr:`~repro.core.result.QueryResult.path_buffer`); the internal-id
    wire shape is then sliced straight out of the buffer's flat columns —
    no per-path tuple is ever materialised between the enumeration kernel
    and ``json.dumps``.  Tuple-backed results and external-id translation
    take the classic per-path route.  Returns ``None`` when the result
    stored no paths.
    """
    if external:
        paths = result.paths
        if paths is None:
            return None
        return [list(graph.translate_path(p)) for p in paths]
    buffer = result.path_buffer
    if buffer is not None:
        return buffer.to_lists()
    paths = result.paths
    if paths is None:
        return None
    return [list(p) for p in paths]


def encode_frame(message: Dict[str, object]) -> bytes:
    """Serialise one message to its on-wire bytes (length prefix included)."""
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame of {len(body)} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    return _LENGTH.pack(len(body)) + body


def decode_frame(body: bytes) -> Dict[str, object]:
    """Decode one frame *body* (the bytes after the length prefix)."""
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise FrameError(f"undecodable frame body: {error}") from None
    if not isinstance(message, dict):
        raise FrameError("frame body must encode a JSON object")
    return message


async def read_frame(reader: asyncio.StreamReader) -> Optional[Dict[str, object]]:
    """Read one frame from ``reader``; ``None`` on a clean EOF.

    A connection closed mid-frame raises :class:`FrameError` — the peer
    vanished with bytes on the wire, which is worth distinguishing from a
    deliberate shutdown between frames.
    """
    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise FrameError("connection closed inside a frame length prefix") from None
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise FrameError("connection closed inside a frame body") from None
    return decode_frame(body)


async def write_frame(
    writer: asyncio.StreamWriter,
    message: Dict[str, object],
    *,
    lock: Optional[asyncio.Lock] = None,
    site: Optional[str] = None,
) -> None:
    """Write one frame and drain.

    ``lock`` serialises concurrent writers on one connection (a server
    streams several jobs to the same client); frames must never interleave
    on the wire.

    ``site`` names a :mod:`repro.testing.faults` injection site (servers
    pass ``"server.frame.out"``); when a fault plan is installed the frame
    may be dropped, delayed or truncated before hitting the wire.  The
    no-plan cost is one environment lookup.
    """
    data = encode_frame(message)
    if site is not None:
        fault = faults.hit(site, frame_type=str(message.get("type")))
        if fault is not None:
            if fault.op == "drop":
                return
            if fault.op == "delay":
                await asyncio.sleep(fault.delay_ms / 1e3)
            elif fault.op == "truncate":
                # Write a partial frame, then sever the connection: the peer
                # sees bytes on the wire followed by EOF mid-frame.
                async with (lock or asyncio.Lock()):
                    writer.write(data[: max(0, fault.keep_bytes)])
                    with contextlib.suppress(ConnectionError, OSError):
                        await writer.drain()
                    writer.close()
                raise ConnectionResetError("injected truncated frame")
    if lock is None:
        writer.write(data)
        await writer.drain()
        return
    async with lock:
        writer.write(data)
        await writer.drain()
