"""Algorithm comparison harnesses: Table 3, Table 5, Table 6, Figures 13-15.

The functions here evaluate several algorithms over the same workload and
aggregate the paper's three metrics (query time, throughput, response time),
either per dataset (the overall comparison) or as a sweep over the hop
constraint ``k`` (the supplementary figures).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.bench.metrics import WorkloadMetrics, aggregate
from repro.bench.runner import (
    BenchmarkSettings,
    DEFAULT_SETTINGS,
    run_workload,
    run_workload_batched,
)
from repro.core.result import QueryResult
from repro.graph.digraph import DiGraph
from repro.workloads.queries import QueryWorkload

__all__ = [
    "overall_comparison",
    "sweep_k",
    "outlier_split",
    "result_count_statistics",
    "OutlierMetrics",
]


def overall_comparison(
    graph: DiGraph,
    workload: QueryWorkload,
    algorithms: Sequence[str],
    *,
    settings: BenchmarkSettings = DEFAULT_SETTINGS,
    batch: bool = False,
    max_workers: int = 1,
    processes: int = 1,
    shards: Optional[int] = None,
    start_method: Optional[str] = None,
) -> Dict[str, WorkloadMetrics]:
    """One Table 3 row: every algorithm over the same query set on one graph.

    ``batch=True`` evaluates each algorithm through the
    :class:`~repro.api.Database` façade (shared reverse-BFS distances,
    optional thread pool) instead of one-query-at-a-time runs;
    ``processes > 1`` selects its process backend, fanning each batch out
    over target-sharded worker processes.  The per-query results are
    identical in every mode, so the aggregated metrics remain comparable.
    """
    metrics: Dict[str, WorkloadMetrics] = {}
    # Each algorithm gets its own process-backend Database (the algorithm is
    # baked into the worker pool), but the shared graph segment can be
    # published once for the whole comparison: pre-sharing here makes every
    # backend see an already-shared graph and leave its lifecycle alone.
    shared_here = False
    if processes > 1:
        store = graph.store
        if store is None or not store.shareable or getattr(store, "is_unlinked", False):
            graph.share()
            shared_here = True
    try:
        for name in algorithms:
            if batch or processes > 1:
                results = run_workload_batched(
                    name,
                    graph,
                    workload,
                    settings=settings,
                    max_workers=max_workers,
                    processes=processes,
                    shards=shards,
                    start_method=start_method,
                ).results
            else:
                results = run_workload(name, graph, workload, settings=settings)
            metrics[name] = aggregate(results, algorithm=name)
    finally:
        if shared_here:
            graph.store.unlink()
    return metrics


def sweep_k(
    graph: DiGraph,
    workload: QueryWorkload,
    algorithms: Sequence[str],
    ks: Sequence[int],
    *,
    settings: BenchmarkSettings = DEFAULT_SETTINGS,
) -> Dict[int, Dict[str, WorkloadMetrics]]:
    """Re-run the same endpoint pairs for every ``k`` (Figures 13, 14, 15)."""
    sweep: Dict[int, Dict[str, WorkloadMetrics]] = {}
    for k in ks:
        rescoped = workload.with_k(k)
        sweep[k] = overall_comparison(graph, rescoped, algorithms, settings=settings)
    return sweep


@dataclass(frozen=True)
class OutlierMetrics:
    """Throughput / response time split into short- and long-running queries (Table 5)."""

    algorithm: str
    short_throughput: Optional[float]
    long_throughput: Optional[float]
    short_response_ms: Optional[float]
    long_response_ms: Optional[float]
    num_short: int
    num_long: int

    def as_row(self) -> Dict[str, object]:
        return {
            "algorithm": self.algorithm,
            "throughput_short": self.short_throughput,
            "throughput_long": self.long_throughput,
            "response_ms_short": self.short_response_ms,
            "response_ms_long": self.long_response_ms,
            "#short": self.num_short,
            "#long": self.num_long,
        }


def outlier_split(
    results: Sequence[QueryResult], *, short_threshold_ms: float
) -> OutlierMetrics:
    """Split per-query results into short vs long running (Table 5).

    The paper uses 60 s as the short threshold and the 120 s timeout as the
    long class; with scaled-down time limits the threshold scales too, and
    the long class is "timed out or slower than the threshold".
    """
    if not results:
        raise ValueError("cannot split an empty result sequence")
    short = [r for r in results if r.query_millis < short_threshold_ms and not r.stats.timed_out]
    long = [r for r in results if r.stats.timed_out or r.query_millis >= short_threshold_ms]

    def _mean_throughput(group: Sequence[QueryResult]) -> Optional[float]:
        return float(np.mean([r.throughput for r in group])) if group else None

    def _mean_response(group: Sequence[QueryResult]) -> Optional[float]:
        if not group:
            return None
        values = [
            (r.response_seconds if r.response_seconds is not None else r.query_seconds) * 1e3
            for r in group
        ]
        return float(np.mean(values))

    return OutlierMetrics(
        algorithm=results[0].algorithm,
        short_throughput=_mean_throughput(short),
        long_throughput=_mean_throughput(long),
        short_response_ms=_mean_response(short),
        long_response_ms=_mean_response(long),
        num_short=len(short),
        num_long=len(long),
    )


def result_count_statistics(
    graph: DiGraph,
    workload: QueryWorkload,
    ks: Sequence[int],
    *,
    algorithm: str = "IDX-DFS",
    settings: BenchmarkSettings = DEFAULT_SETTINGS,
) -> Dict[int, Mapping[str, float]]:
    """Average and maximum number of results per ``k`` (Table 6).

    Counts come from the fastest enumeration available (IDX-DFS by default);
    timed-out queries contribute the results found before the deadline, as
    marked with a star in the paper.
    """
    statistics: Dict[int, Mapping[str, float]] = {}
    for k in ks:
        results = run_workload(algorithm, graph, workload.with_k(k), settings=settings)
        counts = [r.count for r in results]
        statistics[k] = {
            "avg": float(np.mean(counts)),
            "max": float(np.max(counts)),
            "truncated": any(r.stats.timed_out for r in results),
        }
    return statistics
