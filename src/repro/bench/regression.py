"""Log-log regression of enumeration time against index size and result count.

Figures 10 and 11 of the paper fit a linear model on the logarithms of the
per-query metrics to show that the enumeration time correlates more strongly
with the number of results than with the index size.  The same analysis is
reproduced here with a least-squares fit (numpy) and the Pearson correlation
of the log-transformed values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.bench.runner import BenchmarkSettings, DEFAULT_SETTINGS, run_workload
from repro.core.result import QueryResult
from repro.graph.digraph import DiGraph
from repro.workloads.queries import QueryWorkload

__all__ = ["LogLogFit", "loglog_fit", "index_size_vs_time", "result_count_vs_time"]


@dataclass(frozen=True)
class LogLogFit:
    """A least-squares fit of ``log(y) = slope * log(x) + intercept``."""

    slope: float
    intercept: float
    correlation: float
    num_points: int

    def as_row(self) -> dict:
        return {
            "slope": self.slope,
            "intercept": self.intercept,
            "correlation": self.correlation,
            "points": self.num_points,
        }


def loglog_fit(xs: Sequence[float], ys: Sequence[float]) -> LogLogFit:
    """Fit a line through ``(log x, log y)`` pairs, dropping non-positive values."""
    pairs = [(x, y) for x, y in zip(xs, ys) if x > 0 and y > 0]
    if len(pairs) < 2:
        raise ValueError("need at least two positive (x, y) pairs for a regression")
    log_x = np.log10([p[0] for p in pairs])
    log_y = np.log10([p[1] for p in pairs])
    slope, intercept = np.polyfit(log_x, log_y, 1)
    if np.std(log_x) == 0.0 or np.std(log_y) == 0.0:
        correlation = 0.0
    else:
        correlation = float(np.corrcoef(log_x, log_y)[0, 1])
    return LogLogFit(
        slope=float(slope),
        intercept=float(intercept),
        correlation=correlation,
        num_points=len(pairs),
    )


def _collect(
    graph: DiGraph,
    workload: QueryWorkload,
    *,
    settings: BenchmarkSettings,
) -> List[QueryResult]:
    return run_workload("IDX-DFS", graph, workload, settings=settings)


def index_size_vs_time(
    graph: DiGraph,
    workload: QueryWorkload,
    *,
    settings: BenchmarkSettings = DEFAULT_SETTINGS,
) -> Tuple[List[Tuple[float, float]], LogLogFit]:
    """Per-query (index edges, enumeration ms) points and their log-log fit (Figure 10)."""
    results = _collect(graph, workload, settings=settings)
    points = [
        (float(r.stats.index_edges), r.stats.enumeration_seconds * 1e3)
        for r in results
        if r.stats.index_edges > 0 and r.stats.enumeration_seconds > 0
    ]
    fit = loglog_fit([p[0] for p in points], [p[1] for p in points])
    return points, fit


def result_count_vs_time(
    graph: DiGraph,
    workload: QueryWorkload,
    *,
    settings: BenchmarkSettings = DEFAULT_SETTINGS,
) -> Tuple[List[Tuple[float, float]], LogLogFit]:
    """Per-query (#results, enumeration ms) points and their log-log fit (Figure 11)."""
    results = _collect(graph, workload, settings=settings)
    points = [
        (float(r.count), r.stats.enumeration_seconds * 1e3)
        for r in results
        if r.count > 0 and r.stats.enumeration_seconds > 0
    ]
    fit = loglog_fit([p[0] for p in points], [p[1] for p in points])
    return points, fit
