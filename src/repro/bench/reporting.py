"""Plain-text rendering of benchmark tables and series.

The paper reports numbers in scientific notation (e.g. ``2.28e-1`` ms); the
formatters here do the same so the regenerated tables can be compared to the
originals side by side.  Output goes to stdout, which pytest-benchmark
captures with ``-s`` and the EXPERIMENTS.md workflow copies verbatim.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = [
    "format_value",
    "format_table",
    "format_series",
    "format_latency_summary",
    "print_table",
    "print_series",
]


def format_value(value: object, *, scientific: bool = True) -> str:
    """Render one cell the way the paper's tables do."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if scientific:
            return f"{value:.2e}"
        return f"{value:.3f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    *,
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
    scientific: bool = True,
) -> str:
    """Render rows of dicts as an aligned plain-text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered: List[List[str]] = [[str(c) for c in columns]]
    for row in rows:
        rendered.append([format_value(row.get(c), scientific=scientific) for c in columns])
    widths = [max(len(r[i]) for r in rendered) for i in range(len(columns))]
    lines = []
    if title:
        lines.append(title)
    header, *body = rendered
    lines.append("  ".join(cell.ljust(width) for cell, width in zip(header, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for row_cells in body:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row_cells, widths)))
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Mapping[object, object]],
    *,
    x_label: str = "k",
    title: Optional[str] = None,
    scientific: bool = True,
) -> str:
    """Render named series (figure data) as a table with one column per series.

    ``series`` maps a series name (e.g. algorithm) to ``{x: y}`` points; the
    x values of the first series define the row order.
    """
    if not series:
        return f"{title}\n(no series)" if title else "(no series)"
    names = list(series)
    xs: List[object] = []
    for points in series.values():
        for x in points:
            if x not in xs:
                xs.append(x)
    rows: List[Dict[str, object]] = []
    for x in xs:
        row: Dict[str, object] = {x_label: x}
        for name in names:
            row[name] = series[name].get(x)
        rows.append(row)
    return format_table(rows, columns=[x_label, *names], title=title, scientific=scientific)


def format_latency_summary(
    summary: Mapping[str, float],
    *,
    title: Optional[str] = None,
    scientific: bool = False,
) -> str:
    """Render one :func:`repro.bench.metrics.latency_summary` dict as a table.

    Columns follow the summary's own key order (count, mean, percentiles,
    max), so a benchmark printing several concurrency levels lines them up.
    """
    return format_table([dict(summary)], title=title, scientific=scientific)


def print_table(rows: Sequence[Mapping[str, object]], **kwargs) -> None:
    """Print :func:`format_table` output followed by a blank line."""
    print(format_table(rows, **kwargs))
    print()


def print_series(series: Mapping[str, Mapping[object, object]], **kwargs) -> None:
    """Print :func:`format_series` output followed by a blank line."""
    print(format_series(series, **kwargs))
    print()
