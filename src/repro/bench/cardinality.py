"""Cardinality-estimation accuracy (Figure 18).

For each hop constraint the harness compares three numbers averaged over a
query workload: the actual result count (from IDX-DFS), the full-fledged
estimate (the walk count produced by Algorithm 5's dynamic programs) and the
preliminary estimate (Eq. 5).  The paper's observation — the full-fledged
estimator tracks the truth closely while the gap widens with ``k`` because
walks increasingly outnumber paths — falls out of the same comparison here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.bench.runner import BenchmarkSettings, DEFAULT_SETTINGS
from repro.core.estimator import full_estimate, preliminary_estimate
from repro.core.index import LightWeightIndex
from repro.core.listener import RunConfig
from repro.core.engine import IdxDfs
from repro.graph.digraph import DiGraph
from repro.workloads.queries import QueryWorkload

__all__ = ["EstimationAccuracy", "estimation_accuracy"]


@dataclass(frozen=True)
class EstimationAccuracy:
    """Mean actual / estimated result counts for one hop constraint."""

    k: int
    actual: float
    full_fledged: float
    preliminary: float

    def as_row(self) -> Dict[str, object]:
        return {
            "k": self.k,
            "#results": self.actual,
            "full_fledged": self.full_fledged,
            "preliminary": self.preliminary,
        }

    @property
    def full_fledged_ratio(self) -> float:
        """Estimate / actual ratio of the full-fledged estimator (1.0 = exact)."""
        if self.actual == 0:
            return float("inf") if self.full_fledged > 0 else 1.0
        return self.full_fledged / self.actual


def estimation_accuracy(
    graph: DiGraph,
    workload: QueryWorkload,
    ks: Sequence[int],
    *,
    settings: BenchmarkSettings = DEFAULT_SETTINGS,
) -> Dict[int, EstimationAccuracy]:
    """Compute Figure 18's three series over the workload for each ``k``."""
    algorithm = IdxDfs()
    config = RunConfig(
        store_paths=False,
        time_limit_seconds=settings.time_limit_seconds,
        response_k=settings.response_k,
    )
    accuracy: Dict[int, EstimationAccuracy] = {}
    for k in ks:
        actual_counts = []
        full_estimates = []
        preliminary_estimates = []
        for query in workload.with_k(k):
            index = LightWeightIndex.build(graph, query)
            preliminary_estimates.append(preliminary_estimate(index))
            full_estimates.append(float(full_estimate(index).walk_count))
            actual_counts.append(algorithm.run(graph, query, config).count)
        accuracy[k] = EstimationAccuracy(
            k=k,
            actual=float(np.mean(actual_counts)),
            full_fledged=float(np.mean(full_estimates)),
            preliminary=float(np.mean(preliminary_estimates)),
        )
    return accuracy
