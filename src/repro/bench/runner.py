"""Run algorithms over query workloads with uniform measurement settings.

:class:`BenchmarkSettings` is the scaled-down analogue of the paper's
experimental setup (two-minute timeout, 1 000-query sets, response time at
1 000 results); :func:`run_workload` evaluates one algorithm over one
workload and returns the per-query results the rest of the harness
aggregates.  :func:`run_workload_batched` routes the same measurement
through the :class:`~repro.api.Database` façade — inline, thread-pool or
process-pool backend depending on ``max_workers`` / ``processes`` — which
shares reverse-BFS distance arrays across target-sharing queries; this is
the execution path behind the Figure 13/14 throughput benchmarks and the
``--batch`` CLI mode.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.api import Database
from repro.baselines.registry import get_algorithm
from repro.core.algorithm import Algorithm
from repro.core.engine import BatchResult, BatchStats
from repro.core.listener import RunConfig
from repro.core.result import QueryResult
from repro.graph.digraph import DiGraph
from repro.workloads.queries import QueryWorkload

__all__ = [
    "BenchmarkSettings",
    "run_workload",
    "run_workload_batched",
    "run_algorithms",
    "DEFAULT_SETTINGS",
]


@dataclass(frozen=True)
class BenchmarkSettings:
    """Measurement settings shared by every benchmark in the suite."""

    #: Per-query time limit in seconds (the paper uses 120 s).
    time_limit_seconds: float = 2.0
    #: Number of results after which the response time is recorded
    #: (the paper uses 1000; scaled down with the graphs).
    response_k: int = 100
    #: Store paths in memory (disabled for benchmarks: counting is enough).
    store_paths: bool = False
    #: Optional cap on results per query, to bound the worst cases.
    result_limit: Optional[int] = None
    #: Enumeration engine selection (``auto`` / ``kernel`` / ``recursive``),
    #: see :attr:`repro.core.listener.RunConfig.engine`.
    engine: str = "auto"

    def to_run_config(self) -> RunConfig:
        """The equivalent per-query :class:`RunConfig`."""
        return RunConfig(
            store_paths=self.store_paths,
            result_limit=self.result_limit,
            time_limit_seconds=self.time_limit_seconds,
            response_k=self.response_k,
            engine=self.engine,
        )

    def scaled(self, **changes) -> "BenchmarkSettings":
        """A copy with some fields changed."""
        return replace(self, **changes)


#: Defaults used by the benchmark suite; chosen so the full suite completes
#: in minutes while preserving the paper's relative comparisons.
DEFAULT_SETTINGS = BenchmarkSettings()


def run_workload(
    algorithm: Algorithm | str,
    graph: DiGraph,
    workload: QueryWorkload | Sequence,
    *,
    settings: BenchmarkSettings = DEFAULT_SETTINGS,
) -> List[QueryResult]:
    """Evaluate every query of ``workload`` with ``algorithm``.

    ``algorithm`` may be an :class:`Algorithm` instance or a registry name.
    """
    algo = get_algorithm(algorithm) if isinstance(algorithm, str) else algorithm
    config = settings.to_run_config()
    results: List[QueryResult] = []
    for query in workload:
        results.append(algo.run(graph, query, config))
    return results


def run_workload_batched(
    algorithm: Algorithm | str,
    graph: DiGraph,
    workload: QueryWorkload | Sequence,
    *,
    settings: BenchmarkSettings = DEFAULT_SETTINGS,
    max_workers: int = 1,
    processes: int = 1,
    shards: Optional[int] = None,
    start_method: Optional[str] = None,
) -> BatchResult:
    """Evaluate ``workload`` through the :class:`~repro.api.Database` façade.

    Per-query results match :func:`run_workload` exactly; the returned
    :class:`~repro.core.engine.BatchResult` additionally carries the batch
    statistics (reverse-BFS cache hits, batch wall clock).  Non-indexed
    baselines run unchanged — batching only removes work the index-based
    algorithms would otherwise repeat.

    ``processes > 1`` selects the process backend (target-sharded workers
    over a shared-memory graph image); ``max_workers > 1`` the thread
    backend; otherwise the workload runs inline.  ``shards`` (default: one
    per worker) and ``start_method`` are forwarded.  Pools and shared
    segments are torn down before returning.
    """
    algo = get_algorithm(algorithm) if isinstance(algorithm, str) else algorithm
    if processes > 1:
        backend, workers = "processes", processes
    elif max_workers > 1:
        backend, workers = "threads", max_workers
    else:
        backend, workers = "inline", None
    with Database(
        graph,
        backend=backend,
        algorithm=algo,
        workers=workers,
        shards=shards,
        start_method=start_method,
    ) as db:
        stream = db.batch(
            list(workload),
            store_paths=settings.store_paths,
            limit=settings.result_limit,
            deadline=settings.time_limit_seconds,
            response_k=settings.response_k,
            engine=settings.engine,
        )
        results = stream.results()
        stats = stream.stats()
    return BatchResult(
        results=results,
        stats=BatchStats(
            queries_run=stats.completed,
            reverse_bfs_runs=stats.reverse_bfs_runs,
            bfs_cache_hits=stats.bfs_cache_hits,
            wall_seconds=stats.wall_seconds,
        ),
    )


def run_algorithms(
    algorithm_names: Sequence[str],
    graph: DiGraph,
    workload: QueryWorkload | Sequence,
    *,
    settings: BenchmarkSettings = DEFAULT_SETTINGS,
    batch: bool = False,
    max_workers: int = 1,
    processes: int = 1,
    shards: Optional[int] = None,
    start_method: Optional[str] = None,
) -> Dict[str, List[QueryResult]]:
    """Evaluate the same workload with several algorithms (by registry name).

    With ``batch=True`` every algorithm runs through the batch executor
    (index-based ones share reverse-BFS work; baselines are unaffected);
    ``processes > 1`` implies batch mode and fans each algorithm's batch out
    over worker processes.
    """
    if batch or processes > 1:
        return {
            name: run_workload_batched(
                name,
                graph,
                workload,
                settings=settings,
                max_workers=max_workers,
                processes=processes,
                shards=shards,
                start_method=start_method,
            ).results
            for name in algorithm_names
        }
    return {
        name: run_workload(name, graph, workload, settings=settings)
        for name in algorithm_names
    }
