"""Memory accounting for the index and the join's partial results (Table 7).

The paper reports the maximum memory consumed by (a) the light-weight index
and (b) IDX-JOIN's materialised partial results, per hop constraint.  The
same quantities are derived here from the byte estimates every run records
in :class:`~repro.core.result.EnumerationStats` (8 bytes per stored vertex
id), so the numbers are deterministic and do not depend on allocator
behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.bench.runner import BenchmarkSettings, DEFAULT_SETTINGS, run_workload
from repro.graph.digraph import DiGraph
from repro.workloads.queries import QueryWorkload

__all__ = ["MemoryFootprint", "memory_consumption"]


@dataclass(frozen=True)
class MemoryFootprint:
    """Peak index and partial-result memory for one hop constraint."""

    k: int
    index_mb: float
    partial_results_mb: float

    def as_row(self) -> Dict[str, object]:
        return {
            "k": self.k,
            "index_mb": self.index_mb,
            "partial_results_mb": self.partial_results_mb,
        }


def memory_consumption(
    graph: DiGraph,
    workload: QueryWorkload,
    ks: Sequence[int],
    *,
    settings: BenchmarkSettings = DEFAULT_SETTINGS,
) -> Dict[int, MemoryFootprint]:
    """Maximum index / partial-result memory of IDX-JOIN per ``k`` (Table 7)."""
    footprints: Dict[int, MemoryFootprint] = {}
    for k in ks:
        results = run_workload("IDX-JOIN", graph, workload.with_k(k), settings=settings)
        index_bytes = max(r.stats.index_bytes for r in results)
        partial_bytes = max(r.stats.peak_partial_result_bytes for r in results)
        footprints[k] = MemoryFootprint(
            k=k,
            index_mb=index_bytes / (1024 * 1024),
            partial_results_mb=partial_bytes / (1024 * 1024),
        )
    return footprints
