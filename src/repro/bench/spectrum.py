"""Spectrum analysis of the join-plan space (Figure 9).

For one query the harness measures the enumeration time of every plan in the
space the paper's optimizer searches:

* the left-deep plan — the index DFS from ``s`` (Algorithm 4);
* every bushy plan — the index join (Algorithm 6) at each interior cut
  position ``1 <= i <= k - 1``;

plus the time spent by the join-order optimizer itself (Algorithm 5) and the
end-to-end time of PathEnum's actual choice.  The paper's conclusion — the
optimizer picks a near-optimal plan and its overhead only matters for short
queries — can then be read directly off the returned numbers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.dfs import run_idx_dfs
from repro.core.engine import PathEnum
from repro.core.estimator import full_estimate, find_cut_position
from repro.core.index import LightWeightIndex
from repro.core.join import run_idx_join
from repro.core.listener import Deadline, ResultCollector, RunConfig
from repro.core.query import Query
from repro.core.result import EnumerationStats
from repro.errors import EnumerationTimeout
from repro.graph.digraph import DiGraph

__all__ = ["SpectrumPoint", "SpectrumAnalysis", "spectrum_analysis"]


@dataclass(frozen=True)
class SpectrumPoint:
    """One evaluated plan of the spectrum."""

    plan: str
    cut_position: Optional[int]
    enumeration_ms: float
    results: int
    timed_out: bool

    def as_row(self) -> Dict[str, object]:
        return {
            "plan": self.plan,
            "cut": self.cut_position,
            "enumeration_ms": self.enumeration_ms,
            "results": self.results,
            "timed_out": self.timed_out,
        }


@dataclass
class SpectrumAnalysis:
    """All plan timings for one query plus the optimizer's behaviour."""

    query: Query
    index_ms: float
    optimization_ms: float
    pathenum_total_ms: float
    pathenum_plan: str
    points: List[SpectrumPoint] = field(default_factory=list)

    def best_point(self) -> SpectrumPoint:
        """The fastest plan actually measured."""
        return min(self.points, key=lambda p: p.enumeration_ms)

    def left_deep_points(self) -> List[SpectrumPoint]:
        return [p for p in self.points if p.plan == "left-deep"]

    def bushy_points(self) -> List[SpectrumPoint]:
        return [p for p in self.points if p.plan == "bushy"]


def spectrum_analysis(
    graph: DiGraph,
    query: Query,
    *,
    time_limit_seconds: Optional[float] = None,
) -> SpectrumAnalysis:
    """Measure every plan in the optimizer's search space for one query."""
    index_started = time.perf_counter()
    index = LightWeightIndex.build(graph, query)
    index_ms = 1e3 * (time.perf_counter() - index_started)

    optimization_started = time.perf_counter()
    estimate = full_estimate(index)
    find_cut_position(estimate)
    optimization_ms = 1e3 * (time.perf_counter() - optimization_started)

    points: List[SpectrumPoint] = []

    def _measure(plan: str, cut: Optional[int]) -> None:
        collector = ResultCollector(store_paths=False, response_k=1 << 60)
        deadline = Deadline(time_limit_seconds)
        stats = EnumerationStats()
        started = time.perf_counter()
        timed_out = False
        try:
            if plan == "left-deep":
                run_idx_dfs(index, collector, deadline=deadline, stats=stats)
            else:
                run_idx_join(index, cut, collector, deadline=deadline, stats=stats)
        except EnumerationTimeout:
            timed_out = True
        elapsed_ms = 1e3 * (time.perf_counter() - started)
        points.append(
            SpectrumPoint(
                plan=plan,
                cut_position=cut,
                enumeration_ms=elapsed_ms,
                results=collector.count,
                timed_out=timed_out,
            )
        )

    _measure("left-deep", None)
    for cut in range(1, query.k):
        _measure("bushy", cut)

    engine = PathEnum()
    config = RunConfig(store_paths=False, time_limit_seconds=time_limit_seconds)
    pathenum_result = engine.run(graph, query, config)

    return SpectrumAnalysis(
        query=query,
        index_ms=index_ms,
        optimization_ms=optimization_ms,
        pathenum_total_ms=pathenum_result.query_millis,
        pathenum_plan=pathenum_result.stats.plan or "dfs",
        points=points,
    )
