"""Aggregate metrics over a set of per-query results (Section 7.1).

The paper reports three metrics per algorithm and query set:

* **query time** — arithmetic-mean wall clock per query, in milliseconds,
  with timed-out queries clamped to the time limit;
* **throughput** — results found per second, computed from the results found
  before the deadline even for timed-out queries;
* **response time** — time until the first 1 000 results (or all of them,
  when a query has fewer).

This module also provides the latency percentiles (Figure 8), the query-time
distribution buckets (Table 4) and the cumulative distribution (Figure 16).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.result import QueryResult

__all__ = [
    "WorkloadMetrics",
    "aggregate",
    "latency_percentile",
    "latency_summary",
    "time_distribution",
    "cumulative_distribution",
]

#: Percentiles reported by :func:`latency_summary` — the Figure-8 view plus
#: the serving-benchmark tail.
SUMMARY_PERCENTILES = (50.0, 95.0, 99.0, 99.9)


@dataclass(frozen=True)
class WorkloadMetrics:
    """Aggregate metrics of one algorithm over one query set."""

    algorithm: str
    num_queries: int
    #: Arithmetic mean query time in milliseconds.
    mean_query_ms: float
    #: Mean throughput (results per second).
    mean_throughput: float
    #: Mean response time in milliseconds (queries with a recorded probe).
    mean_response_ms: Optional[float]
    #: Fraction of queries that hit the time limit.
    timeout_fraction: float
    #: Total number of results found across the query set.
    total_results: int

    def as_row(self) -> Dict[str, object]:
        """Flat representation used by the reporting layer."""
        return {
            "algorithm": self.algorithm,
            "queries": self.num_queries,
            "query_ms": self.mean_query_ms,
            "throughput": self.mean_throughput,
            "response_ms": self.mean_response_ms,
            "timeout_frac": self.timeout_fraction,
            "results": self.total_results,
        }


def aggregate(results: Sequence[QueryResult], *, algorithm: Optional[str] = None) -> WorkloadMetrics:
    """Compute :class:`WorkloadMetrics` over ``results``.

    ``algorithm`` overrides the name when aggregating a mixed sequence.
    """
    if not results:
        raise ValueError("cannot aggregate an empty result sequence")
    name = algorithm if algorithm is not None else results[0].algorithm
    query_ms = [r.query_millis for r in results]
    throughput = [r.throughput for r in results]
    responses = [r.response_seconds * 1e3 for r in results if r.response_seconds is not None]
    # Queries with fewer than response_k results respond as soon as they are
    # complete; use the total query time for them, as the paper does.
    responses.extend(
        r.query_millis for r in results if r.response_seconds is None
    )
    timeouts = sum(1 for r in results if r.stats.timed_out)
    return WorkloadMetrics(
        algorithm=name,
        num_queries=len(results),
        mean_query_ms=float(np.mean(query_ms)),
        mean_throughput=float(np.mean(throughput)),
        mean_response_ms=float(np.mean(responses)) if responses else None,
        timeout_fraction=timeouts / len(results),
        total_results=sum(r.count for r in results),
    )


def latency_percentile(results: Sequence[QueryResult], percentile: float = 99.9) -> float:
    """The ``percentile``-th percentile of response time in milliseconds (Figure 8)."""
    if not results:
        raise ValueError("cannot compute a percentile over no results")
    values = [
        (r.response_seconds if r.response_seconds is not None else r.query_seconds) * 1e3
        for r in results
    ]
    return float(np.percentile(values, percentile))


def latency_summary(
    latencies_ms: Sequence[float],
    *,
    percentiles: Sequence[float] = SUMMARY_PERCENTILES,
) -> Dict[str, float]:
    """One-pass latency summary: percentiles, mean and max, in milliseconds.

    ``latencies_ms`` is a flat sequence of per-query latencies (the serving
    benchmark's client-observed completion times; any millisecond series
    works).  All statistics come from a single sort + vectorised percentile
    evaluation — no repeated :func:`latency_percentile` calls over the same
    data.  Keys: ``count``, ``mean_ms``, ``max_ms`` and one ``pXX_ms`` per
    requested percentile (``99.9`` renders as ``p99_9_ms``).
    """
    if len(latencies_ms) == 0:
        raise ValueError("cannot summarise an empty latency sequence")
    values = np.sort(np.asarray(latencies_ms, dtype=np.float64))
    points = np.percentile(values, list(percentiles))
    summary: Dict[str, float] = {
        "count": int(values.size),
        "mean_ms": float(values.mean()),
    }
    for percentile, point in zip(percentiles, points):
        label = f"{percentile:g}".replace(".", "_")
        summary[f"p{label}_ms"] = float(point)
    summary["max_ms"] = float(values[-1])
    return summary


def time_distribution(
    results: Sequence[QueryResult],
    *,
    fast_threshold_ms: float,
    slow_threshold_ms: float,
) -> Dict[str, float]:
    """Fractions of queries faster than / slower than the thresholds (Table 4).

    The paper uses 60 s and 120 s; the benchmark harness passes scaled-down
    thresholds matching its scaled-down time limit.
    """
    if not results:
        raise ValueError("cannot compute a distribution over no results")
    total = len(results)
    fast = sum(1 for r in results if r.query_millis < fast_threshold_ms)
    slow = sum(1 for r in results if r.stats.timed_out or r.query_millis >= slow_threshold_ms)
    return {"fast": fast / total, "slow": slow / total}


def cumulative_distribution(
    results: Sequence[QueryResult], *, points: int = 50
) -> List[Tuple[float, float]]:
    """The CDF of query time as ``(query_ms, fraction_completed)`` pairs (Figure 16)."""
    if not results:
        raise ValueError("cannot compute a CDF over no results")
    times = np.sort(np.asarray([r.query_millis for r in results], dtype=np.float64))
    fractions = np.arange(1, len(times) + 1) / len(times)
    if len(times) <= points:
        return list(zip(times.tolist(), fractions.tolist()))
    positions = np.linspace(0, len(times) - 1, points).astype(int)
    return list(zip(times[positions].tolist(), fractions[positions].tolist()))
