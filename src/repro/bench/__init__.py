"""Benchmark harness regenerating every table and figure of the paper.

The modules here do the measuring and aggregating; the runnable entry points
live in the repository's ``benchmarks/`` directory (one pytest-benchmark
file per table/figure) and in the CLI (``pathenum bench``).
"""

from repro.bench.breakdown import (
    detailed_metrics,
    phase_breakdown,
    query_time_distribution,
    technique_breakdown,
)
from repro.bench.cardinality import EstimationAccuracy, estimation_accuracy
from repro.bench.comparison import (
    OutlierMetrics,
    outlier_split,
    overall_comparison,
    result_count_statistics,
    sweep_k,
)
from repro.bench.dynamic import dynamic_latency
from repro.bench.memory import MemoryFootprint, memory_consumption
from repro.bench.metrics import (
    WorkloadMetrics,
    aggregate,
    cumulative_distribution,
    latency_percentile,
    time_distribution,
)
from repro.bench.regression import LogLogFit, index_size_vs_time, loglog_fit, result_count_vs_time
from repro.bench.reporting import format_series, format_table, print_series, print_table
from repro.bench.runner import (
    DEFAULT_SETTINGS,
    BenchmarkSettings,
    run_algorithms,
    run_workload,
)
from repro.bench.spectrum import SpectrumAnalysis, SpectrumPoint, spectrum_analysis

__all__ = [
    "BenchmarkSettings",
    "DEFAULT_SETTINGS",
    "run_workload",
    "run_algorithms",
    "WorkloadMetrics",
    "aggregate",
    "latency_percentile",
    "time_distribution",
    "cumulative_distribution",
    "overall_comparison",
    "sweep_k",
    "outlier_split",
    "OutlierMetrics",
    "result_count_statistics",
    "phase_breakdown",
    "technique_breakdown",
    "detailed_metrics",
    "query_time_distribution",
    "LogLogFit",
    "loglog_fit",
    "index_size_vs_time",
    "result_count_vs_time",
    "SpectrumAnalysis",
    "SpectrumPoint",
    "spectrum_analysis",
    "EstimationAccuracy",
    "estimation_accuracy",
    "MemoryFootprint",
    "memory_consumption",
    "dynamic_latency",
    "format_table",
    "format_series",
    "print_table",
    "print_series",
]
