"""Dynamic-graph benchmark: tail latency under a stream of edge insertions (Figure 8).

Each held-out edge is applied to the graph and the cycle query it triggers is
evaluated with the requested algorithms; the 99.9 % (configurable) percentile
of the per-query response time is reported per hop constraint, exactly the
series of Figure 8.  Because PathEnum builds its index per query, no
persistent structure needs maintenance between updates — which is the point
the experiment makes.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.bench.metrics import latency_percentile
from repro.bench.runner import BenchmarkSettings, DEFAULT_SETTINGS
from repro.baselines.registry import get_algorithm
from repro.core.result import QueryResult
from repro.workloads.dynamic import DynamicWorkload

__all__ = ["dynamic_latency"]


def dynamic_latency(
    workload: DynamicWorkload,
    algorithms: Sequence[str],
    ks: Sequence[int],
    *,
    settings: BenchmarkSettings = DEFAULT_SETTINGS,
    percentile: float = 99.9,
) -> Dict[int, Dict[str, float]]:
    """Tail response-time latency (ms) per algorithm and hop constraint."""
    latencies: Dict[int, Dict[str, float]] = {}
    config = settings.to_run_config()
    for k in ks:
        per_algorithm: Dict[str, float] = {}
        for name in algorithms:
            algorithm = get_algorithm(name)
            results: List[QueryResult] = []
            rescoped = DynamicWorkload(
                initial_graph=workload.initial_graph,
                updates=list(workload.updates),
                k=k,
            )
            for snapshot, _edge, query in rescoped.replay():
                if query is None:
                    continue
                results.append(algorithm.run(snapshot, query, config))
            if results:
                per_algorithm[name] = latency_percentile(results, percentile)
        latencies[k] = per_algorithm
    return latencies
