"""Dynamic-graph benchmark: tail latency under a stream of edge insertions (Figure 8).

Each held-out edge is applied to the graph and the cycle query it triggers is
evaluated with the requested algorithms; the 99.9 % (configurable) percentile
of the per-query response time is reported per hop constraint, exactly the
series of Figure 8.  Because PathEnum builds its index per query, no
persistent structure needs maintenance between updates — which is the point
the experiment makes.

The replay runs through the :mod:`repro.api` façade end to end: the workload
publishes each update as a live epoch (see
:meth:`~repro.workloads.dynamic.DynamicWorkload.replay`) and every cycle
query is submitted to a :class:`~repro.api.Database` opened on the epoch's
snapshot.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.api import Database
from repro.bench.metrics import latency_percentile
from repro.bench.runner import BenchmarkSettings, DEFAULT_SETTINGS
from repro.baselines.registry import get_algorithm
from repro.core.result import QueryResult
from repro.workloads.dynamic import DynamicWorkload

__all__ = ["dynamic_latency"]


def dynamic_latency(
    workload: DynamicWorkload,
    algorithms: Sequence[str],
    ks: Sequence[int],
    *,
    settings: BenchmarkSettings = DEFAULT_SETTINGS,
    percentile: float = 99.9,
) -> Dict[int, Dict[str, float]]:
    """Tail response-time latency (ms) per algorithm and hop constraint."""
    latencies: Dict[int, Dict[str, float]] = {}
    overrides = {
        "limit": settings.result_limit,
        "deadline": settings.time_limit_seconds,
        "store_paths": settings.store_paths,
        "response_k": settings.response_k,
        "engine": settings.engine,
    }
    for k in ks:
        per_algorithm: Dict[str, float] = {}
        for name in algorithms:
            algorithm = get_algorithm(name)
            results: List[QueryResult] = []
            rescoped = DynamicWorkload(
                initial_graph=workload.initial_graph,
                updates=list(workload.updates),
                k=k,
            )
            for snapshot, _edge, query in rescoped.replay():
                if query is None:
                    continue
                with Database(snapshot, algorithm=algorithm) as database:
                    results.append(database.query(query, **overrides).result())
            if results:
                per_algorithm[name] = latency_percentile(results, percentile)
        latencies[k] = per_algorithm
    return latencies
