"""Per-phase and per-technique breakdowns: Figures 6, 7, 12, 17 and Table 4.

These harnesses look inside :class:`~repro.core.result.EnumerationStats`
rather than only at end-to-end times: preprocessing vs. enumeration
(Figure 7), the execution time of each individual technique — BFS, index
construction, join-order optimization, DFS, join — (Figures 12 and 17), the
detailed pruning metrics (Figure 6) and the query-time distribution buckets
(Table 4).
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

import numpy as np

from repro.bench.metrics import time_distribution
from repro.bench.runner import BenchmarkSettings, DEFAULT_SETTINGS, run_workload
from repro.core.result import Phase, QueryResult
from repro.graph.digraph import DiGraph
from repro.workloads.queries import QueryWorkload

__all__ = [
    "phase_breakdown",
    "technique_breakdown",
    "detailed_metrics",
    "query_time_distribution",
]


def phase_breakdown(
    graph: DiGraph,
    workload: QueryWorkload,
    algorithms: Sequence[str],
    ks: Sequence[int],
    *,
    settings: BenchmarkSettings = DEFAULT_SETTINGS,
) -> Dict[int, Dict[str, Mapping[str, float]]]:
    """Preprocessing vs. enumeration time per algorithm and ``k`` (Figure 7).

    Returns ``{k: {algorithm: {"preprocessing_ms": .., "enumeration_ms": ..}}}``
    with arithmetic means over the workload.
    """
    breakdown: Dict[int, Dict[str, Mapping[str, float]]] = {}
    for k in ks:
        rescoped = workload.with_k(k)
        per_algorithm: Dict[str, Mapping[str, float]] = {}
        for name in algorithms:
            results = run_workload(name, graph, rescoped, settings=settings)
            per_algorithm[name] = {
                "preprocessing_ms": 1e3 * float(
                    np.mean([r.stats.preprocessing_seconds for r in results])
                ),
                "enumeration_ms": 1e3 * float(
                    np.mean([r.stats.enumeration_seconds for r in results])
                ),
            }
        breakdown[k] = per_algorithm
    return breakdown


def technique_breakdown(
    graph: DiGraph,
    workload: QueryWorkload,
    ks: Sequence[int],
    *,
    settings: BenchmarkSettings = DEFAULT_SETTINGS,
) -> Dict[int, Mapping[str, float]]:
    """Execution time of every individual technique per ``k`` (Figures 12, 17).

    Runs IDX-DFS and IDX-JOIN over the workload and reports mean milliseconds
    for: BFS, index construction, join-order optimization, DFS enumeration and
    join enumeration, plus the IDX-DFS / IDX-JOIN throughput.
    """
    breakdown: Dict[int, Mapping[str, float]] = {}
    for k in ks:
        rescoped = workload.with_k(k)
        dfs_results = run_workload("IDX-DFS", graph, rescoped, settings=settings)
        join_results = run_workload("IDX-JOIN", graph, rescoped, settings=settings)

        def _mean_phase(results: Sequence[QueryResult], phase: str) -> float:
            return 1e3 * float(np.mean([r.stats.phase(phase) for r in results]))

        breakdown[k] = {
            "bfs_ms": _mean_phase(dfs_results, Phase.BFS),
            "index_construction_ms": _mean_phase(dfs_results, Phase.INDEX),
            "optimization_ms": _mean_phase(join_results, Phase.OPTIMIZATION),
            "dfs_ms": _mean_phase(dfs_results, Phase.ENUMERATION),
            "join_ms": _mean_phase(join_results, Phase.JOIN),
            "idx_dfs_throughput": float(np.mean([r.throughput for r in dfs_results])),
            "idx_join_throughput": float(np.mean([r.throughput for r in join_results])),
        }
    return breakdown


def detailed_metrics(
    graph: DiGraph,
    workload: QueryWorkload,
    algorithms: Sequence[str],
    ks: Sequence[int],
    *,
    settings: BenchmarkSettings = DEFAULT_SETTINGS,
) -> Dict[int, Dict[str, Mapping[str, float]]]:
    """Edges accessed, invalid partial results and results per ``k`` (Figure 6)."""
    metrics: Dict[int, Dict[str, Mapping[str, float]]] = {}
    for k in ks:
        rescoped = workload.with_k(k)
        per_algorithm: Dict[str, Mapping[str, float]] = {}
        for name in algorithms:
            results = run_workload(name, graph, rescoped, settings=settings)
            per_algorithm[name] = {
                "edges": float(np.mean([r.stats.edges_accessed for r in results])),
                "invalid": float(np.mean([r.stats.invalid_partial_results for r in results])),
                "results": float(np.mean([r.count for r in results])),
            }
        metrics[k] = per_algorithm
    return metrics


def query_time_distribution(
    graph: DiGraph,
    workload: QueryWorkload,
    algorithms: Sequence[str],
    ks: Sequence[int],
    *,
    settings: BenchmarkSettings = DEFAULT_SETTINGS,
    fast_fraction_of_limit: float = 0.5,
) -> Dict[int, Dict[str, Mapping[str, float]]]:
    """Fractions of fast (< half the limit) and timed-out queries (Table 4).

    The paper buckets at 60 s and 120 s with a 120 s limit; the harness keeps
    the same 0.5 / 1.0 proportions of whatever limit the settings use.
    """
    limit_ms = settings.time_limit_seconds * 1e3
    distribution: Dict[int, Dict[str, Mapping[str, float]]] = {}
    for k in ks:
        rescoped = workload.with_k(k)
        per_algorithm: Dict[str, Mapping[str, float]] = {}
        for name in algorithms:
            results = run_workload(name, graph, rescoped, settings=settings)
            per_algorithm[name] = time_distribution(
                results,
                fast_threshold_ms=fast_fraction_of_limit * limit_ms,
                slow_threshold_ms=limit_ms,
            )
        distribution[k] = per_algorithm
    return distribution
