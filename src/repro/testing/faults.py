"""Deterministic, process-safe fault injection for the serving stack.

A *fault plan* is a small JSON document naming exactly which failure to
inject where::

    {
      "seed": 7,
      "state_dir": "/tmp/faults-x",          # optional: global at-most-once
      "faults": [
        {"site": "worker.task", "op": "kill", "position": 3},
        {"site": "server.frame.out", "op": "truncate", "at": 2}
      ]
    }

The plan travels in the ``REPRO_FAULTS`` environment variable — either
inline JSON or a path to a JSON file — so it crosses every process boundary
the serving stack creates (forked/spawned pool workers, ``repro serve``
subprocesses) without any coordination channel of its own.  Each process
parses the plan once and keeps per-fault hit counters; determinism comes
from counting *matching events* at a named site rather than from timing.

Sites and the operations they understand:

``worker.task``
    Checked once per query evaluated by :func:`repro.core.engine.\
    _iter_shard_results` (all backends: process workers, threads, inline).
    Context: ``position`` (workload position of the query).  Ops:
    ``kill`` (``os._exit`` in a worker process, an injected ``RuntimeError``
    when the site runs in the main process, e.g. the thread backend),
    ``memory_error`` (raise ``MemoryError``), ``error`` (raise
    ``RuntimeError``).

``server.frame.out``
    Checked for every frame a ``QueryServer`` / ``RouterServer`` writes
    (client-side writes in the same process do **not** hit the site — the
    server passes it explicitly).  Context: ``frame_type``.  Ops: ``drop``
    (swallow the frame), ``delay`` (sleep ``delay_ms`` before writing),
    ``truncate`` (write the first ``keep_bytes`` bytes of the frame, then
    sever the connection).

Matching: a fault fires on the ``at``-th matching event (1-based, counted
per process) and keeps firing for ``count`` consecutive matches.  With a
``state_dir``, ``once: true`` (the default) makes the firing *globally*
at-most-once across every process sharing the plan — an atomically created
marker file is the cross-process gate — which is what lets "kill the worker
executing position P" recover: the respawned worker re-executes P, finds
the marker, and proceeds.  ``once: false`` turns the fault into a
deterministic repeat-offender (every respawn crashes again), the shape the
retry-cap tests need.

Everything here is standard library only and import-cycle free; the hot
path cost without ``REPRO_FAULTS`` set is one environment lookup.
"""

from __future__ import annotations

import contextlib
import json
import multiprocessing
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

__all__ = [
    "ENV_VAR",
    "Fault",
    "FaultPlan",
    "active_plan",
    "install",
    "installed",
    "clear",
    "hit",
    "maybe_fail_task",
]

#: Environment variable carrying the plan (inline JSON or a file path).
ENV_VAR = "REPRO_FAULTS"

_SITES = ("worker.task", "server.frame.out")
_OPS = ("kill", "memory_error", "error", "drop", "delay", "truncate")


@dataclass
class Fault:
    """One injectable failure: where, what, and when it fires."""

    site: str
    op: str
    #: Fire on the ``at``-th matching event (1-based, per process).
    at: int = 1
    #: Keep firing for this many consecutive matching events.
    count: int = 1
    #: ``worker.task`` filter: only events for this workload position match.
    position: Optional[int] = None
    #: ``server.frame.out`` filter: only frames of this type match.
    frame_type: Optional[str] = None
    #: ``delay`` op: sleep this long before the write.
    delay_ms: float = 50.0
    #: ``truncate`` op: bytes of the frame actually written.
    keep_bytes: int = 2
    #: Fire at most once across *all* processes (needs a plan ``state_dir``).
    once: bool = True
    #: Per-process count of matching events (not serialised).
    hits: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.site not in _SITES:
            raise ValueError(f"unknown fault site {self.site!r}: use one of {_SITES}")
        if self.op not in _OPS:
            raise ValueError(f"unknown fault op {self.op!r}: use one of {_OPS}")
        if self.at < 1:
            raise ValueError("'at' is 1-based and must be positive")
        if self.count < 1:
            raise ValueError("'count' must be positive")

    def matches(self, site: str, position: Optional[int], frame_type: Optional[str]) -> bool:
        if site != self.site:
            return False
        if self.position is not None and position != self.position:
            return False
        if self.frame_type is not None and frame_type != self.frame_type:
            return False
        return True

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Fault":
        known = {
            "site", "op", "at", "count", "position", "frame_type",
            "delay_ms", "keep_bytes", "once",
        }
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown fault fields {sorted(unknown)}")
        return cls(**payload)  # type: ignore[arg-type]


class FaultPlan:
    """A parsed plan: the fault list plus the cross-process once-state."""

    def __init__(
        self,
        faults: List[Fault],
        *,
        seed: int = 0,
        state_dir: Optional[str] = None,
    ) -> None:
        self.faults = faults
        self.seed = int(seed)
        self.state_dir = state_dir
        self._lock = threading.Lock()

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultPlan":
        raw = payload.get("faults", [])
        if not isinstance(raw, list):
            raise ValueError("'faults' must be a list of fault objects")
        faults = [Fault.from_dict(dict(entry)) for entry in raw]
        state_dir = payload.get("state_dir")
        return cls(
            faults,
            seed=int(payload.get("seed", 0)),
            state_dir=None if state_dir is None else str(state_dir),
        )

    @classmethod
    def from_env_value(cls, value: str) -> "FaultPlan":
        text = value.strip()
        if not text.startswith("{"):
            with open(text, "r", encoding="utf-8") as handle:
                text = handle.read()
        return cls.from_dict(json.loads(text))

    def to_dict(self) -> Dict[str, object]:
        entries = []
        for fault in self.faults:
            entry: Dict[str, object] = {"site": fault.site, "op": fault.op}
            if fault.at != 1:
                entry["at"] = fault.at
            if fault.count != 1:
                entry["count"] = fault.count
            if fault.position is not None:
                entry["position"] = fault.position
            if fault.frame_type is not None:
                entry["frame_type"] = fault.frame_type
            if fault.op == "delay":
                entry["delay_ms"] = fault.delay_ms
            if fault.op == "truncate":
                entry["keep_bytes"] = fault.keep_bytes
            if not fault.once:
                entry["once"] = False
            entries.append(entry)
        payload: Dict[str, object] = {"seed": self.seed, "faults": entries}
        if self.state_dir is not None:
            payload["state_dir"] = self.state_dir
        return payload

    # -- firing -------------------------------------------------------- #
    def check(
        self,
        site: str,
        *,
        position: Optional[int] = None,
        frame_type: Optional[str] = None,
    ) -> Optional[Fault]:
        """Count one event at ``site``; return the fault firing on it, if any."""
        armed: Optional[Fault] = None
        with self._lock:
            for index, fault in enumerate(self.faults):
                if not fault.matches(site, position, frame_type):
                    continue
                fault.hits += 1
                if armed is None and fault.at <= fault.hits < fault.at + fault.count:
                    if self._claim_once(index, fault):
                        armed = fault
        return armed

    def _claim_once(self, index: int, fault: Fault) -> bool:
        """The cross-process at-most-once gate (atomic marker creation)."""
        if not fault.once or self.state_dir is None:
            return True
        marker = os.path.join(self.state_dir, f"fault-{index}.fired")
        try:
            os.close(os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
        except FileExistsError:
            return False
        except OSError:
            # An unusable state_dir degrades to per-process once semantics
            # rather than suppressing the fault entirely.
            return True
        return True


# ---------------------------------------------------------------------- #
# per-process plan cache keyed on the raw env value
# ---------------------------------------------------------------------- #
_CACHE_KEY: Optional[str] = None
_CACHE_PLAN: Optional[FaultPlan] = None
_CACHE_PID: Optional[int] = None
_CACHE_LOCK = threading.Lock()


def active_plan() -> Optional[FaultPlan]:
    """The process's current plan, parsed from ``REPRO_FAULTS`` (or ``None``).

    The parse is cached per (environment value, pid): counters survive
    across calls within one process, a changed env value resets them, and a
    forked child re-parses so it counts its own events from zero.
    """
    global _CACHE_KEY, _CACHE_PLAN, _CACHE_PID
    value = os.environ.get(ENV_VAR)
    if value is None:
        return None
    pid = os.getpid()
    if value == _CACHE_KEY and pid == _CACHE_PID:
        return _CACHE_PLAN
    with _CACHE_LOCK:
        if value == _CACHE_KEY and pid == _CACHE_PID:
            return _CACHE_PLAN
        try:
            plan = FaultPlan.from_env_value(value)
        except (ValueError, OSError, json.JSONDecodeError):
            plan = None
        _CACHE_KEY, _CACHE_PLAN, _CACHE_PID = value, plan, pid
    return plan


def install(plan, *, state_dir: Optional[str] = None) -> FaultPlan:
    """Install a plan into this process's environment (and children's).

    ``plan`` is a :class:`FaultPlan`, a plan ``dict`` or raw JSON text.
    ``state_dir`` (created if missing) enables the global at-most-once gate.
    Returns the parsed plan; :func:`clear` removes it.
    """
    if isinstance(plan, FaultPlan):
        parsed = plan
    elif isinstance(plan, str):
        parsed = FaultPlan.from_env_value(plan)
    else:
        parsed = FaultPlan.from_dict(dict(plan))
    if state_dir is not None:
        parsed.state_dir = state_dir
    if parsed.state_dir is not None:
        os.makedirs(parsed.state_dir, exist_ok=True)
    os.environ[ENV_VAR] = json.dumps(parsed.to_dict(), separators=(",", ":"))
    return active_plan()  # re-parse so env and cache agree exactly


def clear() -> None:
    """Remove any installed plan from the environment and the cache."""
    global _CACHE_KEY, _CACHE_PLAN, _CACHE_PID
    os.environ.pop(ENV_VAR, None)
    with _CACHE_LOCK:
        _CACHE_KEY = _CACHE_PLAN = _CACHE_PID = None


@contextlib.contextmanager
def installed(plan, *, state_dir: Optional[str] = None) -> Iterator[FaultPlan]:
    """Context manager: install a plan for the block, always clear after."""
    parsed = install(plan, state_dir=state_dir)
    try:
        yield parsed
    finally:
        clear()


# ---------------------------------------------------------------------- #
# site check helpers (the call sites in engine/protocol use these)
# ---------------------------------------------------------------------- #
def hit(
    site: str,
    *,
    position: Optional[int] = None,
    frame_type: Optional[str] = None,
) -> Optional[Fault]:
    """Count one event at ``site``; return a firing :class:`Fault` or ``None``.

    The no-plan fast path is one environment lookup.
    """
    plan = active_plan()
    if plan is None:
        return None
    return plan.check(site, position=position, frame_type=frame_type)


def maybe_fail_task(position: int) -> None:
    """The ``worker.task`` site: invoked once per evaluated query.

    ``kill`` exits the worker process abruptly (no cleanup — exactly what a
    segfaulted or OOM-killed worker looks like to the parent pool); when the
    site runs in the main process (thread backend, inline execution) it
    degrades to an injected exception so tests never kill themselves.
    """
    fault = hit("worker.task", position=position)
    if fault is None:
        return
    if fault.op == "kill":
        if multiprocessing.current_process().name != "MainProcess":
            os._exit(86)
        raise RuntimeError(f"injected worker crash at position {position}")
    if fault.op == "memory_error":
        raise MemoryError(f"injected memory error at position {position}")
    if fault.op == "error":
        raise RuntimeError(f"injected task error at position {position}")
    if fault.op == "delay":
        time.sleep(fault.delay_ms / 1e3)
