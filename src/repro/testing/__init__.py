"""Test-support machinery shipped with the library.

:mod:`repro.testing.faults` is the deterministic fault-injection harness
used by the chaos suite and ``benchmarks/bench_chaos.py``: a seeded fault
plan, carried in the ``REPRO_FAULTS`` environment variable, that worker
processes and server loops consult at well-defined *sites* (task execution,
outgoing frames).  It lives inside the package — not under ``tests/`` — so
spawned worker processes and ``repro serve`` subprocesses can import it
without any test scaffolding on their path.
"""

from repro.testing import faults

__all__ = ["faults"]
