"""PathEnum reproduction: real-time hop-constrained s-t path enumeration.

This package reimplements the system described in

    Sun, Chen, He, Hooi.  "PathEnum: Towards Real-Time Hop-Constrained s-t
    Path Enumeration."  SIGMOD 2021.

in pure Python, together with the baselines it is evaluated against, the
workload generators of its evaluation section and a benchmark harness that
regenerates every table and figure of the paper.

Quickstart
----------

The public surface is the :class:`~repro.api.Database` façade: open it from
a graph, a snapshot or a running server, submit declarative
:class:`~repro.api.QuerySpec` queries (built fluently with
:class:`~repro.api.Q`) and read the uniform
:class:`~repro.api.ResultStream` back — the same code runs inline, on a
thread or process pool, or against a ``repro serve`` instance.

>>> from repro import Database, GraphBuilder, Q
>>> builder = GraphBuilder()
>>> builder.add_edges([("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")])
4
>>> graph = builder.build()
>>> with Database(graph) as db:
...     result = db.query(Q("a", "d", 3), external=True).result()
>>> [graph.translate_path(p) for p in result.paths]
[('a', 'c', 'd'), ('a', 'b', 'c', 'd')]

Deprecation policy
------------------

The pre-façade entry points — ``QuerySession``, ``BatchExecutor``,
``ProcessBatchExecutor``, ``ExecutorCore`` and ``StreamRun`` — remain
importable from this package as thin shims that emit a
:class:`DeprecationWarning` pointing at the :class:`Database` equivalent.
They will keep working for the foreseeable future (their internal homes in
:mod:`repro.core.engine` are not deprecated — the façade is built on
them), but new code should not reach for them.
"""

import warnings as _warnings

from repro._version import __version__
from repro.api import BACKEND_CHOICES, Database, Q, QuerySpec, ResultStream, StreamStats
from repro.core import (
    AccumulativeConstraint,
    AutomatonConstraint,
    BatchResult,
    BatchStats,
    IdxDfs,
    IdxJoin,
    LightWeightIndex,
    PathEnum,
    PredicateConstraint,
    Query,
    QueryResult,
    RunConfig,
    SequenceAutomaton,
    count_paths,
    enumerate_paths,
)
from repro.distance import LandmarkOracle
from repro.errors import ReproError
from repro.graph import DiGraph, DynamicGraph, GraphBuilder, read_edge_list

__all__ = [
    "__version__",
    # the unified façade
    "Database",
    "Q",
    "QuerySpec",
    "ResultStream",
    "StreamStats",
    "BACKEND_CHOICES",
    # graphs
    "DiGraph",
    "GraphBuilder",
    "DynamicGraph",
    "read_edge_list",
    # queries and results
    "Query",
    "QueryResult",
    "RunConfig",
    "PathEnum",
    "IdxDfs",
    "IdxJoin",
    "LightWeightIndex",
    "enumerate_paths",
    "count_paths",
    "BatchResult",
    "BatchStats",
    # constraints
    "PredicateConstraint",
    "AccumulativeConstraint",
    "AutomatonConstraint",
    "SequenceAutomaton",
    "LandmarkOracle",
    "ReproError",
    # deprecated execution entry points (shimmed via __getattr__)
    "QuerySession",
    "BatchExecutor",
    "ProcessBatchExecutor",
    "ExecutorCore",
    "StreamRun",
]

#: The pre-façade execution entry points and the façade call replacing each.
_DEPRECATED_EXECUTORS = {
    "QuerySession": 'Database(graph).query(...) / .batch(...)',
    "BatchExecutor": 'Database(graph, backend="threads").batch(...)',
    "ProcessBatchExecutor": 'Database(graph, backend="processes").batch(...)',
    "ExecutorCore": 'Database(graph, backend="threads"|"processes").stream(...)',
    "StreamRun": "ResultStream (returned by every Database call)",
}


def __getattr__(name: str):
    """Deprecation shims for the pre-façade execution entry points.

    ``from repro import BatchExecutor`` still works, but warns once per
    call site; the classes themselves live on unchanged in
    :mod:`repro.core.engine`, which the façade builds on.
    """
    if name in _DEPRECATED_EXECUTORS:
        _warnings.warn(
            f"repro.{name} is deprecated; use {_DEPRECATED_EXECUTORS[name]} "
            "instead (see the repro.api module docs)",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.core import engine

        return getattr(engine, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
