"""PathEnum reproduction: real-time hop-constrained s-t path enumeration.

This package reimplements the system described in

    Sun, Chen, He, Hooi.  "PathEnum: Towards Real-Time Hop-Constrained s-t
    Path Enumeration."  SIGMOD 2021.

in pure Python, together with the baselines it is evaluated against, the
workload generators of its evaluation section and a benchmark harness that
regenerates every table and figure of the paper.

Quickstart
----------

>>> from repro import GraphBuilder, enumerate_paths
>>> builder = GraphBuilder()
>>> builder.add_edges([("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")])
4
>>> enumerate_paths(builder.build(), "a", "d", k=3, external_ids=True)
[('a', 'c', 'd'), ('a', 'b', 'c', 'd')]
"""

from repro._version import __version__
from repro.core import (
    AccumulativeConstraint,
    AutomatonConstraint,
    BatchExecutor,
    BatchResult,
    BatchStats,
    ExecutorCore,
    IdxDfs,
    IdxJoin,
    LightWeightIndex,
    PathEnum,
    PredicateConstraint,
    ProcessBatchExecutor,
    Query,
    QueryResult,
    QuerySession,
    RunConfig,
    SequenceAutomaton,
    StreamRun,
    count_paths,
    enumerate_paths,
)
from repro.distance import LandmarkOracle
from repro.errors import ReproError
from repro.graph import DiGraph, DynamicGraph, GraphBuilder, read_edge_list

__all__ = [
    "__version__",
    "DiGraph",
    "GraphBuilder",
    "DynamicGraph",
    "read_edge_list",
    "Query",
    "QueryResult",
    "RunConfig",
    "PathEnum",
    "IdxDfs",
    "IdxJoin",
    "QuerySession",
    "BatchExecutor",
    "ProcessBatchExecutor",
    "ExecutorCore",
    "StreamRun",
    "BatchResult",
    "BatchStats",
    "LightWeightIndex",
    "enumerate_paths",
    "count_paths",
    "PredicateConstraint",
    "AccumulativeConstraint",
    "AutomatonConstraint",
    "SequenceAutomaton",
    "LandmarkOracle",
    "ReproError",
]
