"""Live-update subsystem: delta overlays, MVCC epochs, distance repair.

The serving stack treats the CSR :class:`~repro.graph.digraph.DiGraph` as
immutable — which is what makes lock-free reads, shared-memory publication
and deterministic results possible.  This package adds mutation *on top of*
that invariant instead of weakening it:

* :class:`DeltaOverlay` — added/removed edge sets batched on top of a base
  CSR graph, consulted through a merged-adjacency seam and compacted into a
  fresh CSR once the delta crosses a threshold;
* :class:`LiveGraph` / :class:`Epoch` — epoch-versioned MVCC publication.
  Every applied batch produces a new immutable snapshot; readers pin the
  epoch they started on and the segment of a retired epoch is released only
  when its last reader drains;
* :func:`repair_reverse_distances` — bounded incremental repair of cached
  reverse-BFS distance arrays, with a full-recompute fallback when the
  affected region exceeds the repair budget.
"""

from repro.live.epochs import Epoch, EpochHandle, LiveGraph
from repro.live.overlay import DeltaOverlay
from repro.live.repair import repair_reverse_distances

__all__ = [
    "DeltaOverlay",
    "Epoch",
    "EpochHandle",
    "LiveGraph",
    "repair_reverse_distances",
]
