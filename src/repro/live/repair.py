"""Bounded incremental repair of cached reverse-BFS distance arrays.

The engine caches, per ``(target, k)`` key, the array of hop distances *to*
the target (``bfs_distances_bounded(graph, target, cutoff=k, reverse=True)``).
After an edge batch, most of that array is still correct: only vertices
whose shortest path crossed a removed edge can move further away, and only
vertices upstream of an added edge can move closer.  This module repairs
the array in place of a full |V|+|E| recompute:

1. **Removal phase** — seed the affected set with the sources of removed
   edges that lost shortest-path support, grow it through the old
   dependency structure (an over-approximation: a vertex with alternate
   equal-length support is re-derived, never corrupted), reset the region
   and re-relax it against the stable frontier for at most ``cutoff``
   rounds.
2. **Addition phase** — decrease-only relaxation seeded from added edges,
   propagated upstream through in-neighbours.

Both phases honour a ``budget`` on the number of touched vertices; when the
affected region outgrows it, the repair falls back to a full recompute —
the returned array is *always* exactly what a from-scratch bounded BFS on
the new graph would produce.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional, Tuple

import numpy as np

from repro.graph.digraph import DiGraph
from repro.graph.traversal import UNREACHABLE, bfs_distances_bounded

__all__ = ["repair_reverse_distances"]


def repair_reverse_distances(
    graph: DiGraph,
    old_dist: np.ndarray,
    target: int,
    *,
    cutoff: int,
    added: Iterable[Tuple[int, int]] = (),
    removed: Iterable[Tuple[int, int]] = (),
    budget: Optional[int] = None,
) -> Tuple[np.ndarray, bool]:
    """Repair a reverse-BFS distance array after an edge batch.

    ``graph`` is the *post-update* graph; ``old_dist`` the array that was
    valid before ``added`` / ``removed`` were applied.  Returns
    ``(dist, repaired)`` where ``repaired`` is ``False`` when the affected
    region exceeded ``budget`` and a full bounded BFS ran instead.  The
    input array is never mutated.
    """
    target = int(target)
    limit = graph.num_vertices if budget is None else int(budget)

    def full_recompute() -> Tuple[np.ndarray, bool]:
        return (
            bfs_distances_bounded(graph, target, cutoff=cutoff, reverse=True),
            False,
        )

    dist = np.array(old_dist, copy=True)

    # ---- phase 1: removals may push vertices further from the target ---- #
    seeds = [
        u
        for u, v in removed
        if u != target
        and dist[v] != UNREACHABLE
        and dist[u] == dist[v] + 1
    ]
    affected: set = set()
    work = list(seeds)
    while work:
        x = work.pop()
        if x in affected:
            continue
        affected.add(x)
        if len(affected) > limit:
            return full_recompute()
        dx = int(old_dist[x])
        for w in graph.in_neighbors(x):
            w = int(w)
            if w == target or w in affected:
                continue
            if old_dist[w] == dx + 1:
                work.append(w)
    if affected:
        region = np.fromiter(affected, dtype=np.int64, count=len(affected))
        dist[region] = UNREACHABLE
        # Bellman-Ford over the affected region against the stable
        # frontier: every assigned value is the length of a genuine path in
        # the new graph, so at most ``cutoff`` rounds reach the fixpoint.
        for _ in range(cutoff):
            changed = False
            for v in affected:
                row = graph.neighbors(v)
                if len(row) == 0:
                    continue
                neighbour_dist = dist[row]
                reachable = neighbour_dist[neighbour_dist != UNREACHABLE]
                if len(reachable) == 0:
                    continue
                candidate = int(reachable.min()) + 1
                if candidate > cutoff:
                    continue
                if dist[v] == UNREACHABLE or candidate < dist[v]:
                    dist[v] = candidate
                    changed = True
            if not changed:
                break

    # ---- phase 2: additions may pull vertices closer to the target ----- #
    frontier: deque = deque()
    # The relaxation above already sees the added edges (``graph`` is the
    # post-update graph), so an affected vertex can come back *closer* than
    # it was before the batch.  Such improvements must propagate to
    # in-neighbours outside the region — hand them to the phase-2 frontier.
    for v in affected:
        if dist[v] != UNREACHABLE and (
            old_dist[v] == UNREACHABLE or dist[v] < old_dist[v]
        ):
            frontier.append(v)
    for u, v in added:
        u, v = int(u), int(v)
        if u == target:
            continue
        dv = dist[v]
        if dv == UNREACHABLE or dv + 1 > cutoff:
            continue
        if dist[u] == UNREACHABLE or dv + 1 < dist[u]:
            dist[u] = dv + 1
            frontier.append(u)
    touched = 0
    while frontier:
        x = frontier.popleft()
        touched += 1
        if touched > limit:
            return full_recompute()
        dx = int(dist[x])
        if dx + 1 > cutoff:
            continue
        for w in graph.in_neighbors(x):
            w = int(w)
            if w == target:
                continue
            if dist[w] == UNREACHABLE or dx + 1 < dist[w]:
                dist[w] = dx + 1
                frontier.append(w)
    return dist, True
