"""Delta overlay on top of an immutable CSR graph.

A :class:`DeltaOverlay` batches edge insertions and removals against a base
:class:`~repro.graph.digraph.DiGraph` without touching the base's arrays.
Reads go through a merged-adjacency seam (base row minus removed plus
added); :meth:`materialize` folds the whole delta into a fresh CSR graph
using the vectorised rebuild paths (`_from_edge_mask` / `copy_with_edges`),
so compaction never loops per edge in Python.

Only edges between *existing* vertices can be added — the vertex set is
fixed at build time (dense internal ids are load-bearing for the CSR layout
and the shared-memory publication path).  Self-loops and duplicates are
dropped, mirroring :class:`~repro.graph.builder.GraphBuilder` semantics.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

import numpy as np

from repro.graph.digraph import DiGraph

__all__ = ["DeltaOverlay"]

_EMPTY = np.empty(0, dtype=np.int64)


class DeltaOverlay:
    """Added/removed edge sets batched on top of an immutable base graph."""

    def __init__(self, base: DiGraph, *, compact_threshold: int = 4096) -> None:
        if compact_threshold < 1:
            raise ValueError("compact_threshold must be at least 1")
        self.base = base
        self.compact_threshold = int(compact_threshold)
        self._added: Set[Tuple[int, int]] = set()
        self._removed: Set[Tuple[int, int]] = set()
        # Per-vertex views of the same delta, so the adjacency seam does not
        # scan the flat sets on every row merge.
        self._added_out: Dict[int, Set[int]] = {}
        self._added_in: Dict[int, Set[int]] = {}
        self._removed_out: Dict[int, Set[int]] = {}
        self._removed_in: Dict[int, Set[int]] = {}

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def add_edges(self, edges: Iterable[Tuple[int, int]]) -> List[Tuple[int, int]]:
        """Record edge insertions; return the pairs actually applied.

        Self-loops, edges already present in the merged view and duplicates
        within the batch are skipped.  Re-adding an edge whose removal is
        still pending simply cancels the removal (the base edge reappears
        with its original attributes).
        """
        applied: List[Tuple[int, int]] = []
        for source, target in edges:
            u, v = int(source), int(target)
            self.base._check_vertex(u)
            self.base._check_vertex(v)
            if u == v:
                continue
            pair = (u, v)
            if pair in self._removed:
                self._removed.discard(pair)
                self._removed_out[u].discard(v)
                self._removed_in[v].discard(u)
                applied.append(pair)
                continue
            if pair in self._added or self.base.has_edge(u, v):
                continue
            self._added.add(pair)
            self._added_out.setdefault(u, set()).add(v)
            self._added_in.setdefault(v, set()).add(u)
            applied.append(pair)
        return applied

    def remove_edges(self, edges: Iterable[Tuple[int, int]]) -> List[Tuple[int, int]]:
        """Record edge removals; return the pairs actually applied.

        Removing an edge that only exists in the pending-add set cancels the
        addition; removing an edge absent from the merged view is a no-op.
        """
        applied: List[Tuple[int, int]] = []
        for source, target in edges:
            u, v = int(source), int(target)
            self.base._check_vertex(u)
            self.base._check_vertex(v)
            pair = (u, v)
            if pair in self._added:
                self._added.discard(pair)
                self._added_out[u].discard(v)
                self._added_in[v].discard(u)
                applied.append(pair)
                continue
            if pair in self._removed or not self.base.has_edge(u, v):
                continue
            self._removed.add(pair)
            self._removed_out.setdefault(u, set()).add(v)
            self._removed_in.setdefault(v, set()).add(u)
            applied.append(pair)
        return applied

    # ------------------------------------------------------------------ #
    # merged-adjacency seam
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        return self.base.num_vertices

    @property
    def num_edges(self) -> int:
        return self.base.num_edges + len(self._added) - len(self._removed)

    @property
    def added(self) -> frozenset:
        return frozenset(self._added)

    @property
    def removed(self) -> frozenset:
        return frozenset(self._removed)

    @property
    def delta_size(self) -> int:
        """Number of pending delta entries (added plus removed)."""
        return len(self._added) + len(self._removed)

    @property
    def needs_compaction(self) -> bool:
        """Whether the delta crossed the compaction threshold."""
        return self.delta_size >= self.compact_threshold

    def has_edge(self, u: int, v: int) -> bool:
        pair = (int(u), int(v))
        if pair in self._added:
            return True
        if pair in self._removed:
            return False
        return self.base.has_edge(*pair)

    def _merged_row(
        self, base_row: np.ndarray, removed: Set[int], added: Set[int]
    ) -> np.ndarray:
        if not removed and not added:
            return base_row
        merged = (set(int(x) for x in base_row) - removed) | added
        if not merged:
            return _EMPTY
        return np.fromiter(sorted(merged), dtype=np.int64, count=len(merged))

    def out_neighbors(self, v: int) -> np.ndarray:
        """Merged out-adjacency row of ``v`` (sorted, like a CSR row)."""
        v = int(v)
        return self._merged_row(
            self.base.neighbors(v),
            self._removed_out.get(v, set()),
            self._added_out.get(v, set()),
        )

    def in_neighbors(self, v: int) -> np.ndarray:
        """Merged in-adjacency row of ``v`` (sorted, like a CSR row)."""
        v = int(v)
        return self._merged_row(
            self.base.in_neighbors(v),
            self._removed_in.get(v, set()),
            self._added_in.get(v, set()),
        )

    # ------------------------------------------------------------------ #
    # compaction
    # ------------------------------------------------------------------ #
    def materialize(self) -> DiGraph:
        """Fold the delta into a fresh immutable CSR graph.

        Removals become a boolean mask over the base's CSR slots
        (:meth:`DiGraph._from_edge_mask` keeps surviving attributes
        aligned); additions go through :meth:`DiGraph.copy_with_edges` in
        deterministic sorted order, so two overlays holding the same edge
        set always materialise byte-identical graphs.
        """
        graph = self.base
        if self._removed:
            n = graph.num_vertices
            keys = graph.edge_sources() * n + graph.out_csr()[1]
            removed_keys = np.fromiter(
                (u * n + v for u, v in self._removed),
                dtype=np.int64,
                count=len(self._removed),
            )
            keep = ~np.isin(keys, removed_keys)
            graph = graph._from_edge_mask(keep)
        if self._added:
            graph = graph.copy_with_edges(sorted(self._added))
        return graph
