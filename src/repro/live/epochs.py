"""Epoch-versioned MVCC publication of live graph snapshots.

Every applied update batch produces a new immutable :class:`Epoch` — a
snapshot graph plus a refcount.  Readers pin the epoch they start on and
keep reading it even while later epochs publish; a retired epoch releases
its storage segment only once the last pinned reader drains.

Shared-memory semantics make this safe without copying: unlinking a
segment removes its *name* (new attaches fail with a clear error) while
every existing mapping — parent and worker alike — stays valid until that
process closes it.  So retirement can never invalidate an in-flight
reader; the refcount exists to delay the unlink until late (re)attaches,
such as broken-pool recovery, can no longer happen.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.errors import GraphError
from repro.graph.digraph import DiGraph
from repro.graph.store import StoreHandle
from repro.live.overlay import DeltaOverlay

__all__ = ["Epoch", "EpochHandle", "LiveGraph"]


@dataclass(frozen=True)
class EpochHandle:
    """Picklable reference to a published epoch's shared-memory snapshot.

    Workers compare ``store.segment_name`` against their currently attached
    segment and re-map only on change; attaching a retired epoch whose
    segment was already unlinked raises :class:`~repro.errors.GraphError`.
    """

    epoch_id: int
    store: StoreHandle

    def attach(self) -> DiGraph:
        """Map the epoch's snapshot into this process (zero-copy)."""
        return DiGraph.from_handle(self.store)


class Epoch:
    """One immutable published snapshot with reader refcounting.

    The publisher holds one implicit reference that :meth:`retire` drops;
    readers bracket their use with :meth:`pin` / :meth:`release`.  When the
    epoch is retired and the last reference is released, the backing store
    segment is closed (and unlinked, when this epoch owns it).
    """

    __slots__ = ("epoch_id", "graph", "_owns_store", "_refs", "_retired", "_lock")

    def __init__(self, epoch_id: int, graph: DiGraph, *, owns_store: bool = False) -> None:
        self.epoch_id = int(epoch_id)
        self.graph = graph
        self._owns_store = owns_store
        self._refs = 1  # the publisher's reference, dropped by retire()
        self._retired = False
        self._lock = threading.Lock()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Epoch(id={self.epoch_id}, refs={self._refs}, "
            f"retired={self._retired})"
        )

    @property
    def retired(self) -> bool:
        return self._retired

    @property
    def refs(self) -> int:
        return self._refs

    def pin(self) -> "Epoch":
        """Take a reader reference; returns ``self`` for chaining."""
        with self._lock:
            if self._refs <= 0:
                raise GraphError(
                    f"epoch {self.epoch_id} is retired and drained; "
                    "its segment is gone"
                )
            self._refs += 1
        return self

    def release(self) -> None:
        """Drop a reader reference; frees the segment on the last drop."""
        with self._lock:
            if self._refs <= 0:
                return
            self._refs -= 1
            last = self._refs == 0 and self._retired
        if last:
            self._release_store()

    def retire(self) -> None:
        """Drop the publisher reference; the epoch stops accepting pins
        once drained."""
        with self._lock:
            if self._retired:
                return
            self._retired = True
            self._refs -= 1
            last = self._refs == 0
        if last:
            self._release_store()

    def handle(self) -> Optional[EpochHandle]:
        """A picklable handle to the snapshot, or ``None`` for heap epochs."""
        store = self.graph.store
        if store is None or not store.shareable:
            return None
        return EpochHandle(self.epoch_id, store.handle())

    def _release_store(self) -> None:
        if not self._owns_store:
            return
        store = self.graph.store
        if store is not None:
            self.graph.close_store(unlink=getattr(store, "is_owner", False))


class LiveGraph:
    """A mutable façade over immutable snapshots: overlay + epoch chain.

    ``apply()`` batches insertions/removals into a :class:`DeltaOverlay`,
    materialises the merged graph and publishes it as the next
    :class:`Epoch`; the predecessor is retired (its segment lives on until
    the last pinned reader drains).  When the accumulated delta crosses
    ``compact_threshold`` the overlay itself is rebased onto the fresh CSR
    (a *compaction*), so per-publish delta replay stays bounded.

    ``store="shared_memory"`` publishes every epoch into a shared-memory
    segment so process workers can re-attach on epoch change without a pool
    restart; ``store="heap"`` keeps snapshots process-local (thread and
    inline backends).
    """

    def __init__(
        self,
        base: DiGraph,
        *,
        compact_threshold: int = 4096,
        store: str = "heap",
        repair_budget: Optional[int] = None,
    ) -> None:
        if store not in ("heap", "shared_memory"):
            raise ValueError(
                f"unknown live store {store!r}: use 'heap' or 'shared_memory'"
            )
        self._store = store
        self._overlay = DeltaOverlay(base, compact_threshold=compact_threshold)
        self._epoch = Epoch(0, base, owns_store=False)
        #: Pin on the epoch whose graph currently backs the overlay, so a
        #: retired base's arrays cannot be released out from under the next
        #: materialisation.  ``None`` while the overlay still sits on the
        #: original (epoch 0) base.
        self._base_pin: Optional[Epoch] = None
        self._lock = threading.RLock()
        self.repair_budget = repair_budget
        self.epochs_published = 0
        self.compactions = 0
        self.updates_applied = 0
        self._closed = False

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> DiGraph:
        """The current epoch's snapshot graph."""
        return self._epoch.graph

    @property
    def epoch(self) -> Epoch:
        """The current epoch."""
        return self._epoch

    @property
    def epoch_id(self) -> int:
        return self._epoch.epoch_id

    @property
    def delta_size(self) -> int:
        with self._lock:
            return self._overlay.delta_size

    def pin(self) -> Epoch:
        """Pin and return the current epoch (reader entry point)."""
        with self._lock:
            return self._epoch.pin()

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "current_epoch": self._epoch.epoch_id,
                "epochs_published": self.epochs_published,
                "compactions": self.compactions,
                "updates_applied": self.updates_applied,
                "delta_size": self._overlay.delta_size,
            }

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def apply(
        self,
        add: Iterable[Tuple[int, int]] = (),
        remove: Iterable[Tuple[int, int]] = (),
    ) -> Dict[str, object]:
        """Apply one batch of edge updates and publish the next epoch.

        Returns a dict with the (possibly unchanged) current ``epoch`` id
        and the ``added`` / ``removed`` pairs that actually took effect —
        the exact inputs distance repair needs.  A batch that changes
        nothing publishes nothing.
        """
        with self._lock:
            if self._closed:
                raise GraphError("LiveGraph is closed")
            applied_add = self._overlay.add_edges(add)
            applied_remove = self._overlay.remove_edges(remove)
            if not applied_add and not applied_remove:
                return {
                    "epoch": self._epoch.epoch_id,
                    "added": [],
                    "removed": [],
                    "published": False,
                }
            graph = self._overlay.materialize()
            if self._store == "shared_memory":
                graph.share()
            new = Epoch(
                self._epoch.epoch_id + 1,
                graph,
                owns_store=self._store == "shared_memory",
            )
            old = self._epoch
            self._epoch = new
            self.epochs_published += 1
            self.updates_applied += len(applied_add) + len(applied_remove)
            old_base_pin = None
            if self._overlay.needs_compaction:
                # Rebase the overlay onto the fresh CSR; pin the new epoch
                # so its arrays survive the epoch's own retirement for as
                # long as it remains the overlay base.
                self._overlay = DeltaOverlay(
                    graph, compact_threshold=self._overlay.compact_threshold
                )
                old_base_pin = self._base_pin
                self._base_pin = new.pin()
                self.compactions += 1
        old.retire()
        if old_base_pin is not None:
            old_base_pin.release()
        return {
            "epoch": new.epoch_id,
            "added": applied_add,
            "removed": applied_remove,
            "published": True,
        }

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Retire the current epoch and release the overlay base pin.

        In-flight pinned readers keep their mappings; segments disappear as
        the last reader of each epoch drains.  Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            epoch = self._epoch
            base_pin = self._base_pin
            self._base_pin = None
        if base_pin is not None:
            base_pin.release()
        epoch.retire()

    def __enter__(self) -> "LiveGraph":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
