"""The unified public façade: one ``Database`` over every execution backend.

Four PRs grew five entry points — :class:`~repro.core.engine.QuerySession`,
:class:`~repro.core.engine.BatchExecutor`,
:class:`~repro.core.engine.ProcessBatchExecutor`,
:class:`~repro.server.service.QueryService` and
:class:`~repro.server.client.QueryClient` — each with its own constructor,
result shape and lifecycle rules.  This module folds them behind three
concepts:

* :class:`Database` — opened from a :class:`~repro.graph.digraph.DiGraph`,
  an ``.npz`` snapshot / edge-list file, or a ``host:port`` URL.  It owns
  whatever the chosen backend needs (distance cache, worker pool, shared
  memory, TCP connections) and releases it on :meth:`Database.close` /
  context-manager exit.
* :class:`QuerySpec` — a frozen, declarative query: endpoints, hop budget
  and the run options (result limit, deadline, engine, path storage).  The
  fluent builder :class:`Q` constructs specs readably::

      Q("alice", "bob", 4).limit(100).engine("kernel")

* :class:`ResultStream` — what every call returns, whichever backend runs
  it: a lazily-materialising stream of
  :class:`~repro.core.result.QueryResult` objects with uniform
  :meth:`~ResultStream.paths`, :meth:`~ResultStream.stats`,
  :meth:`~ResultStream.cancel` and iteration semantics.  Results keep the
  columnar :class:`~repro.core.result.PathBuffer` of the enumeration
  kernels under the hood; tuples materialise only when read.

Execution backends (``backend=`` argument, or inferred from the open
target) all satisfy the :class:`ExecutionBackend` protocol:

``inline``
    Sequential evaluation through a :class:`~repro.core.engine.QuerySession`
    in the calling thread.  The only backend that evaluates constrained
    queries (their edge filters are process-local closures); results
    stream truly lazily — a query runs when the stream is pulled past it.
``threads``
    Target-sharded fan-out over a persistent thread pool
    (:class:`~repro.core.engine.ExecutorCore`, thread backend).
``processes``
    The same sharded dispatch over worker processes attached to a
    shared-memory graph image and a packed distance cache.
``remote``
    A `repro serve` instance over TCP: specs travel as submit frames, and
    per-query result frames stream back into the same ``ResultStream``
    shape — including the ``engine`` option, which is honored server-side
    exactly like a local run.
``router``
    A distributed deployment: either a running ``repro route`` front end
    (``Database("router://host:port")``) or a client-side
    :class:`~repro.server.router.ShardRouter` opened straight from a
    shard-map ``.json`` file / :class:`~repro.server.router.ShardMap`.
    Queries are consistent-hashed by target across the shard hosts and the
    per-shard streams merge back into one workload-ordered
    ``ResultStream`` — with replica failover and hedged requests underneath.

Every backend produces byte-identical payloads for the same spec list
(asserted in ``tests/api/test_backend_equivalence.py``); switching from an
in-process prototype to a served deployment is a one-argument change.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import operator
import queue as queue_module
import threading
import time
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.algorithm import Algorithm
from repro.core.engine import (
    DEFAULT_CHUNK_QUERIES,
    ExecutorCore,
    QuerySession,
    is_distance_aware,
)
from repro.core.listener import ENGINE_CHOICES, RunConfig
from repro.core.query import MIN_HOP_CONSTRAINT, Query
from repro.core.result import EnumerationStats, Phase, QueryResult
from repro.errors import BackendError, QuerySpecError, ServiceOverloaded
from repro.graph.digraph import DiGraph

__all__ = [
    "BACKEND_CHOICES",
    "Database",
    "ExecutionBackend",
    "Q",
    "QuerySpec",
    "ResultStream",
    "StreamStats",
]

#: Recognised ``backend=`` names of :class:`Database`.
BACKEND_CHOICES = ("inline", "threads", "processes", "remote", "router")


def _as_int(value) -> Optional[int]:
    """``value`` as a plain int, or ``None`` when it is not index-like.

    ``operator.index`` (rather than ``isinstance(int)``) keeps numpy
    integers — the natural product of slicing a CSR graph — first-class
    throughout the spec layer; bools are rejected explicitly.
    """
    if isinstance(value, bool):
        return None
    try:
        return operator.index(value)
    except TypeError:
        return None


# --------------------------------------------------------------------- #
# the declarative query
# --------------------------------------------------------------------- #
#: The run-option fields of a spec — everything but the query triple.  One
#: batch must agree on all of them (they become a single RunConfig / submit
#: frame), which :func:`_common_options` enforces with a precise error.
_OPTION_FIELDS = ("limit", "deadline", "engine", "store_paths", "response_k", "constraint")


@dataclass(frozen=True)
class QuerySpec:
    """A declarative, frozen HcPE query: endpoints, hop budget, run options.

    ``source`` / ``target`` are internal vertex ids (plain ints) unless the
    call that submits the spec passes ``external=True``, in which case they
    are external ids resolved by the graph (or by the server, for remote
    execution).  Validation happens at construction; all failures raise
    :class:`~repro.errors.QuerySpecError` (a ``ValueError``) with a message
    naming the offending field.
    """

    source: Hashable
    target: Hashable
    k: int
    #: Stop after this many results (``None`` = enumerate everything).
    limit: Optional[int] = None
    #: Cooperative per-query time limit in seconds (``None`` = no limit).
    deadline: Optional[float] = None
    #: Enumeration engine: ``auto`` / ``native`` / ``kernel`` / ``recursive``.
    engine: str = "auto"
    #: Keep the enumerated paths on the result (off = count only).
    store_paths: bool = True
    #: Record the response time at this many results (the paper uses 1000).
    response_k: int = 1000
    #: Optional path constraint (inline backend only).
    constraint: Optional[object] = None

    def __post_init__(self) -> None:
        k = _as_int(self.k)
        if k is None:
            raise QuerySpecError(f"hop budget k must be an int, got {self.k!r}")
        object.__setattr__(self, "k", k)
        if k < MIN_HOP_CONSTRAINT:
            raise QuerySpecError(
                f"hop budget k must be at least {MIN_HOP_CONSTRAINT}, got {k}"
            )
        if self.source == self.target:
            raise QuerySpecError(
                f"source and target must be distinct vertices, both are {self.source!r}"
            )
        if self.engine not in ENGINE_CHOICES:
            raise QuerySpecError(
                f"unknown engine {self.engine!r}: use one of {ENGINE_CHOICES}"
            )
        if self.limit is not None:
            limit = _as_int(self.limit)
            if limit is None or limit < 1:
                raise QuerySpecError(
                    f"result limit must be a positive int or None, got {self.limit!r}"
                )
            object.__setattr__(self, "limit", limit)
        if self.deadline is not None and float(self.deadline) < 0.0:
            raise QuerySpecError(
                f"deadline must be non-negative seconds or None, got {self.deadline!r}"
            )
        response_k = _as_int(self.response_k)
        if response_k is None or response_k < 1:
            raise QuerySpecError(
                f"response_k must be a positive int, got {self.response_k!r}"
            )
        object.__setattr__(self, "response_k", response_k)

    def replace(self, **changes) -> "QuerySpec":
        """A copy with some fields changed (re-validated)."""
        return dataclasses.replace(self, **changes)

    @property
    def triple(self) -> Tuple[Hashable, Hashable, int]:
        """The ``(source, target, k)`` triple — the wire shape of the query."""
        return (self.source, self.target, self.k)


class Q:
    """Fluent builder for :class:`QuerySpec`.

    Every method returns a *new* builder, so partial queries can be forked::

        base = Q(s, t, 4).deadline(2.0)
        quick, full = base.limit(100), base.engine("recursive")

    A ``Q`` is accepted anywhere a spec is (``Database.query(Q(s, t, 4))``);
    :meth:`spec` freezes it explicitly.  Validation happens when the spec is
    built, i.e. at submission time for a ``Q`` passed directly.
    """

    __slots__ = ("_fields",)

    def __init__(self, source: Hashable, target: Hashable, k: int, **options) -> None:
        self._fields: Dict[str, object] = {"source": source, "target": target, "k": k}
        self._fields.update(options)

    def _with(self, **changes) -> "Q":
        clone = Q.__new__(Q)
        clone._fields = {**self._fields, **changes}
        return clone

    def limit(self, n: Optional[int]) -> "Q":
        """Stop each query after ``n`` results (``None`` removes the cap)."""
        return self._with(limit=n)

    def deadline(self, seconds: Optional[float]) -> "Q":
        """Give up cooperatively after ``seconds`` (``None`` removes it)."""
        return self._with(deadline=seconds)

    def engine(self, name: str) -> "Q":
        """Select the engine (``auto`` / ``native`` / ``kernel`` / ``recursive``)."""
        return self._with(engine=name)

    def count_only(self) -> "Q":
        """Do not keep paths on the result — count them only."""
        return self._with(store_paths=False)

    def store_paths(self, keep: bool = True) -> "Q":
        """Keep (or drop) the enumerated paths on the result."""
        return self._with(store_paths=keep)

    def response_k(self, n: int) -> "Q":
        """Record the response time at the ``n``-th result."""
        return self._with(response_k=n)

    def where(self, constraint: object) -> "Q":
        """Attach a path constraint (evaluated by the inline backend)."""
        return self._with(constraint=constraint)

    def spec(self) -> QuerySpec:
        """Freeze the builder into a validated :class:`QuerySpec`."""
        return QuerySpec(**self._fields)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        triple = (self._fields["source"], self._fields["target"], self._fields["k"])
        extras = {k: v for k, v in self._fields.items() if k not in ("source", "target", "k")}
        return f"Q{triple}{extras or ''}"


SpecLike = Union[QuerySpec, Q, Query, Sequence]


def as_spec(item: SpecLike, **overrides) -> QuerySpec:
    """Coerce ``item`` into a :class:`QuerySpec`.

    Accepts a spec (returned as-is, or re-validated with ``overrides``
    applied), a :class:`Q` builder, a core :class:`~repro.core.query.Query`
    or a plain ``(source, target, k)`` triple.
    """
    if isinstance(item, QuerySpec):
        return item.replace(**overrides) if overrides else item
    if isinstance(item, Q):
        return QuerySpec(**{**item._fields, **overrides})
    if isinstance(item, Query):
        return QuerySpec(item.source, item.target, item.k, **overrides)
    if isinstance(item, Sequence) and not isinstance(item, (str, bytes)) and len(item) == 3:
        source, target, k = item
        return QuerySpec(source, target, k, **overrides)
    raise QuerySpecError(
        f"cannot build a QuerySpec from {item!r}: expected a QuerySpec, a Q "
        "builder, a Query or a (source, target, k) triple"
    )


def _common_options(specs: Sequence[QuerySpec]) -> QuerySpec:
    """The run options shared by every spec of a batch.

    One batch becomes one :class:`~repro.core.listener.RunConfig` (and, for
    remote execution, one submit frame), so the option fields must agree
    across the whole list; the first divergence raises a
    :class:`~repro.errors.QuerySpecError` naming the field and positions.
    """
    first = specs[0]
    for position, spec in enumerate(specs[1:], start=1):
        for field in _OPTION_FIELDS:
            left, right = getattr(first, field), getattr(spec, field)
            same = left is right if field == "constraint" else left == right
            if not same:
                raise QuerySpecError(
                    f"one batch must share its run options, but {field!r} "
                    f"differs between query 0 ({left!r}) and query "
                    f"{position} ({right!r}); align the specs or submit "
                    "separate batches"
                )
    return first


def _run_config(options: QuerySpec) -> RunConfig:
    """The :class:`RunConfig` equivalent of a spec's option fields."""
    return RunConfig(
        store_paths=options.store_paths,
        result_limit=options.limit,
        time_limit_seconds=options.deadline,
        response_k=options.response_k,
        engine=options.engine,
        constraint=options.constraint,
    )


# --------------------------------------------------------------------- #
# the uniform result surface
# --------------------------------------------------------------------- #
@dataclass
class StreamStats:
    """Aggregate statistics of one :class:`ResultStream`.

    Computed over the results delivered *so far* — call after draining the
    stream for batch totals.  ``reverse_bfs_runs`` / ``bfs_cache_hits`` are
    derived from the per-result cache flags, which every backend charges
    the way a sequential session would, so the numbers agree across
    backends (and are zero for non-indexed baseline algorithms).
    """

    backend: str
    queries: int
    completed: int
    total_paths: int
    wall_seconds: float
    reverse_bfs_runs: int = 0
    bfs_cache_hits: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of completed queries served from the distance cache."""
        if self.completed == 0:
            return 0.0
        return self.bfs_cache_hits / self.completed

    def as_row(self) -> Dict[str, object]:
        """Flat dict for tables and the CLI."""
        return {
            "backend": self.backend,
            "queries": self.completed,
            "reverse_bfs_runs": self.reverse_bfs_runs,
            "bfs_cache_hits": self.bfs_cache_hits,
            "hit_rate": round(self.hit_rate, 3),
            "wall_ms": round(self.wall_seconds * 1e3, 3),
        }


class ResultStream:
    """Lazily-materialising results of one :meth:`Database` call.

    The same object comes back from every backend:

    * iterating yields :class:`~repro.core.result.QueryResult` objects — in
      workload order for :meth:`Database.query` / :meth:`Database.batch`,
      in completion order for :meth:`Database.stream`;
    * :meth:`results` / :meth:`paths` / :meth:`counts` drain the stream and
      return workload-ordered views (cached — safe to call repeatedly);
    * :meth:`stats` summarises what has been delivered so far;
    * :meth:`cancel` stops the run as soon as the backend allows (between
      queries inline and on the thread backend, between shards on the
      process backend, via a cancel frame remotely).

    Results are underpinned by the columnar
    :class:`~repro.core.result.PathBuffer` wherever the enumeration kernels
    produced them; per-path tuples materialise only when read.
    """

    def __init__(
        self,
        producer: Iterator[Tuple[int, QueryResult]],
        *,
        num_queries: int,
        backend: str,
        cancel: Optional[Callable[[], None]] = None,
        close: Optional[Callable[[], None]] = None,
        ordered: bool = True,
        distance_aware: bool = True,
        started_at: Optional[float] = None,
    ) -> None:
        self._producer = producer
        self.num_queries = num_queries
        self.backend = backend
        self._cancel_cb = cancel
        self._close_cb = close
        self.ordered = ordered
        self._distance_aware = distance_aware
        self._by_position: Dict[int, QueryResult] = {}
        self._arrival: List[int] = []
        self._exhausted = False
        self.cancelled = False
        #: Wall clock anchors at submission, not stream construction: the
        #: backends pass the instant *before* their warm phase (the shared
        #: reverse BFS work batching amortises must stay on the bill).
        self._started = started_at if started_at is not None else time.perf_counter()
        self._wall: Optional[float] = None

    # -- consumption ---------------------------------------------------- #
    def _pull(self) -> bool:
        """Advance the producer by one item; ``False`` when exhausted."""
        if self._exhausted:
            return False
        try:
            position, result = next(self._producer)
        except StopIteration:
            self._finish()
            return False
        except BaseException:
            self._finish()
            raise
        self._by_position[position] = result
        self._arrival.append(position)
        return True

    def _finish(self) -> None:
        if not self._exhausted:
            self._exhausted = True
            self._wall = time.perf_counter() - self._started
            if self._close_cb is not None:
                self._close_cb()

    def __iter__(self) -> Iterator[QueryResult]:
        if self.ordered:
            next_position = 0
            while next_position < self.num_queries:
                if next_position in self._by_position:
                    yield self._by_position[next_position]
                    next_position += 1
                elif not self._pull():
                    return
        else:
            for position, _ in self.as_completed():
                yield self._by_position[position]

    def as_completed(self) -> Iterator[Tuple[int, QueryResult]]:
        """Yield ``(position, result)`` pairs in completion order."""
        cursor = 0
        while True:
            while cursor < len(self._arrival):
                position = self._arrival[cursor]
                cursor += 1
                yield position, self._by_position[position]
            if not self._pull():
                return

    def __len__(self) -> int:
        return self.num_queries

    # -- materialised views --------------------------------------------- #
    def results(self) -> List[QueryResult]:
        """Drain the stream; results in workload order.

        Raises ``RuntimeError`` when results are missing (the run was
        cancelled, or the backend died mid-stream).
        """
        while self._pull():
            pass
        missing = self.num_queries - len(self._by_position)
        if missing:
            raise RuntimeError(
                f"stream ended with {missing} of {self.num_queries} results "
                f"missing{' (cancelled)' if self.cancelled else ''}"
            )
        return [self._by_position[i] for i in range(self.num_queries)]

    def result(self) -> QueryResult:
        """The single result of a one-query stream (:meth:`Database.query`)."""
        results = self.results()
        if len(results) != 1:
            raise RuntimeError(
                f"result() needs a single-query stream, this one has {len(results)}"
            )
        return results[0]

    def paths(self) -> List[Optional[List[Tuple[int, ...]]]]:
        """Per-query path lists in workload order (``None`` = storage off)."""
        return [result.paths for result in self.results()]

    def counts(self) -> List[int]:
        """Per-query result counts in workload order."""
        return [result.count for result in self.results()]

    @property
    def delivered(self) -> int:
        """Results received so far (without pulling more)."""
        return len(self._by_position)

    # -- control & summaries -------------------------------------------- #
    def cancel(self) -> None:
        """Stop the run as soon as the backend allows; idempotent."""
        self.cancelled = True
        if self._cancel_cb is not None:
            self._cancel_cb()

    def stats(self) -> StreamStats:
        """Summary of the results delivered so far (does not drain)."""
        delivered = list(self._by_position.values())
        hits = sum(1 for r in delivered if r.stats.bfs_cache_hit)
        runs = (len(delivered) - hits) if self._distance_aware else 0
        return StreamStats(
            backend=self.backend,
            queries=self.num_queries,
            completed=len(delivered),
            total_paths=sum(r.count for r in delivered),
            wall_seconds=(
                self._wall if self._wall is not None
                else time.perf_counter() - self._started
            ),
            reverse_bfs_runs=runs,
            bfs_cache_hits=hits if self._distance_aware else 0,
        )

    # -- canonical payload ---------------------------------------------- #
    def payload(self) -> List[Dict[str, object]]:
        """The stream's canonical payload: one plain dict per query.

        This is the cross-backend equivalence contract — the fields every
        backend reproduces bit for bit for the same spec list (endpoints,
        hop budget, count, chosen plan, timeout flag and the exact path
        sequence).  Backend-dependent extras (timings, cache flags on warm
        services) are deliberately excluded.
        """
        entries: List[Dict[str, object]] = []
        for result in self.results():
            paths = result.paths
            entries.append(
                {
                    "source": result.source,
                    "target": result.target,
                    "k": result.k,
                    "count": result.count,
                    "plan": result.stats.plan,
                    "timed_out": bool(result.stats.timed_out),
                    "paths": None if paths is None else [list(p) for p in paths],
                }
            )
        return entries

    def payload_bytes(self) -> bytes:
        """:meth:`payload` as canonical JSON bytes (sorted keys, no spaces)."""
        return json.dumps(
            self.payload(), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self._exhausted else ("cancelled" if self.cancelled else "live")
        return (
            f"ResultStream(backend={self.backend!r}, queries={self.num_queries}, "
            f"delivered={self.delivered}, {state})"
        )


# --------------------------------------------------------------------- #
# execution backends
# --------------------------------------------------------------------- #
class ExecutionBackend:
    """Protocol every execution backend implements.

    A backend turns one validated batch — ``specs`` plus their shared
    option fields — into an iterator of ``(position, QueryResult)`` pairs
    wrapped in a :class:`ResultStream`, and owns whatever resources the
    execution mode needs.  ``chunk_queries`` is a latency hint: 1 when the
    consumer wants per-query streaming, larger for throughput batches.
    """

    #: Backend name as listed in :data:`BACKEND_CHOICES`.
    name: str = "abstract"

    def submit(
        self,
        specs: Sequence[QuerySpec],
        options: QuerySpec,
        *,
        external: bool = False,
        ordered: bool = True,
        chunk_queries: int = DEFAULT_CHUNK_QUERIES,
    ) -> ResultStream:
        raise NotImplementedError

    def close(self) -> None:
        """Release pools / connections / shared segments; idempotent."""

    def mutate(
        self,
        add: Sequence[Tuple[object, object]] = (),
        remove: Sequence[Tuple[object, object]] = (),
        *,
        external: bool = False,
    ) -> Dict[str, object]:
        """Apply an edge batch; publishes the next graph epoch.

        Local backends fold the batch into a fresh snapshot through
        :class:`repro.live.LiveGraph` and repair their cached distance
        arrays incrementally; the remote backend sends an ``update`` frame.
        Backends without a mutation path (the routed ones — a write would
        have to fan out to every replica of the owning shard) raise
        :class:`BackendError`.
        """
        raise BackendError(
            f"backend {self.name!r} does not support live updates; open the "
            "graph through an inline / threads / processes / remote Database"
        )

    @property
    def distance_aware(self) -> bool:
        """Whether results carry meaningful distance-cache flags."""
        return True


def _resolve_queries(
    graph: DiGraph, specs: Sequence[QuerySpec], external: bool
) -> List[Query]:
    """Translate specs into core :class:`Query` objects against ``graph``."""
    queries: List[Query] = []
    for position, spec in enumerate(specs):
        if external:
            queries.append(Query.from_external(graph, spec.source, spec.target, spec.k))
            continue
        source, target = _as_int(spec.source), _as_int(spec.target)
        if source is None or target is None:
            raise QuerySpecError(
                f"query {position} has non-integer endpoints "
                f"({spec.source!r}, {spec.target!r}) but external=False; pass "
                "external=True to resolve external vertex ids"
            )
        queries.append(Query(source, target, spec.k))
    return queries


def _resolve_edges(
    graph: DiGraph, edges: Iterable[Tuple[object, object]], external: bool
) -> List[Tuple[int, int]]:
    """Translate ``(u, v)`` pairs into internal-id pairs against ``graph``."""
    pairs: List[Tuple[int, int]] = []
    for edge in edges:
        u, v = edge
        if external:
            pairs.append((graph.to_internal(u), graph.to_internal(v)))
            continue
        iu, iv = _as_int(u), _as_int(v)
        if iu is None or iv is None:
            raise QuerySpecError(
                f"edge ({u!r}, {v!r}) has non-integer endpoints but "
                "external=False; pass external=True to resolve external "
                "vertex ids"
            )
        pairs.append((iu, iv))
    return pairs


class InlineBackend(ExecutionBackend):
    """Sequential evaluation through one :class:`QuerySession`.

    The session (and its reverse-BFS distance cache) persists for the
    database's lifetime, so later batches against warm targets skip the
    reverse half of their index builds — exactly the old ``QuerySession``
    behaviour behind the new surface.  The only backend that evaluates
    constrained specs, and the only one whose laziness is per query: a
    query runs when the stream is pulled past it.
    """

    name = "inline"

    def __init__(
        self,
        graph: DiGraph,
        *,
        algorithm: Optional[Algorithm] = None,
        max_cached: int = 1024,
        **_ignored,
    ) -> None:
        self.graph = graph
        self.session = QuerySession(graph, algorithm=algorithm, max_cached=max_cached)
        self._live = None  # lazy LiveGraph, created on the first mutation

    @property
    def distance_aware(self) -> bool:
        return is_distance_aware(self.session.algorithm)

    def mutate(
        self,
        add: Sequence[Tuple[object, object]] = (),
        remove: Sequence[Tuple[object, object]] = (),
        *,
        external: bool = False,
    ) -> Dict[str, object]:
        from repro.live.epochs import LiveGraph

        if self._live is None:
            self._live = LiveGraph(self.graph)
        info = self._live.apply(
            add=_resolve_edges(self.graph, add, external),
            remove=_resolve_edges(self.graph, remove, external),
        )
        repair = {"repaired": 0, "recomputed": 0, "invalidated": 0}
        if info["published"]:
            self.graph = self._live.graph
            repair = self.session.refresh_graph(
                self.graph, added=info["added"], removed=info["removed"]
            )
        return {
            "epoch": info["epoch"],
            "added": len(info["added"]),
            "removed": len(info["removed"]),
            "repair": repair,
            "stats": self._live.stats(),
        }

    def close(self) -> None:
        if self._live is not None:
            self._live.close()
            self._live = None

    def submit(
        self,
        specs: Sequence[QuerySpec],
        options: QuerySpec,
        *,
        external: bool = False,
        ordered: bool = True,
        chunk_queries: int = DEFAULT_CHUNK_QUERIES,
    ) -> ResultStream:
        started = time.perf_counter()
        queries = _resolve_queries(self.graph, specs, external)
        config = _run_config(options)
        cancelled = threading.Event()

        def produce() -> Iterator[Tuple[int, QueryResult]]:
            for position, query in enumerate(queries):
                if cancelled.is_set():
                    return
                yield position, self.session.run(query, config)

        return ResultStream(
            produce(),
            num_queries=len(queries),
            backend=self.name,
            cancel=cancelled.set,
            ordered=ordered,
            distance_aware=self.distance_aware,
            started_at=started,
        )


class _CoreBackend(ExecutionBackend):
    """Shared implementation of the thread and process backends.

    Thin adapter over :class:`~repro.core.engine.ExecutorCore`: the core
    warms the distance cache, partitions the workload by target and streams
    ``(position, result)`` chunks back from its persistent pool; the
    adapter flattens the chunks and charges each warm-phase reverse BFS to
    the first query of its key, so cache flags match a sequential session.
    """

    _core_backend = "thread"

    def __init__(
        self,
        graph: DiGraph,
        *,
        algorithm: Optional[Algorithm] = None,
        workers: Optional[int] = None,
        shards: Optional[int] = None,
        start_method: Optional[str] = None,
        max_cached: int = 1024,
    ) -> None:
        self.graph = graph
        self.core = ExecutorCore(
            graph,
            algorithm=algorithm,
            backend=self._core_backend,
            workers=workers,
            shards=shards,
            start_method=start_method,
            max_cached=max_cached,
        )

    @property
    def distance_aware(self) -> bool:
        return self.core.distance_aware

    def mutate(
        self,
        add: Sequence[Tuple[object, object]] = (),
        remove: Sequence[Tuple[object, object]] = (),
        *,
        external: bool = False,
    ) -> Dict[str, object]:
        # The external-id mapping is epoch-invariant (the vertex set is
        # fixed at build time), so resolving against the possibly previous
        # snapshot is safe.
        info = self.core.mutate(
            add=_resolve_edges(self.graph, add, external),
            remove=_resolve_edges(self.graph, remove, external),
        )
        self.graph = self.core.graph
        return info

    def close(self) -> None:
        self.core.close()

    def submit(
        self,
        specs: Sequence[QuerySpec],
        options: QuerySpec,
        *,
        external: bool = False,
        ordered: bool = True,
        chunk_queries: int = DEFAULT_CHUNK_QUERIES,
    ) -> ResultStream:
        if options.constraint is not None:
            raise BackendError(
                "path constraints hold process-local state (their edge "
                "filters are closures) and cannot ride a worker pool; "
                "evaluate constrained specs on an inline Database"
            )
        started = time.perf_counter()
        queries = _resolve_queries(self.graph, specs, external)
        config = _run_config(options)
        run = self.core.start(queries, config, chunk_queries=chunk_queries)
        paying_positions: set = set()
        if self.core.distance_aware:
            first_position: Dict[Tuple[int, int], int] = {}
            for position, query in enumerate(queries):
                first_position.setdefault((query.target, query.k), position)
            paying_positions = {
                first_position[key] for key in run.fresh if key in first_position
            }

        def produce() -> Iterator[Tuple[int, QueryResult]]:
            for chunk in run.chunks():
                for position, result in chunk:
                    if self.core.distance_aware:
                        result.stats.bfs_cache_hit = position not in paying_positions
                    yield position, result

        return ResultStream(
            produce(),
            num_queries=len(queries),
            backend=self.name,
            cancel=run.cancel,
            ordered=ordered,
            distance_aware=self.core.distance_aware,
            started_at=started,
        )


class ThreadsBackend(_CoreBackend):
    """Sharded fan-out over a persistent thread pool."""

    name = "threads"
    _core_backend = "thread"


class ProcessesBackend(_CoreBackend):
    """Sharded fan-out over worker processes sharing one graph image."""

    name = "processes"
    _core_backend = "process"


def _result_from_frame(frame: Dict[str, object]) -> QueryResult:
    """Rebuild a :class:`QueryResult` from one ``result`` protocol frame.

    The wire carries the payload fields (endpoints, count, paths, plan,
    timeout and cache flags) plus the server-side query time; phase
    breakdowns and estimator internals stay server-side.
    """
    stats = EnumerationStats(
        plan=frame.get("plan"),
        timed_out=bool(frame.get("timed_out", False)),
        bfs_cache_hit=bool(frame.get("bfs_cache_hit", False)),
    )
    stats.add_phase(Phase.TOTAL, float(frame.get("query_ms", 0.0)) / 1e3)
    raw_paths = frame.get("paths")
    paths = None if raw_paths is None else [tuple(path) for path in raw_paths]
    return QueryResult(
        source=frame["source"],
        target=frame["target"],
        k=int(frame["k"]),
        algorithm="remote",
        count=int(frame["count"]),
        paths=paths,
        stats=stats,
    )


class RemoteBackend(ExecutionBackend):
    """Execution against a running ``repro serve`` instance over TCP.

    Each submitted batch becomes one protocol job driven by a background
    thread running the asyncio :class:`~repro.server.client.QueryClient`;
    result frames are rebuilt into :class:`QueryResult` objects and handed
    to the consumer through a thread-safe queue, so the stream's laziness
    and cancellation semantics match the local backends.  All run options
    — the ``engine`` selection included — travel in the submit frame and
    are honored server-side exactly like a local :class:`RunConfig`.
    """

    name = "remote"

    #: Seconds between cancellation polls in the driver coroutine.
    _CANCEL_POLL_SECONDS = 0.02

    def __init__(self, host: str, port: int, **_ignored) -> None:
        self.host = host
        self.port = int(port)

    def mutate(
        self,
        add: Sequence[Tuple[object, object]] = (),
        remove: Sequence[Tuple[object, object]] = (),
        *,
        external: bool = False,
    ) -> Dict[str, object]:
        import asyncio

        add = [list(edge) for edge in add]
        remove = [list(edge) for edge in remove]

        async def drive() -> Dict[str, object]:
            from repro.server.client import QueryClient

            client = await QueryClient.connect(self.host, self.port)
            try:
                return await client.update(
                    add=add, remove=remove, external=external
                )
            finally:
                await client.close()

        frame = asyncio.run(drive())
        return {
            key: frame[key]
            for key in ("epoch", "added", "removed", "repair", "stats")
            if key in frame
        }

    def submit(
        self,
        specs: Sequence[QuerySpec],
        options: QuerySpec,
        *,
        external: bool = False,
        ordered: bool = True,
        chunk_queries: int = DEFAULT_CHUNK_QUERIES,
    ) -> ResultStream:
        if options.constraint is not None:
            raise BackendError(
                "path constraints hold process-local state (their edge "
                "filters are closures) and cannot cross the wire; evaluate "
                "constrained specs on a local inline Database"
            )
        started = time.perf_counter()
        triples = [list(spec.triple) for spec in specs]
        events: "queue_module.Queue[Tuple[str, object, object]]" = queue_module.Queue()
        cancelled = threading.Event()
        worker = threading.Thread(
            target=self._drive_blocking,
            args=(triples, options, external, events, cancelled),
            name="repro-remote-stream",
            daemon=True,
        )
        worker.start()

        def produce() -> Iterator[Tuple[int, QueryResult]]:
            while True:
                kind, a, b = events.get()
                if kind == "item":
                    yield a, b  # type: ignore[misc]
                elif kind == "error":
                    raise RuntimeError(f"remote query failed: {a}")
                elif kind == "overloaded":
                    frame = a if isinstance(a, dict) else {}
                    raise ServiceOverloaded(
                        "server shed the job: "
                        f"retry after {frame.get('retry_after_ms', 50.0)} ms",
                        retry_after=float(frame.get("retry_after_ms", 50.0)) / 1e3,
                        pending=frame.get("pending"),
                        limit=frame.get("limit"),
                    )
                else:  # done / cancelled
                    return

        return ResultStream(
            produce(),
            num_queries=len(triples),
            backend=self.name,
            cancel=cancelled.set,
            ordered=ordered,
            started_at=started,
        )

    # -- background driver ---------------------------------------------- #
    def _drive_blocking(self, triples, options, external, events, cancelled) -> None:
        import asyncio

        try:
            asyncio.run(self._drive(triples, options, external, events, cancelled))
        except Exception as error:  # noqa: BLE001 - surfaced to the consumer
            events.put(("error", f"{type(error).__name__}: {error}", None))

    async def _drive(self, triples, options, external, events, cancelled) -> None:
        import asyncio
        import contextlib

        from repro.server.client import QueryClient

        client = await QueryClient.connect(self.host, self.port)
        try:
            job_id = await client.submit(
                triples,
                store_paths=options.store_paths,
                result_limit=options.limit,
                time_limit_seconds=options.deadline,
                response_k=options.response_k,
                external=external,
                engine=None if options.engine == "auto" else options.engine,
            )

            async def watch_cancel() -> None:
                while not cancelled.is_set():
                    await asyncio.sleep(self._CANCEL_POLL_SECONDS)
                await client.cancel(job_id)

            watcher = asyncio.create_task(watch_cancel())
            try:
                async for frame in client.frames(job_id):
                    kind = frame["type"]
                    if kind == "result":
                        events.put(
                            ("item", int(frame["position"]), _result_from_frame(frame))
                        )
                    elif kind == "done":
                        events.put(("done", frame, None))
                    elif kind == "cancelled":
                        events.put(("cancelled", frame, None))
                    elif kind == "overloaded":
                        events.put(("overloaded", frame, None))
                    elif kind == "error":
                        events.put(("error", frame.get("error"), None))
            finally:
                watcher.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await watcher
        finally:
            await client.close()


class RouterBackend(RemoteBackend):
    """Execution against a running ``repro route`` front end.

    The router speaks the exact protocol of ``repro serve`` — it rewrites
    job ids and positions so the merged multi-shard stream is
    indistinguishable from a single-host stream — so this backend is the
    remote one under a different name: the name records *what* answered
    (a routed fleet), which ``Database.backend_name`` and stream stats
    report.
    """

    name = "router"

    def mutate(
        self,
        add: Sequence[Tuple[object, object]] = (),
        remove: Sequence[Tuple[object, object]] = (),
        *,
        external: bool = False,
    ) -> Dict[str, object]:
        # A routed write would have to reach every replica of the owning
        # shard atomically; the router has no such path. Fall back to the
        # base class's clear refusal instead of inheriting the remote
        # single-host update.
        return ExecutionBackend.mutate(self, add, remove, external=external)


class ShardMapBackend(ExecutionBackend):
    """Client-side routing: the database itself is the router.

    Opened from a shard-map ``.json`` file or a
    :class:`~repro.server.router.ShardMap`, this backend embeds a
    :class:`~repro.server.router.ShardRouter` on a private event-loop
    thread that lives as long as the database: shard connections stay
    persistent across batches (so shard-side distance caches stay hot),
    and every batch gets the full routing treatment — consistent-hash
    fan-out, merged workload-ordered streaming, replica failover, hedged
    requests — without any ``repro route`` process in between.
    """

    name = "router"

    #: Seconds between cancellation polls in the driver coroutine.
    _CANCEL_POLL_SECONDS = 0.02

    def __init__(self, shard_map, *, router_options: Optional[Dict[str, object]] = None, **_ignored) -> None:
        import asyncio

        from repro.server.router import ShardRouter

        self.shard_map = shard_map
        # Construction is loop-free (validation + channel bookkeeping); all
        # awaiting happens later on the private loop below.
        self._router = ShardRouter(shard_map, **(router_options or {}))
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-router-loop", daemon=True
        )
        self._thread.start()

    def submit(
        self,
        specs: Sequence[QuerySpec],
        options: QuerySpec,
        *,
        external: bool = False,
        ordered: bool = True,
        chunk_queries: int = DEFAULT_CHUNK_QUERIES,
    ) -> ResultStream:
        if options.constraint is not None:
            raise BackendError(
                "path constraints hold process-local state (their edge "
                "filters are closures) and cannot cross the wire; evaluate "
                "constrained specs on a local inline Database"
            )
        started = time.perf_counter()
        triples = [list(spec.triple) for spec in specs]
        wire_opts: Dict[str, object] = {
            "store_paths": options.store_paths,
            "response_k": options.response_k,
        }
        if options.limit is not None:
            wire_opts["result_limit"] = options.limit
        if options.deadline is not None:
            wire_opts["time_limit_seconds"] = options.deadline
        if external:
            wire_opts["external"] = True
        if options.engine != "auto":
            wire_opts["engine"] = options.engine
        events: "queue_module.Queue[Tuple[str, object, object]]" = queue_module.Queue()
        cancelled = threading.Event()
        import asyncio

        asyncio.run_coroutine_threadsafe(
            self._pump(triples, wire_opts, events, cancelled), self._loop
        )

        def produce() -> Iterator[Tuple[int, QueryResult]]:
            while True:
                kind, a, b = events.get()
                if kind == "item":
                    yield a, b  # type: ignore[misc]
                elif kind == "error":
                    raise RuntimeError(f"routed query failed: {a}")
                elif kind == "overloaded":
                    frame = a if isinstance(a, dict) else {}
                    raise ServiceOverloaded(
                        "shard fleet shed the job: "
                        f"retry after {frame.get('retry_after_ms', 50.0)} ms",
                        retry_after=float(frame.get("retry_after_ms", 50.0)) / 1e3,
                        pending=frame.get("pending"),
                        limit=frame.get("limit"),
                    )
                else:  # done / cancelled
                    return

        return ResultStream(
            produce(),
            num_queries=len(triples),
            backend=self.name,
            cancel=cancelled.set,
            ordered=ordered,
            started_at=started,
        )

    async def _pump(self, triples, wire_opts, events, cancelled) -> None:
        import asyncio
        import contextlib

        try:
            job = await self._router.submit(triples, wire_opts)

            async def watch_cancel() -> None:
                while not cancelled.is_set():
                    await asyncio.sleep(self._CANCEL_POLL_SECONDS)
                await self._router.cancel(job)

            watcher = asyncio.ensure_future(watch_cancel())
            try:
                async for frame in job.frames():
                    kind = frame["type"]
                    if kind == "result":
                        events.put(
                            ("item", int(frame["position"]), _result_from_frame(frame))
                        )
                    elif kind == "done":
                        events.put(("done", frame, None))
                    elif kind == "cancelled":
                        events.put(("cancelled", frame, None))
                    elif kind == "overloaded":
                        events.put(("overloaded", frame, None))
                    elif kind == "error":
                        events.put(("error", frame.get("error"), None))
            finally:
                watcher.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await watcher
        except Exception as error:  # noqa: BLE001 - surfaced to the consumer
            events.put(("error", f"{type(error).__name__}: {error}", None))

    def close(self) -> None:
        import asyncio
        import contextlib

        if self._loop.is_closed():
            return
        with contextlib.suppress(Exception):
            asyncio.run_coroutine_threadsafe(
                self._router.close(), self._loop
            ).result(timeout=10.0)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        self._loop.close()


# --------------------------------------------------------------------- #
# the façade
# --------------------------------------------------------------------- #
def _is_snapshot(path) -> bool:
    """``True`` when ``path`` starts with the binary snapshot magic."""
    from repro.graph.snapshot import SNAPSHOT_MAGIC

    try:
        with open(path, "rb") as handle:
            return handle.read(len(SNAPSHOT_MAGIC)) == SNAPSHOT_MAGIC
    except OSError:
        return False


def _looks_like_url(target: str) -> Optional[Tuple[str, int]]:
    """Parse ``host:port`` / ``tcp://host:port``; ``None`` when not a URL."""
    candidate = target[len("tcp://"):] if target.startswith("tcp://") else target
    host, separator, port = candidate.rpartition(":")
    if not separator or not host or not port.isdigit():
        return None
    return host, int(port)


class Database:
    """One handle over a graph and an execution backend.

    Open it from whatever you have::

        Database(graph)                          # a DiGraph, inline execution
        Database(graph, backend="threads")       # same graph, thread pool
        Database("snapshot.npz", backend="processes", workers=4)
        Database("graph.rsnap")                  # mappable snapshot: attaches
        Database("graph.rsnap", store="heap")    # ... or materialise it

        Database("edges.txt")                    # SNAP-style edge list
        Database("127.0.0.1:7284")               # a running `repro serve`
        Database("router://127.0.0.1:7285")      # a running `repro route`
        Database("shards.json")                  # shard map: client-side routing

    The backend is inferred from the arguments (URL → ``remote``, local
    graph → ``inline``, or ``threads`` when ``workers > 1`` asks for
    parallelism) unless ``backend=`` names one of
    :data:`BACKEND_CHOICES`.  The database owns the backend's resources —
    distance cache, worker pools, shared-memory segments, connections — and
    releases them on :meth:`close` (it is a context manager).

    Every execution entry point accepts :class:`QuerySpec` / :class:`Q` /
    core ``Query`` objects (or plain ``(s, t, k)`` triples) and returns a
    :class:`ResultStream`:

    * :meth:`query` — one spec, a one-result stream;
    * :meth:`batch` — many specs, iterated in workload order;
    * :meth:`stream` — many specs, iterated in completion order with
      per-query streaming latency.
    """

    def __init__(
        self,
        target: Union[DiGraph, str, "os.PathLike[str]"],
        *,
        backend: Optional[str] = None,
        algorithm: Optional[Algorithm] = None,
        workers: Optional[int] = None,
        shards: Optional[int] = None,
        start_method: Optional[str] = None,
        max_cached: int = 1024,
        store: Optional[str] = None,
    ) -> None:
        if backend is not None and backend not in BACKEND_CHOICES:
            raise BackendError(
                f"unknown backend {backend!r}: use one of {BACKEND_CHOICES}"
            )
        graph, remote, router = self._resolve_target(target, backend, store)
        if router is not None or remote is not None:
            if algorithm is not None:
                raise BackendError(
                    "a remote Database serves whatever algorithm `repro "
                    "serve` was started with; drop the algorithm argument"
                )
        if router is not None:
            if backend not in (None, "router"):
                raise BackendError(
                    f"backend {backend!r} cannot run against the routed target "
                    f"{target!r}; open a local graph instead"
                )
            self.backend_name = "router"
            if router[0] == "url":
                self._backend: ExecutionBackend = RouterBackend(router[1], router[2])
            else:
                self._backend = ShardMapBackend(router[1])
        elif remote is not None:
            if backend not in (None, "remote", "router"):
                raise BackendError(
                    f"backend {backend!r} cannot run against the remote target "
                    f"{target!r}; open a local graph instead"
                )
            # backend="router" against a plain host:port says the endpoint
            # is a `repro route` front end (same wire protocol either way).
            self.backend_name = "router" if backend == "router" else "remote"
            factory = RouterBackend if backend == "router" else RemoteBackend
            self._backend = factory(*remote)
        else:
            if backend == "remote":
                raise BackendError(
                    f"backend 'remote' needs a host:port target, got {target!r}"
                )
            if backend == "router":
                raise BackendError(
                    "backend 'router' needs a router://host:port URL, a "
                    f"shard-map .json file or a ShardMap, got {target!r}"
                )
            parallel = workers is not None and workers > 1
            if backend is None:
                # workers= is an unambiguous ask for parallelism; silently
                # running it sequentially would be a trap.
                backend = "threads" if parallel else "inline"
            elif backend == "inline" and parallel:
                raise BackendError(
                    "backend 'inline' runs in the calling thread and takes "
                    "no workers; drop workers= or pick backend='threads' / "
                    "'processes'"
                )
            self.backend_name = backend
            factory = {
                "inline": InlineBackend,
                "threads": ThreadsBackend,
                "processes": ProcessesBackend,
            }[self.backend_name]
            self._backend = factory(
                graph,
                algorithm=algorithm,
                workers=workers,
                shards=shards,
                start_method=start_method,
                max_cached=max_cached,
            )
        self.graph = graph
        # A graph loaded from a path is this Database's to clean up —
        # mmap'd snapshot mappings and compressed block buffers included.
        # A caller-provided DiGraph keeps its own store lifecycle.  Live
        # updates rebind ``self.graph`` to newer epochs, so cleanup tracks
        # the graph that was actually opened.
        self._opened_graph = graph
        self._owns_graph_store = graph is not None and not isinstance(target, DiGraph)
        self._closed = False

    @staticmethod
    def _resolve_target(target, backend, store):
        """Classify the open target: ``(graph, remote, router)``.

        Exactly one element is non-``None``: a loaded graph for local
        execution, a ``(host, port)`` tuple for a plain ``repro serve``
        endpoint, or a router descriptor — ``("url", host, port)`` for a
        ``repro route`` front end, ``("map", ShardMap)`` for client-side
        routing.  Shard-map ``.json`` files are recognised *before* the
        generic existing-file branch, which would otherwise read them as an
        edge list.
        """
        import os
        from pathlib import Path

        if isinstance(target, DiGraph):
            return target, None, None
        from repro.server.router import ShardMap

        if isinstance(target, ShardMap):
            return None, None, ("map", target)
        if isinstance(target, os.PathLike):
            target = os.fspath(target)
        if not isinstance(target, str):
            raise BackendError(
                f"cannot open {target!r}: expected a DiGraph, a snapshot / "
                "edge-list path, a host:port URL, or a shard map"
            )
        if target.startswith("router://"):
            url = _looks_like_url(target[len("router://"):])
            if url is None:
                raise BackendError(
                    f"cannot open {target!r}: expected router://host:port"
                )
            return None, None, ("url",) + url
        path = Path(target)
        if target.endswith(".json") and path.exists():
            return None, None, ("map", ShardMap.from_file(target))
        if target.endswith(".npz") or path.exists():
            from repro.graph.io import _load_npz, read_edge_list

            if path.exists() and _is_snapshot(path):
                from repro.graph.snapshot import load_snapshot

                return load_snapshot(target, store=store or "auto"), None, None
            if target.endswith(".npz"):
                return _load_npz(target, store=store), None, None
            return read_edge_list(target), None, None
        url = _looks_like_url(target)
        if url is not None:
            return None, url, None
        raise BackendError(
            f"cannot open {target!r}: not an existing snapshot / edge-list "
            "file and not a host:port URL"
        )

    @classmethod
    def open(cls, target, **options) -> "Database":
        """Alias of the constructor, for symmetry with file APIs."""
        return cls(target, **options)

    # -- lifecycle ------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release the backend's resources; idempotent.

        Backends go first (worker pools may still read the graph), then any
        graph store this Database opened itself — dropping snapshot mappings
        without deleting the snapshot, and shared segments via the owner
        path.  Both layers are themselves idempotent, so a second
        ``close()`` (or an explicit ``graph.close_store()`` before this) is
        harmless.
        """
        if not self._closed:
            self._closed = True
            self._backend.close()
            if self._owns_graph_store and self._opened_graph is not None:
                self._opened_graph.close_store()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        origin = (
            f"{self._backend.host}:{self._backend.port}"
            if isinstance(self._backend, RemoteBackend)
            else f"|V|={self.graph.num_vertices}, |E|={self.graph.num_edges}"
        )
        return f"Database(backend={self.backend_name!r}, {origin})"

    # -- execution ------------------------------------------------------ #
    def _submit(
        self,
        items: Iterable[SpecLike],
        overrides: Dict[str, object],
        *,
        external: bool,
        ordered: bool,
        chunk_queries: int,
    ) -> ResultStream:
        if self._closed:
            raise RuntimeError("Database is closed")
        specs = [as_spec(item, **overrides) for item in items]
        if not specs:
            return ResultStream(
                iter(()), num_queries=0, backend=self.backend_name, ordered=ordered
            )
        options = _common_options(specs)
        return self._backend.submit(
            specs,
            options,
            external=external,
            ordered=ordered,
            chunk_queries=chunk_queries,
        )

    def query(self, spec: SpecLike, *, external: bool = False, **options) -> ResultStream:
        """Evaluate one spec; returns a one-result :class:`ResultStream`.

        Keyword ``options`` override the spec's run-option fields (e.g.
        ``db.query((s, t, 4), limit=10)``); read the single result with
        ``.result()``, its paths with ``.paths()[0]``.
        """
        return self._submit(
            [spec], options, external=external, ordered=True, chunk_queries=1
        )

    def batch(
        self, specs: Iterable[SpecLike], *, external: bool = False, **options
    ) -> ResultStream:
        """Evaluate a whole spec list; iteration follows workload order.

        All specs of one batch must share their run options (one batch is
        one :class:`RunConfig` / submit frame); ``options`` apply to every
        spec, so triples and :class:`Q` builders pick them up directly.
        """
        return self._submit(
            specs,
            options,
            external=external,
            ordered=True,
            chunk_queries=DEFAULT_CHUNK_QUERIES,
        )

    def stream(
        self, specs: Iterable[SpecLike], *, external: bool = False, **options
    ) -> ResultStream:
        """Like :meth:`batch`, but iteration yields results as they finish.

        Chunking is per query, so the first result arrives while later
        queries still enumerate; use :meth:`ResultStream.as_completed` for
        ``(position, result)`` pairs.
        """
        return self._submit(
            specs, options, external=external, ordered=False, chunk_queries=1
        )

    # -- mutation ------------------------------------------------------- #
    def _mutate(
        self,
        add: Sequence[Tuple[object, object]],
        remove: Sequence[Tuple[object, object]],
        external: bool,
    ) -> Dict[str, object]:
        if self._closed:
            raise RuntimeError("Database is closed")
        result = self._backend.mutate(add=add, remove=remove, external=external)
        # Local backends rebind their graph to the newly published epoch;
        # mirror it here so db.graph always describes what queries see.
        refreshed = getattr(self._backend, "graph", None)
        if refreshed is not None:
            self.graph = refreshed
        return result

    def insert_edges(
        self, edges: Iterable[Tuple[object, object]], *, external: bool = False
    ) -> Dict[str, object]:
        """Insert an edge batch; returns the published epoch and counters.

        The batch is applied atomically: queries in flight keep reading the
        epoch they started on, queries submitted after the call returns see
        every inserted edge.  Self-loops, duplicates and edges already
        present are skipped (mirroring the graph builder); both endpoints
        must already exist — the vertex set is fixed at build time.  The
        returned dict carries ``epoch``, the applied ``added`` / ``removed``
        counts, the distance-cache ``repair`` breakdown and the live
        ``stats`` counters.
        """
        return self._mutate(list(edges), (), external)

    def remove_edges(
        self, edges: Iterable[Tuple[object, object]], *, external: bool = False
    ) -> Dict[str, object]:
        """Remove an edge batch; semantics mirror :meth:`insert_edges`.

        Removing an edge that is not present is a no-op; a batch that
        changes nothing publishes no new epoch.
        """
        return self._mutate((), list(edges), external)
