"""Compiled / vectorised native enumeration engine (``engine="native"``).

The iterative kernels of :mod:`repro.core.kernels` removed the recursion and
the per-path tuples, but still execute one interpreted Python iteration per
candidate over Python-int mirrors of the index.  This module removes the
interpreter from the hot path as well.  It operates **directly on the
index's int64 numpy CSR buffers** (:meth:`LightWeightIndex.native_csr` — no
``kernel_csr()`` Python-int mirrors) and emits paths as whole numpy blocks
into the collector's columnar :class:`~repro.core.result.PathBuffer`
(:meth:`~repro.core.listener.ResultCollector.emit_array_block`), so no
vertex ever round-trips through a Python int on the fast path.

Two tiers share the entry points:

* **vectorised** (always available, pure numpy) — the DFS expands whole
  subtrees per call, depth chosen adaptively so the estimated fan-out fits
  a fixed cap: every level of a subtree is one set of array ops (ragged
  candidate gather, ancestor-exclusion masks, per-level prefix sums that
  recover the exact DFS emission order without sorting), so one
  interpreted step amortises over the subtree's whole path fan-out.
  Sub-queries run level-synchronously and the join pairs left walks against
  vectorised per-segment masks.
* **JIT** (requires Numba, ``pip install repro[native]``) — a resumable
  scalar DFS core (:func:`_dfs_fill`) written in nopython-compatible form
  and compiled with ``@njit(cache=True)`` when Numba is importable.  The
  core fills preallocated output arrays and *returns a status code*
  (``DFS_DONE`` / ``DFS_OUT_FULL`` / ``DFS_TICKS``); the Python driver
  flushes the block, polls the deadline with the accumulated tick count and
  resumes — deadline/limit interruption therefore stays exact even though
  the inner loop never touches the interpreter.  :func:`warmup` compiles
  the core ahead of time so first-query latency does not regress serving.

Both tiers emit exactly the same paths in exactly the same order as the
recursive engines and the kernels, and charge the same statistics counters:
bulk-expanded work is accounted per subtree and — whenever a result-limit
or response-time probe would fire inside a subtree — the engine re-runs
that single subtree in scalar (recursive-semantics) form so the interrupt
lands on exactly the same search-tree step.  The equivalence suite in
``tests/core/test_native.py`` asserts this over randomised graphs.

Like the kernels, the native engine does not support path constraints;
constrained queries fall back to the recursive engines.  The environment
knob ``REPRO_NATIVE=jit`` makes ``engine="native"`` *strict*: when the JIT
toolchain is missing the engine then falls back to ``"kernel"`` with a
one-time warning instead of running the vectorised tier.
"""

from __future__ import annotations

import os
import warnings
from typing import List, Optional, Tuple

import numpy as np

from repro.core.index import LightWeightIndex
from repro.core.listener import Deadline, ResultCollector
from repro.core.result import EnumerationStats
from repro.errors import EnumerationTimeout

__all__ = [
    "NATIVE_FLUSH_PATHS",
    "NATIVE_CHECK_TICKS",
    "DFS_DONE",
    "DFS_OUT_FULL",
    "DFS_TICKS",
    "jit_ready",
    "jit_required",
    "native_allowed",
    "warmup",
    "run_dfs_native",
    "run_join_native",
    "run_subquery_native",
]

#: Paths buffered before a block is flushed to the collector.
NATIVE_FLUSH_PATHS = 4096

#: Work units (candidate expansions) between deadline polls.
NATIVE_CHECK_TICKS = 2048

#: Subtree roots with fewer candidates than this (and depth at most
#: ``_SCALAR_DEPTH``) expand in scalar form — below it, per-level array-op
#: overhead costs more than the plain loop.
_SCALAR_WIDTH = 6
_SCALAR_DEPTH = 3

#: Cap on the *estimated* candidate count of one bulk subtree expansion;
#: wider subtrees split a scalar level at a time until the estimate fits,
#: which bounds the transient array memory of the vectorised tier.
_EXPAND_CAP = 1 << 19

#: Status codes returned by the resumable JIT core.
DFS_DONE = 0
DFS_OUT_FULL = 1
DFS_TICKS = 2

_EMPTY = np.empty(0, dtype=np.int64)


# --------------------------------------------------------------------- #
# toolchain introspection
# --------------------------------------------------------------------- #
_JIT_STATE = {"checked": False, "ready": False}
_WARNED = {"fallback": False}


def jit_ready() -> bool:
    """``True`` when the Numba toolchain is importable (checked once)."""
    if not _JIT_STATE["checked"]:
        _JIT_STATE["checked"] = True
        try:
            import numba  # noqa: F401

            _JIT_STATE["ready"] = True
        except Exception:
            _JIT_STATE["ready"] = False
    return _JIT_STATE["ready"]


def jit_required() -> bool:
    """``True`` when ``REPRO_NATIVE=jit`` demands the compiled tier."""
    return os.environ.get("REPRO_NATIVE", "").strip().lower() == "jit"


def native_allowed() -> bool:
    """Whether ``engine="native"`` may run here.

    The vectorised tier needs nothing beyond numpy, so this is ``True``
    unless the strict knob (``REPRO_NATIVE=jit``) demands the compiled tier
    on a machine without Numba — in which case callers fall back to
    ``"kernel"`` after :func:`warn_jit_fallback`.
    """
    return jit_ready() or not jit_required()


def warn_jit_fallback() -> None:
    """One-time warning for the strict-JIT fallback to the kernels."""
    if not _WARNED["fallback"]:
        _WARNED["fallback"] = True
        warnings.warn(
            "engine='native' with REPRO_NATIVE=jit requires Numba, which is "
            "not importable; falling back to engine='kernel'",
            RuntimeWarning,
            stacklevel=3,
        )


# --------------------------------------------------------------------- #
# block emission
# --------------------------------------------------------------------- #
class _BlockEmitter:
    """Accumulates emission blocks and flushes them as array blocks.

    ``limit_room`` tracks how many more results the collector's result
    limit allows: when a bulk block would reach it, the *caller* must not
    append in bulk — it replays that unit of work in scalar form so the
    limit raise lands on the exact path with recursive-exact counters
    (see :meth:`room_for`).  The response-time probe only needs block-edge
    accuracy (the kernels flush at the same granularity), so ``flush_cap``
    merely forces a flush near the probe without ever going scalar.
    """

    __slots__ = ("collector", "datas", "lens", "pending", "limit_room", "flush_cap")

    def __init__(self, collector: ResultCollector) -> None:
        self.collector = collector
        self.datas: List[np.ndarray] = []
        self.lens: List[np.ndarray] = []
        self.pending = 0
        self.refresh()

    def refresh(self) -> None:
        """Re-read the limit/probe boundaries from the collector."""
        limit = self.collector.result_limit
        self.limit_room = None if limit is None else limit - self.collector.count
        self.flush_cap = self.collector.remaining_before_flush()

    def room_for(self, count: int) -> bool:
        """Whether a bulk block of ``count`` paths stays strictly under the
        result limit (``True`` when no limit is set)."""
        return self.limit_room is None or self.pending + count < self.limit_room

    def append(self, data: np.ndarray, lens: np.ndarray) -> None:
        """Queue a block (``lens`` = per-path vertex counts)."""
        self.datas.append(data)
        self.lens.append(lens)
        self.pending += len(lens)
        if self.pending >= NATIVE_FLUSH_PATHS or (
            self.flush_cap is not None and self.pending >= self.flush_cap
        ):
            self.flush()

    def emit_path(self, path: List[int]) -> None:
        """Queue one scalar path, landing the limit raise on the exact path."""
        if self.limit_room is not None and self.pending + 1 >= self.limit_room:
            self.flush()
            self.collector.emit(path)
            self.refresh()
            return
        arr = np.asarray(path, dtype=np.int64)
        self.datas.append(arr)
        self.lens.append(np.asarray([len(arr)], dtype=np.int64))
        self.pending += 1
        if self.pending >= NATIVE_FLUSH_PATHS or (
            self.flush_cap is not None and self.pending >= self.flush_cap
        ):
            self.flush()

    def flush(self) -> None:
        """Emit everything queued as one array block."""
        if not self.pending:
            return
        data = self.datas[0] if len(self.datas) == 1 else np.concatenate(self.datas)
        lens = self.lens[0] if len(self.lens) == 1 else np.concatenate(self.lens)
        self.datas = []
        self.lens = []
        self.pending = 0
        self.collector.emit_array_block(data, np.cumsum(lens))
        self.refresh()


# --------------------------------------------------------------------- #
# sub-query evaluation (level-synchronous)
# --------------------------------------------------------------------- #
def run_subquery_native(
    index: LightWeightIndex,
    *,
    start: int,
    offset: int,
    length: int,
    deadline: Optional[Deadline] = None,
    stats: Optional[EnumerationStats] = None,
) -> Tuple[np.ndarray, int]:
    """Vectorised sub-query evaluation (the Search procedure of Algorithm 6).

    Returns ``(data, width)`` like :func:`repro.core.kernels.run_subquery_kernel`
    but with ``data`` as one flat int64 array.  Sub-query walks all have the
    same fixed length, so a level-synchronous expansion — one ragged gather
    per level over the whole frontier — visits them in exactly the DFS
    order of the recursive engine while charging the same per-level totals
    to the counters.
    """
    stats = stats if stats is not None else EnumerationStats()
    k = index.k
    vertex_of, row_of, nbr, indptr, off = index.native_csr()
    width = length + 1
    start_row = int(row_of[start]) if 0 <= start < len(row_of) else -1
    if start_row < 0:
        return (np.asarray([start], dtype=np.int64), width) if length == 0 else (
            _EMPTY,
            width,
        )
    if length == 0:
        return np.asarray([start], dtype=np.int64), width

    walks = np.asarray([[start_row]], dtype=np.int64)
    edges = 0
    partial = 0
    check = deadline is not None
    try:
        for depth in range(length):
            budget = k - offset - (depth + 1)
            if budget < 0 or not len(walks):
                walks = np.empty((0, depth + 2), dtype=np.int64)
                break
            rows = walks[:, -1]
            widths = off[rows, budget]
            total = int(widths.sum())
            edges += total
            if check:
                deadline.check_every(total)
            if total == 0:
                walks = np.empty((0, depth + 2), dtype=np.int64)
                break
            partial += total
            starts = indptr[rows]
            cumw = np.cumsum(widths)
            gather = np.repeat(starts - (cumw - widths), widths) + np.arange(
                total, dtype=np.int64
            )
            children = nbr[gather]
            walks = np.concatenate(
                [np.repeat(walks, widths, axis=0), children[:, None]], axis=1
            )
    finally:
        stats.edges_accessed += edges
        stats.partial_results_generated += partial
    if not len(walks):
        return _EMPTY, width
    return vertex_of[walks].ravel(), width


# --------------------------------------------------------------------- #
# join (IDX-JOIN, Algorithm 6)
# --------------------------------------------------------------------- #
def run_join_native(
    index: LightWeightIndex,
    cut_position: int,
    collector: ResultCollector,
    *,
    deadline: Optional[Deadline] = None,
    stats: Optional[EnumerationStats] = None,
) -> int:
    """Vectorised IDX-JOIN: array sub-queries + per-left-walk masked pairing.

    Byte-identical to :func:`repro.core.kernels.run_join_kernel` (and hence
    to the recursive :func:`repro.core.join.run_idx_join`): same paths,
    same order, same statistics counters.
    """
    stats = stats if stats is not None else EnumerationStats()
    query = index.query
    s, t, k = query.source, query.target, query.k
    if not 1 <= cut_position <= k - 1:
        raise ValueError(f"cut position must lie in [1, {k - 1}], got {cut_position}")
    if index.is_empty:
        return 0
    stats.cut_position = cut_position

    left_data, lw = run_subquery_native(
        index, start=s, offset=0, length=cut_position, deadline=deadline, stats=stats
    )
    left = left_data.reshape(-1, lw)
    left_count = len(left)

    # Right sub-queries per cut vertex, ascending — np.unique == sorted(set).
    cut_vertices = np.unique(left[:, -1]) if left_count else _EMPTY
    rw = k - cut_position + 1
    segments: List[np.ndarray] = []
    seg_bounds: dict = {}
    total_right = 0
    for v in cut_vertices.tolist():
        segment, _ = run_subquery_native(
            index,
            start=v,
            offset=cut_position,
            length=k - cut_position,
            deadline=deadline,
            stats=stats,
        )
        matrix = segment.reshape(-1, rw)
        segments.append(matrix)
        seg_bounds[v] = (total_right, total_right + len(matrix))
        total_right += len(matrix)
    right = (
        np.concatenate(segments, axis=0)
        if segments
        else np.empty((0, rw), dtype=np.int64)
    )
    right_count = len(right)

    stats.peak_partial_result_tuples = max(
        stats.peak_partial_result_tuples, left_count + right_count
    )
    stats.peak_partial_result_bytes = max(
        stats.peak_partial_result_bytes,
        8 * (left_count * lw + right_count * rw),
    )

    # Per-right-walk precompute, vectorised: the tail prefix ends at the
    # first t (every right walk ends at t, so one exists), and the prefix
    # must be internally distinct to ever join.
    if right_count:
        tails = right[:, 1:]
        t_pos = np.argmax(tails == t, axis=1).astype(np.int64)
        tail_ok = np.ones(right_count, dtype=bool)
        for a in range(rw - 2):
            for b in range(a + 1, rw - 1):
                tail_ok &= ~((tails[:, a] == tails[:, b]) & (b <= t_pos))
    else:
        tails = np.empty((0, 0), dtype=np.int64)
        t_pos = _EMPTY
        tail_ok = np.empty(0, dtype=bool)

    num_vertices = index.graph.num_vertices
    stamp = np.zeros(max(num_vertices, 1), dtype=bool)
    used = np.zeros(right_count, dtype=bool)
    emitted = 0
    invalid_left = 0
    emitter = _BlockEmitter(collector)
    check = deadline is not None

    def _emit_rows(
        sel_rows: np.ndarray, lwalk_arr: np.ndarray, prefix_stop: int, with_tail: bool
    ) -> int:
        """Queue the join results of one left walk (``sel_rows`` into
        ``right``); returns the number of paths produced."""
        count = len(sel_rows)
        if count == 0:
            return 0
        if not with_tail:
            # t inside the left walk: every match joins to the same prefix.
            lens = np.full(count, prefix_stop, dtype=np.int64)
            if not emitter.room_for(count):
                emitter.flush()
                prefix = tuple(lwalk_arr[:prefix_stop].tolist())
                for ri in sel_rows.tolist():
                    used[ri] = True
                    collector.emit(prefix)
                emitter.refresh()
                return count
            data = np.tile(lwalk_arr[:prefix_stop], count)
            emitter.append(data, lens)
            used[sel_rows] = True
            return count
        plens = t_pos[sel_rows] + 1
        lens = lw + plens
        if not emitter.room_for(count):
            emitter.flush()
            lprefix = lwalk_arr.tolist()
            for idx, ri in enumerate(sel_rows.tolist()):
                used[ri] = True
                collector.emit(tuple(lprefix + tails[ri, : int(plens[idx])].tolist()))
            emitter.refresh()
            return count
        bounds = np.cumsum(lens)
        starts = bounds - lens
        data = np.empty(int(bounds[-1]), dtype=np.int64)
        for i in range(lw):
            data[starts + i] = lwalk_arr[i]
        sel_tails = tails[sel_rows]
        for b in range(rw - 1):
            live = plens > b
            data[starts[live] + lw + b] = sel_tails[live, b]
        emitter.append(data, lens)
        used[sel_rows] = True
        return count

    try:
        for li in range(left_count):
            if check:
                deadline.check_every(1)
            lwalk = left[li]
            head = int(lwalk[-1])
            bounds = seg_bounds.get(head)
            produced = 0
            if bounds is not None:
                lo, hi = bounds
                lset_size = len(np.unique(lwalk))
                has_t = bool((lwalk == t).any())
                if has_t:
                    stop = int(np.argmax(lwalk == t)) + 1
                    if len(np.unique(lwalk[:stop])) == stop:
                        produced = _emit_rows(
                            np.arange(lo, hi, dtype=np.int64), lwalk, stop, False
                        )
                elif lset_size == lw:
                    seg = np.arange(lo, hi, dtype=np.int64)
                    stamp[lwalk] = True
                    seg_tails = tails[lo:hi]
                    hit = stamp[seg_tails]
                    hit &= np.arange(rw - 1) <= t_pos[lo:hi, None]
                    valid = tail_ok[lo:hi] & ~hit.any(axis=1)
                    stamp[lwalk] = False
                    produced = _emit_rows(seg[valid], lwalk, lw, True)
            if produced == 0:
                invalid_left += 1
            else:
                emitted += produced
        emitter.flush()
    except EnumerationTimeout:
        emitter.flush()
        raise
    finally:
        stats.invalid_partial_results += invalid_left
    stats.invalid_partial_results += right_count - int(used.sum())
    stats.results_emitted += emitted
    return emitted


# --------------------------------------------------------------------- #
# DFS (IDX-DFS, Algorithm 4) — vectorised tier
# --------------------------------------------------------------------- #
def _expand_subtree(
    c, B, prefix, nbr, indptr, off, vertex_of, on_path, t_row, t, deadline=None
):
    """Expand the whole depth-``B`` subtree rooted at row ``c`` with array ops.

    ``prefix`` is the current path *including* ``c``'s vertex.  Every level
    of the subtree is one ragged gather + mask over the full frontier.  DFS
    emission order is recovered *without sorting*: each level is built
    parent-major / adjacency-minor (``repeat`` and boolean masks preserve
    order), and ``t`` is always the first candidate of any row (the index
    sorts each row's neighbours by distance-to-t, and only ``t`` is at
    distance 0), so a node's own emission precedes all of its child
    subtrees — per-level prefix sums over each subtree's emission count
    then give every emission its exact slot.

    Returns ``(count, data, lens, edges, partial, invalid, found, work)``.
    The counter deltas are NOT committed to any stats object — the caller
    discards them and replays the subtree in scalar form when the block
    would cross the collector's result limit.
    """
    length = len(prefix)
    on_path[c] = True
    edges = 0
    partial = 0
    invalid = 0
    work = 0
    nodes = np.asarray([c], dtype=np.int64)
    # Ancestor rows / path vertices of each frontier node, one contiguous
    # 1-D array per chain position (cheaper to gather than matrix rows).
    anc_cols: List[np.ndarray] = []
    vert_cols: List[np.ndarray] = []
    level_n = [1]
    level_verts: List[List[np.ndarray]] = [[]]
    level_par: List[Optional[np.ndarray]] = [None]
    level_tmask: List[np.ndarray] = []

    for d in range(B):
        n = len(nodes)
        widths = off[nodes, B - d]
        total = int(widths.sum())
        edges += total
        work += total
        if deadline is not None:
            # Interruption discards this subtree's pending emissions and
            # local counters — the driver flushes completed blocks and the
            # emitted paths stay an exact prefix of the full enumeration.
            deadline.check_every(total)
        if total == 0:
            level_tmask.append(np.zeros(n, dtype=bool))
            level_par.append(np.empty(0, dtype=np.int64))
            nodes = np.empty(0, dtype=np.int64)
            anc_cols = [np.empty(0, dtype=np.int64)] * (d + 1)
            vert_cols = [np.empty(0, dtype=np.int64)] * (d + 1)
            level_n.append(0)
            level_verts.append(vert_cols)
            continue
        starts = indptr[nodes]
        cumw = np.cumsum(widths)
        gather = np.repeat(starts - (cumw - widths), widths) + np.arange(
            total, dtype=np.int64
        )
        cands = nbr[gather]
        grp = np.repeat(np.arange(n, dtype=np.int64), widths)
        valid = ~on_path[cands]
        for col in anc_cols:
            valid &= cands != col[grp]
        partial += int(valid.sum())
        is_t = valid & (cands == t_row)
        tmask = np.zeros(n, dtype=bool)
        tmask[grp[is_t]] = True
        level_tmask.append(tmask)
        desc = valid & (cands != t_row)
        child_nodes = cands[desc]
        child_par = grp[desc]
        anc_cols = [col[child_par] for col in anc_cols]
        anc_cols.append(child_nodes)
        vert_cols = [col[child_par] for col in vert_cols]
        vert_cols.append(vertex_of[child_nodes])
        nodes = child_nodes
        level_n.append(len(child_nodes))
        level_verts.append(vert_cols)
        level_par.append(child_par)
    on_path[c] = False

    # Depth-B frontier: budget-0 nodes whose sole candidate is t (a non-t
    # candidate under budget 1 is at distance exactly 1 from t, and its
    # edge to t survives the index filter) — one emission each.
    bottom = level_n[B]
    edges += bottom
    partial += bottom
    work += bottom

    # Bottom-up emission counts per subtree; an interior node with nothing
    # below it is one invalid partial (the root c is charged by the caller).
    emit_below: List[Optional[np.ndarray]] = [None] * (B + 1)
    emit_below[B] = np.ones(bottom, dtype=np.int64)
    for d in range(B - 1, -1, -1):
        par = level_par[d + 1]
        if len(par):
            seg = np.bincount(
                par, weights=emit_below[d + 1], minlength=level_n[d]
            ).astype(np.int64)
        else:
            seg = np.zeros(level_n[d], dtype=np.int64)
        eb = level_tmask[d].astype(np.int64) + seg
        if d:
            invalid += int((eb == 0).sum())
        emit_below[d] = eb
    found = int(emit_below[0][0])
    if found == 0:
        return 0, None, None, edges, partial, invalid, 0, work

    # Top-down slot offsets: a node's own t-emission sits at its offset,
    # its children's subtrees follow in adjacency order.
    offs: List[Optional[np.ndarray]] = [None] * (B + 1)
    offs[0] = np.zeros(1, dtype=np.int64)
    for d in range(B):
        nchild = level_n[d + 1]
        if nchild == 0:
            offs[d + 1] = np.zeros(0, dtype=np.int64)
            continue
        par = level_par[d + 1]
        counts = np.bincount(par, minlength=level_n[d])
        eb_child = emit_below[d + 1]
        exclusive = np.cumsum(eb_child) - eb_child
        seg_starts = np.minimum(np.cumsum(counts) - counts, nchild - 1)
        base = np.repeat(offs[d] + level_tmask[d], counts)
        offs[d + 1] = base + exclusive - np.repeat(exclusive[seg_starts], counts)

    lens = np.empty(found, dtype=np.int64)
    for d in range(B):
        tm = level_tmask[d]
        if tm.any():
            lens[offs[d][tm]] = length + d + 1
    if bottom:
        lens[offs[B]] = length + B + 1
    bounds = np.cumsum(lens)
    starts = bounds - lens
    data = np.empty(int(bounds[-1]), dtype=np.int64)
    for i in range(length):
        data[starts + i] = prefix[i]
    for d in range(1, B):
        tm = level_tmask[d]
        if tm.any():
            rows = starts[offs[d][tm]]
            for b, col in enumerate(level_verts[d]):
                data[rows + length + b] = col[tm]
    if bottom:
        rows = starts[offs[B]]
        for b, col in enumerate(level_verts[B]):
            data[rows + length + b] = col
    data[bounds - 1] = t
    return found, data, lens, edges, partial, invalid, found, work


def _scalar_subtree(
    c, B, path, nbr, indptr, off, vertex_of, on_path, t_row, t, emit, deadline, acc
):
    """Scalar expansion of one subtree with recursive-exact charging.

    Two uses: the *replay* of a subtree whose bulk block would cross the
    result limit (``emit`` = ``collector.emit``, so the per-candidate
    emission and counter order matches the recursive engine step for step
    and the limit raise lands on exactly the same search-tree point), and
    the fast path for *small* subtrees where per-level array ops would cost
    more than a plain loop (``emit`` = the emitter's scalar queue).
    ``path`` includes ``c``'s vertex; ``acc`` is the caller's
    ``[edges, partial, invalid, ticks]`` accumulator.  Returns the number
    of results found below ``c``.
    """
    check = deadline is not None
    width = int(off[c, B])
    acc[0] += width
    base = int(indptr[c])
    found = 0
    on_path[c] = True
    try:
        for i in range(base, base + width):
            child = int(nbr[i])
            if on_path[child]:
                continue
            acc[1] += 1
            if check:
                deadline.check_every(1)
            if child == t_row:
                emit(path + [t])
                found += 1
            elif B == 1:
                acc[0] += 1
                acc[1] += 1
                emit(path + [int(vertex_of[child]), t])
                found += 1
            else:
                path.append(int(vertex_of[child]))
                below = _scalar_subtree(
                    child, B - 1, path, nbr, indptr, off, vertex_of, on_path,
                    t_row, t, emit, deadline, acc,
                )
                path.pop()
                if below == 0:
                    acc[2] += 1
                else:
                    found += below
    finally:
        on_path[c] = False
    return found


def _run_dfs_vectorised(index, collector, *, deadline, stats):
    """Subtree-vectorised IDX-DFS (the numpy tier of the native engine)."""
    if index.is_empty:
        return 0
    query = index.query
    s, t, k = query.source, query.target, query.k
    if k == 1:
        return _run_dfs_trivial(index, collector, deadline=deadline, stats=stats)
    vertex_of, row_of, nbr, indptr, off = index.native_csr()
    t_row = int(row_of[t])
    s_row = int(row_of[s])
    on_path = np.zeros(len(vertex_of), dtype=bool)
    on_path[s_row] = True
    emitter = _BlockEmitter(collector)
    acc = [0, 0, 0, 0]  # edges, partial, invalid, ticks
    check = deadline is not None
    start_count = collector.count
    # Estimated candidate count of a depth-B subtree rooted at a node of
    # width w: w times the product of the per-column maximum widths the
    # deeper levels can see.  Used to cap bulk-expansion memory.
    colmax = off.max(axis=0)
    fan_products = np.ones(k + 2, dtype=np.float64)
    running = 1.0
    for b in range(1, k + 1):
        fan_products[b] = running
        running *= max(1.0, float(colmax[b]))

    def _node(c, B, path):
        """Expand the depth-``B`` subtree at row ``c`` (``path`` includes
        ``c``'s vertex); returns the number of results found below ``c``.

        Three regimes: small fan goes scalar (array-op overhead would
        dominate), bounded fan bulk-expands the whole subtree in array
        form, unbounded fan splits — one scalar level here, recursing a
        level deeper until the estimate fits.  A bulk block that would
        cross the result limit is replayed in scalar form against the
        collector so the limit raise lands on the exact path.
        """
        w = int(off[c, B])
        if w < _SCALAR_WIDTH and B <= _SCALAR_DEPTH:
            return _scalar_subtree(
                c, B, path, nbr, indptr, off, vertex_of, on_path, t_row, t,
                emitter.emit_path, deadline, acc,
            )
        if B == 1 or w * fan_products[B] <= _EXPAND_CAP:
            count, data, lens, d_edges, d_partial, d_invalid, found, work = (
                _expand_subtree(
                    c, B, np.asarray(path, dtype=np.int64), nbr, indptr, off,
                    vertex_of, on_path, t_row, t, deadline,
                )
            )
            if emitter.room_for(count):
                acc[0] += d_edges
                acc[1] += d_partial
                acc[2] += d_invalid
                if count:
                    emitter.append(data, lens)
                if check:
                    acc[3] += work
                    if acc[3] >= NATIVE_CHECK_TICKS:
                        deadline.check_every(acc[3])
                        acc[3] = 0
                return found
            emitter.flush()
            found = _scalar_subtree(
                c, B, path, nbr, indptr, off, vertex_of, on_path, t_row, t,
                collector.emit, deadline, acc,
            )
            emitter.refresh()
            return found
        # Split: walk this node's candidates in scalar form, one subtree
        # per child (charging exactly like the recursive engine's step).
        acc[0] += w
        base = int(indptr[c])
        found = 0
        on_path[c] = True
        try:
            for i in range(base, base + w):
                child = int(nbr[i])
                if on_path[child]:
                    continue
                acc[1] += 1
                if check:
                    acc[3] += 1
                    if acc[3] >= NATIVE_CHECK_TICKS:
                        deadline.check_every(acc[3])
                        acc[3] = 0
                if child == t_row:
                    emitter.emit_path(path + [t])
                    found += 1
                    continue
                path.append(int(vertex_of[child]))
                below = _node(child, B - 1, path)
                path.pop()
                if below == 0:
                    acc[2] += 1
                else:
                    found += below
        finally:
            on_path[c] = False
        return found

    try:
        # The root is never charged invalid, so the return value is dropped.
        _node(s_row, k - 1, [s])
        emitter.flush()
    except EnumerationTimeout:
        emitter.flush()
        raise
    finally:
        stats.edges_accessed += acc[0]
        stats.partial_results_generated += acc[1]
        stats.invalid_partial_results += acc[2]
    emitted = collector.count - start_count
    stats.results_emitted += emitted
    return emitted


# --------------------------------------------------------------------- #
# DFS — resumable JIT core
# --------------------------------------------------------------------- #
# State-vector slots of the resumable core.  Everything the scalar DFS
# needs to suspend mid-search lives in one int64 array so the compiled
# function stays a pure array-in/array-out kernel.
_ST_DEPTH = 0
_ST_ROW = 1
_ST_CUR = 2
_ST_END = 3
_ST_FOUND = 4
_ST_BUDGET = 5
_ST_EDGES = 6
_ST_PARTIAL = 7
_ST_INVALID = 8
_ST_TICKS = 9
_ST_OUT_LEN = 10
_ST_OUT_PATHS = 11
_ST_PATH_LEN = 12
_ST_INLINE = 13
_ST_I_CHILD = 14
_ST_I_CUR = 15
_ST_I_END = 16
_ST_I_FOUND = 17

_STATE_SLOTS = 18


def _dfs_fill(
    nbr,
    indptr,
    off,
    stride,
    vertex_of,
    t_row,
    t_vertex,
    k,
    on_path,
    stack_row,
    stack_cur,
    stack_end,
    stack_found,
    path_verts,
    state,
    out_data,
    out_bounds,
    max_paths,
    max_ticks,
):
    """Resumable scalar IDX-DFS core (nopython-compatible).

    Mirrors the iterative kernel's generic loop (including the budget-1
    inline scan) but fills preallocated ``out_data`` / ``out_bounds``
    arrays instead of calling into the collector, and *returns a status
    code* instead of raising:

    * ``DFS_DONE`` — search exhausted;
    * ``DFS_OUT_FULL`` — output block full (``max_paths`` reached or data
      array nearly full).  The suspension happens either *before* any
      counter of the next candidate is charged or *immediately after* the
      emission that hit ``max_paths``, so the driver's flush lands the
      limit raise on exactly the same search-tree step as the recursive
      engine;
    * ``DFS_TICKS`` — ``max_ticks`` candidates expanded since the last
      poll; the driver flushes the block, charges the ticks against the
      deadline and resumes.

    All search state lives in the ``state`` vector (see the ``_ST_*``
    slots), so the function is trivially resumable and compiles cleanly
    with ``numba.njit``.
    """
    depth = state[_ST_DEPTH]
    row = state[_ST_ROW]
    cur = state[_ST_CUR]
    end = state[_ST_END]
    found = state[_ST_FOUND]
    budget_col = state[_ST_BUDGET]
    edges = state[_ST_EDGES]
    partial = state[_ST_PARTIAL]
    invalid = state[_ST_INVALID]
    ticks = state[_ST_TICKS]
    path_len = state[_ST_PATH_LEN]
    in_inline = state[_ST_INLINE]
    i_child = state[_ST_I_CHILD]
    i_cur = state[_ST_I_CUR]
    i_end = state[_ST_I_END]
    i_found = state[_ST_I_FOUND]
    out_len = 0
    out_paths = 0
    data_cap = out_data.shape[0]
    status = DFS_DONE
    while True:
        if in_inline == 1:
            v_child = vertex_of[i_child]
            while i_cur < i_end:
                if out_len + path_len + 3 > data_cap:
                    status = DFS_OUT_FULL
                    break
                if ticks >= max_ticks:
                    status = DFS_TICKS
                    break
                cc = nbr[i_cur]
                i_cur += 1
                if on_path[cc] != 0:
                    continue
                partial += 1
                ticks += 1
                for j in range(path_len):
                    out_data[out_len + j] = path_verts[j]
                out_len += path_len
                out_data[out_len] = v_child
                out_len += 1
                if cc != t_row:
                    edges += 1
                    partial += 1
                    out_data[out_len] = vertex_of[cc]
                    out_len += 1
                out_data[out_len] = t_vertex
                out_len += 1
                out_bounds[out_paths] = out_len
                out_paths += 1
                i_found += 1
                if out_paths >= max_paths:
                    status = DFS_OUT_FULL
                    break
            if status != DFS_DONE:
                break
            if i_found == 0 and not (depth == 0 and k == 2):
                invalid += 1
            found += i_found
            in_inline = 0
            if depth == 0 and k == 2:
                break
            continue
        if cur < end:
            if out_len + path_len + 3 > data_cap:
                status = DFS_OUT_FULL
                break
            if ticks >= max_ticks:
                status = DFS_TICKS
                break
            child = nbr[cur]
            cur += 1
            if on_path[child] != 0:
                continue
            partial += 1
            ticks += 1
            if child == t_row:
                for j in range(path_len):
                    out_data[out_len + j] = path_verts[j]
                out_len += path_len
                out_data[out_len] = t_vertex
                out_len += 1
                out_bounds[out_paths] = out_len
                out_paths += 1
                found += 1
                if out_paths >= max_paths:
                    status = DFS_OUT_FULL
                    break
                continue
            if budget_col == 1:
                i_child = child
                i_cur = indptr[child]
                i_end = i_cur + off[child * stride + 1]
                edges += i_end - i_cur
                i_found = 0
                in_inline = 1
                continue
            stack_row[depth] = row
            stack_cur[depth] = cur
            stack_end[depth] = end
            stack_found[depth] = found
            depth += 1
            path_verts[path_len] = vertex_of[child]
            path_len += 1
            on_path[child] = 1
            row = child
            cur = indptr[child]
            end = cur + off[child * stride + budget_col]
            budget_col -= 1
            edges += end - cur
            found = 0
        else:
            if depth == 0:
                break
            depth -= 1
            budget_col += 1
            on_path[row] = 0
            path_len -= 1
            row = stack_row[depth]
            cur = stack_cur[depth]
            end = stack_end[depth]
            if found == 0:
                invalid += 1
                found = stack_found[depth]
            else:
                found += stack_found[depth]
    state[_ST_DEPTH] = depth
    state[_ST_ROW] = row
    state[_ST_CUR] = cur
    state[_ST_END] = end
    state[_ST_FOUND] = found
    state[_ST_BUDGET] = budget_col
    state[_ST_EDGES] = edges
    state[_ST_PARTIAL] = partial
    state[_ST_INVALID] = invalid
    state[_ST_TICKS] = ticks
    state[_ST_OUT_LEN] = out_len
    state[_ST_OUT_PATHS] = out_paths
    state[_ST_PATH_LEN] = path_len
    state[_ST_INLINE] = in_inline
    state[_ST_I_CHILD] = i_child
    state[_ST_I_CUR] = i_cur
    state[_ST_I_END] = i_end
    state[_ST_I_FOUND] = i_found
    return status


_FILLER = {"fn": None}


def _get_jit_filler():
    """The resumable DFS core, compiled when the toolchain allows."""
    if _FILLER["fn"] is None:
        fn = _dfs_fill
        if jit_ready():
            import numba

            fn = numba.njit(cache=True)(_dfs_fill)
        _FILLER["fn"] = fn
    return _FILLER["fn"]


def _run_dfs_fill_loop(index, collector, *, deadline, stats, filler):
    """Drive the resumable DFS core: fill a block, flush, poll, resume.

    ``filler`` is either the compiled core or — in tests and on the
    fallback path — the uncompiled :func:`_dfs_fill`, which executes the
    identical logic in plain Python.
    """
    if index.is_empty:
        return 0
    query = index.query
    s, t, k = query.source, query.target, query.k
    vertex_of, row_of, nbr, indptr, off2 = index.native_csr()
    off = off2.ravel()
    if k == 1:
        return _run_dfs_trivial(index, collector, deadline=deadline, stats=stats)
    stride = k + 1
    s_row = int(row_of[s])
    on_path = np.zeros(len(vertex_of), dtype=np.uint8)
    on_path[s_row] = 1
    stack_row = np.zeros(k + 2, dtype=np.int64)
    stack_cur = np.zeros(k + 2, dtype=np.int64)
    stack_end = np.zeros(k + 2, dtype=np.int64)
    stack_found = np.zeros(k + 2, dtype=np.int64)
    path_verts = np.zeros(k + 2, dtype=np.int64)
    state = np.zeros(_STATE_SLOTS, dtype=np.int64)
    data_cap = max(NATIVE_FLUSH_PATHS * 4, (k + 4) * 4)
    out_data = np.empty(data_cap, dtype=np.int64)
    out_bounds = np.empty(NATIVE_FLUSH_PATHS, dtype=np.int64)
    if k == 2:
        # The whole search is the root's inline scan over column 1.
        state[_ST_INLINE] = 1
        state[_ST_I_CHILD] = s_row
        state[_ST_I_CUR] = int(indptr[s_row])
        state[_ST_I_END] = state[_ST_I_CUR] + int(off[s_row * stride + 1])
        state[_ST_EDGES] = state[_ST_I_END] - state[_ST_I_CUR]
    else:
        path_verts[0] = s
        state[_ST_PATH_LEN] = 1
        state[_ST_ROW] = s_row
        state[_ST_CUR] = int(indptr[s_row])
        state[_ST_END] = state[_ST_CUR] + int(off[s_row * stride + (k - 1)])
        state[_ST_EDGES] = state[_ST_END] - state[_ST_CUR]
        state[_ST_BUDGET] = k - 2
    t_row = int(row_of[t])
    check = deadline is not None
    max_ticks = NATIVE_CHECK_TICKS if check else 2**62
    start_count = collector.count
    try:
        while True:
            cap = collector.remaining_before_flush()
            max_paths = (
                NATIVE_FLUSH_PATHS if cap is None else min(NATIVE_FLUSH_PATHS, cap)
            )
            status = filler(
                nbr, indptr, off, stride, vertex_of, t_row, t, k,
                on_path, stack_row, stack_cur, stack_end, stack_found,
                path_verts, state, out_data, out_bounds, max_paths, max_ticks,
            )
            out_len = int(state[_ST_OUT_LEN])
            out_paths = int(state[_ST_OUT_PATHS])
            if out_paths:
                collector.emit_array_block(
                    out_data[:out_len].copy(), out_bounds[:out_paths].copy()
                )
            if status == DFS_TICKS:
                deadline.check_every(int(state[_ST_TICKS]))
                state[_ST_TICKS] = 0
            elif status == DFS_DONE:
                break
    finally:
        stats.edges_accessed += int(state[_ST_EDGES])
        stats.partial_results_generated += int(state[_ST_PARTIAL])
        stats.invalid_partial_results += int(state[_ST_INVALID])
    emitted = collector.count - start_count
    stats.results_emitted += emitted
    return emitted


def _run_dfs_trivial(index, collector, *, deadline, stats):
    """The ``k == 1`` search: the root scans column 0 (t or nothing)."""
    query = index.query
    s, t = query.source, query.target
    vertex_of, row_of, nbr, indptr, off = index.native_csr()
    s_row = int(row_of[s])
    t_row = int(row_of[t])
    cur = int(indptr[s_row])
    end = cur + int(off[s_row, 0])
    stats.edges_accessed += end - cur
    emitted = 0
    for i in range(cur, end):
        stats.partial_results_generated += 1
        if deadline is not None:
            deadline.check_every(1)
        if int(nbr[i]) == t_row:
            collector.emit((s, t))
            emitted += 1
    stats.results_emitted += emitted
    return emitted


def run_dfs_native(
    index: LightWeightIndex,
    collector: ResultCollector,
    *,
    deadline: Optional[Deadline] = None,
    stats: Optional[EnumerationStats] = None,
) -> int:
    """Array-native IDX-DFS (Algorithm 4) over the index's numpy buffers.

    Byte-identical to :func:`repro.core.dfs.run_idx_dfs` and the iterative
    kernel: same paths, same order, same statistics counters, same limit
    and deadline interruption points.  Dispatches to the compiled resumable
    core when Numba is importable and to the vectorised subtree expander
    otherwise.

    Returns the number of paths emitted.
    """
    stats = stats if stats is not None else EnumerationStats()
    if index.is_empty:
        return 0
    if index.query.k == 1:
        return _run_dfs_trivial(index, collector, deadline=deadline, stats=stats)
    if jit_ready():
        return _run_dfs_fill_loop(
            index, collector, deadline=deadline, stats=stats, filler=_get_jit_filler()
        )
    return _run_dfs_vectorised(index, collector, deadline=deadline, stats=stats)


def warmup() -> bool:
    """Compile (and disk-cache) the JIT core on a tiny throwaway query.

    No-op without Numba.  Serving setups call this once at start-up so the
    first native query does not pay the compilation latency.  Returns
    ``True`` when the compiled tier is ready afterwards.
    """
    if not jit_ready():
        return False
    from repro.core.query import Query
    from repro.graph.generators import complete_graph

    graph = complete_graph(4)
    query = Query(0, 3, 3)
    index = LightWeightIndex.build(graph, query)
    collector = ResultCollector(store_paths=False)
    run_dfs_native(index, collector, stats=EnumerationStats())
    return True
