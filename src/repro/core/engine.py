"""The PathEnum engine and its fixed-plan variants (Figure 2).

Three public algorithms are defined here:

* :class:`IdxDfs` — always evaluates with the index DFS (Algorithm 4); the
  paper's IDX-DFS.
* :class:`IdxJoin` — always runs the full-fledged optimizer and evaluates
  with the bushy join (Algorithms 5 and 6); the paper's IDX-JOIN.
* :class:`PathEnum` — the complete system: light-weight index, preliminary
  estimation, optional full optimization and cost-based selection between
  the two evaluation strategies.

All three accept the uniform :class:`~repro.core.listener.RunConfig` and can
therefore be driven by the same benchmark harness as the baselines.
"""

from __future__ import annotations

import time
from typing import Hashable, List, Optional, Tuple

from repro.core.algorithm import Algorithm, timed_run
from repro.core.constraints import PathConstraint
from repro.core.dfs import run_idx_dfs
from repro.core.index import LightWeightIndex
from repro.core.join import run_idx_join
from repro.core.listener import RunConfig
from repro.core.optimizer import DEFAULT_TAU, Plan, choose_plan
from repro.core.query import Query
from repro.core.result import Phase, QueryResult
from repro.graph.digraph import DiGraph

__all__ = ["PathEnum", "IdxDfs", "IdxJoin", "enumerate_paths", "count_paths"]


class _IndexedAlgorithm(Algorithm):
    """Shared machinery of the three index-based algorithms."""

    #: Plan forcing: ``None`` (cost-based), ``"dfs"`` or ``"join"``.
    _force: Optional[str] = None

    def run(self, graph: DiGraph, query: Query, config: Optional[RunConfig] = None) -> QueryResult:
        config = config if config is not None else RunConfig()
        constraint = config.constraint
        if constraint is not None and not isinstance(constraint, PathConstraint):
            raise TypeError("config.constraint must be a PathConstraint instance")

        def body(collector, deadline, stats) -> None:
            edge_filter = constraint.edge_filter() if constraint is not None else None
            index = LightWeightIndex.build(
                graph, query, edge_filter=edge_filter, deadline=deadline, stats=stats
            )
            plan = choose_plan(
                index, tau=config.tau, deadline=deadline, stats=stats, force=self._force
            )
            stats.plan = plan.kind
            # The enumeration phase is recorded in a ``finally`` block so that
            # queries interrupted by the deadline or a result limit still
            # report how long they enumerated (Figure 7 / Figure 17 depend on
            # this for timed-out queries).
            enumeration_started = time.perf_counter()
            if plan.kind == "join":
                cut = plan.cut_position if plan.cut_position is not None else max(1, query.k // 2)
                try:
                    run_idx_join(
                        index,
                        cut,
                        collector,
                        deadline=deadline,
                        stats=stats,
                        constraint=constraint,
                    )
                finally:
                    stats.add_phase(Phase.JOIN, time.perf_counter() - enumeration_started)
            else:
                try:
                    run_idx_dfs(
                        index,
                        collector,
                        deadline=deadline,
                        stats=stats,
                        constraint=constraint,
                    )
                finally:
                    stats.add_phase(
                        Phase.ENUMERATION, time.perf_counter() - enumeration_started
                    )

        return timed_run(self.name, query, config, body)

    # ------------------------------------------------------------------ #
    # convenience entry points accepting external ids
    # ------------------------------------------------------------------ #
    def run_external(
        self,
        graph: DiGraph,
        source: Hashable,
        target: Hashable,
        k: int,
        config: Optional[RunConfig] = None,
    ) -> QueryResult:
        """Evaluate a query given external vertex ids."""
        query = Query.from_external(graph, source, target, k)
        return self.run(graph, query, config)


class IdxDfs(_IndexedAlgorithm):
    """Index-based depth-first search (the paper's IDX-DFS)."""

    name = "IDX-DFS"
    _force = "dfs"


class IdxJoin(_IndexedAlgorithm):
    """Index-based bushy join (the paper's IDX-JOIN)."""

    name = "IDX-JOIN"
    _force = "join"


class PathEnum(_IndexedAlgorithm):
    """The full PathEnum system with cost-based plan selection."""

    name = "PathEnum"
    _force = None

    def __init__(self, *, tau: float = DEFAULT_TAU) -> None:
        self._tau = tau

    def run(self, graph: DiGraph, query: Query, config: Optional[RunConfig] = None) -> QueryResult:
        config = config if config is not None else RunConfig()
        if config.tau == DEFAULT_TAU and self._tau != DEFAULT_TAU:
            config = config.replace(tau=self._tau)
        return super().run(graph, query, config)

    def explain(self, graph: DiGraph, query: Query, *, tau: Optional[float] = None) -> Plan:
        """Return the plan PathEnum would choose for ``query`` without running it."""
        index = LightWeightIndex.build(graph, query)
        return choose_plan(index, tau=self._tau if tau is None else tau)


# --------------------------------------------------------------------- #
# module-level convenience functions (the quickstart API)
# --------------------------------------------------------------------- #
def enumerate_paths(
    graph: DiGraph,
    source: Hashable,
    target: Hashable,
    k: int,
    *,
    external_ids: bool = False,
    constraint: Optional[PathConstraint] = None,
    result_limit: Optional[int] = None,
    time_limit_seconds: Optional[float] = None,
) -> List[Tuple[int, ...]]:
    """Enumerate all hop-constrained s-t paths with PathEnum.

    This is the one-call API used by the examples: it builds the query (from
    external ids when requested), runs the full PathEnum pipeline and returns
    the list of paths (as internal-id tuples, or external ids when
    ``external_ids`` is set).
    """
    engine = PathEnum()
    query = (
        Query.from_external(graph, source, target, k)
        if external_ids
        else Query(int(source), int(target), k)
    )
    config = RunConfig(
        store_paths=True,
        constraint=constraint,
        result_limit=result_limit,
        time_limit_seconds=time_limit_seconds,
    )
    result = engine.run(graph, query, config)
    paths = result.paths or []
    if external_ids:
        return [graph.translate_path(p) for p in paths]
    return paths


def count_paths(
    graph: DiGraph,
    source: Hashable,
    target: Hashable,
    k: int,
    *,
    external_ids: bool = False,
    time_limit_seconds: Optional[float] = None,
) -> int:
    """Count hop-constrained s-t paths without materialising them."""
    engine = PathEnum()
    query = (
        Query.from_external(graph, source, target, k)
        if external_ids
        else Query(int(source), int(target), k)
    )
    config = RunConfig(store_paths=False, time_limit_seconds=time_limit_seconds)
    return engine.run(graph, query, config).count
