"""The PathEnum engine, its fixed-plan variants (Figure 2) and the batch layer.

Three single-query algorithms are defined here:

* :class:`IdxDfs` — always evaluates with the index DFS (Algorithm 4); the
  paper's IDX-DFS.
* :class:`IdxJoin` — always runs the full-fledged optimizer and evaluates
  with the bushy join (Algorithms 5 and 6); the paper's IDX-JOIN.
* :class:`PathEnum` — the complete system: light-weight index, preliminary
  estimation, optional full optimization and cost-based selection between
  the two evaluation strategies.

All three accept the uniform :class:`~repro.core.listener.RunConfig` and can
therefore be driven by the same benchmark harness as the baselines.

On top of them sits the batch execution layer:

* :class:`QuerySession` — evaluates queries one by one against a single
  graph while caching reverse-BFS distance arrays keyed by
  ``(target, k, constraint)``.  The light-weight index of a query whose
  target was already visited is built from the cached distances, skipping
  roughly half of the per-query preprocessing (the reverse BFS of
  Algorithm 3).  The cached distances omit the ``no-intermediate-s``
  restriction, which only *under*-approximates ``v.t`` — the index becomes a
  superset of the per-query one, so the enumerated path sets are identical
  (pruning is a performance device, never a correctness device).
* :class:`BatchExecutor` — evaluates a whole
  :class:`~repro.workloads.queries.QueryWorkload` as a unit through a
  session, optionally fanning independent queries out over a thread pool,
  and reports aggregate :class:`BatchStats` (BFS cache hits, wall clock,
  throughput).
* :class:`ExecutorCore` — the shard-dispatch and pool-lifecycle machinery
  shared by every parallel execution mode: it partitions a workload by
  target, warms the distance cache, owns a persistent worker pool (threads
  or processes) and *streams* result chunks back to the consumer as workers
  produce them, instead of one blob per shard.  The process backend
  publishes the graph once into shared memory
  (:meth:`~repro.graph.digraph.DiGraph.share`) together with a read-mostly
  packed distance cache; chunks cross the process boundary over a
  multiprocessing queue drained by a router thread.
* :class:`ProcessBatchExecutor` — the process-parallel batch API, a thin
  wrapper over an :class:`ExecutorCore` with the process backend.  Because a
  shard holds *every* query of its targets, workers additionally grow all
  forward BFS trees of a target group in one multi-source sweep — per-query
  results stay identical to sequential session runs while both halves of
  the per-query preprocessing are amortised.  The streamed chunks are also
  what feeds ``RunConfig.on_result`` callbacks (replayed in the parent, in
  workload order) and the :mod:`repro.server` query service.
"""

from __future__ import annotations

import itertools
import queue as queue_module
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Dict, Hashable, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import multiprocessing
import os
import signal
import sys
from multiprocessing import shared_memory

import numpy as np

from repro.core.algorithm import Algorithm, timed_run
from repro.core.constraints import PathConstraint
from repro.core.dfs import run_idx_dfs
from repro.core.index import LightWeightIndex
from repro.core.join import run_idx_join
from repro.core.kernels import run_dfs_kernel, run_join_kernel
from repro.core.listener import ENGINE_CHOICES, RunConfig
from repro.core.native import (
    jit_ready,
    jit_required,
    run_dfs_native,
    run_join_native,
    warn_jit_fallback,
)
from repro.core.optimizer import DEFAULT_TAU, Plan, choose_plan
from repro.core.query import Query
from repro.core.result import Phase, QueryResult
from repro.core.reverse import IdxDfsReverse
from repro.errors import GraphError
from repro.graph.digraph import DiGraph
from repro.graph.store import SharedMemoryStore, StoreHandle, _open_untracked
from repro.graph.traversal import (
    DEFAULT_SOURCE_CHUNK,
    bfs_distances_bounded,
    multi_source_bfs_distances_bounded,
)
from repro.testing.faults import maybe_fail_task

__all__ = [
    "PathEnum",
    "IdxDfs",
    "IdxJoin",
    "QuerySession",
    "BatchExecutor",
    "ProcessBatchExecutor",
    "ExecutorCore",
    "StreamRun",
    "BatchResult",
    "BatchStats",
    "enumerate_paths",
    "count_paths",
    "is_distance_aware",
]


class _IndexedAlgorithm(Algorithm):
    """Shared machinery of the three index-based algorithms."""

    #: Plan forcing: ``None`` (cost-based), ``"dfs"`` or ``"join"``.
    _force: Optional[str] = None

    def run(
        self,
        graph: DiGraph,
        query: Query,
        config: Optional[RunConfig] = None,
        *,
        dist_to_t: Optional[np.ndarray] = None,
        dist_from_s: Optional[np.ndarray] = None,
        index: Optional[LightWeightIndex] = None,
    ) -> QueryResult:
        """Evaluate ``query`` on ``graph``.

        ``dist_to_t`` optionally injects a precomputed reverse-BFS distance
        array (the :class:`QuerySession` cache path); ``dist_from_s`` a
        precomputed forward array (the sharded executor's multi-source
        sweep); ``index`` a fully prebuilt light-weight index (the sharded
        executor's group-fused build).  Single-query callers leave all
        three unset.
        """
        config = config if config is not None else RunConfig()
        constraint = config.constraint
        if constraint is not None and not isinstance(constraint, PathConstraint):
            raise TypeError("config.constraint must be a PathConstraint instance")
        if config.engine not in ENGINE_CHOICES:
            raise ValueError(
                f"unknown engine {config.engine!r}: use one of {ENGINE_CHOICES}"
            )
        if config.engine == "kernel" and constraint is not None:
            raise ValueError(
                "the iterative kernels cannot evaluate constrained queries "
                "(per-level constraint state is recursive-only); use "
                "engine='auto' to fall back automatically"
            )
        # Constraint extensions (Appendix E) carry per-level state the flat
        # int frames cannot hold: constrained queries keep the recursive
        # engines.  Otherwise ``native`` takes the vectorised/compiled
        # engine (under ``REPRO_NATIVE=jit`` it demands the Numba toolchain
        # and falls back to ``kernel`` with one warning when absent), and
        # ``auto`` prefers ``native`` exactly when the JIT tier is ready —
        # so environments without Numba keep their kernel behaviour
        # unchanged.
        engine = config.engine
        if constraint is not None:
            engine = "recursive"
        elif engine == "native" and jit_required() and not jit_ready():
            warn_jit_fallback()
            engine = "kernel"
        elif engine == "auto":
            engine = "native" if jit_ready() else "kernel"
        prebuilt = index

        def body(collector, deadline, stats) -> None:
            if prebuilt is not None:
                index = prebuilt
                index.record_stats(stats)
            else:
                edge_filter = constraint.edge_filter() if constraint is not None else None
                index = LightWeightIndex.build(
                    graph,
                    query,
                    edge_filter=edge_filter,
                    deadline=deadline,
                    stats=stats,
                    dist_to_t=dist_to_t,
                    dist_from_s=dist_from_s,
                )
            plan = choose_plan(
                index, tau=config.tau, deadline=deadline, stats=stats, force=self._force
            )
            stats.plan = plan.kind
            # The enumeration phase is recorded in a ``finally`` block so that
            # queries interrupted by the deadline or a result limit still
            # report how long they enumerated (Figure 7 / Figure 17 depend on
            # this for timed-out queries).
            enumeration_started = time.perf_counter()
            if plan.kind == "join":
                cut = plan.cut_position if plan.cut_position is not None else max(1, query.k // 2)
                try:
                    if engine == "native":
                        run_join_native(
                            index, cut, collector, deadline=deadline, stats=stats
                        )
                    elif engine == "kernel":
                        run_join_kernel(
                            index, cut, collector, deadline=deadline, stats=stats
                        )
                    else:
                        run_idx_join(
                            index,
                            cut,
                            collector,
                            deadline=deadline,
                            stats=stats,
                            constraint=constraint,
                        )
                finally:
                    stats.add_phase(Phase.JOIN, time.perf_counter() - enumeration_started)
            else:
                try:
                    if engine == "native":
                        run_dfs_native(
                            index, collector, deadline=deadline, stats=stats
                        )
                    elif engine == "kernel":
                        run_dfs_kernel(
                            index, collector, deadline=deadline, stats=stats
                        )
                    else:
                        run_idx_dfs(
                            index,
                            collector,
                            deadline=deadline,
                            stats=stats,
                            constraint=constraint,
                        )
                finally:
                    stats.add_phase(
                        Phase.ENUMERATION, time.perf_counter() - enumeration_started
                    )

        return timed_run(self.name, query, config, body)

    # ------------------------------------------------------------------ #
    # convenience entry points accepting external ids
    # ------------------------------------------------------------------ #
    def run_external(
        self,
        graph: DiGraph,
        source: Hashable,
        target: Hashable,
        k: int,
        config: Optional[RunConfig] = None,
    ) -> QueryResult:
        """Evaluate a query given external vertex ids."""
        query = Query.from_external(graph, source, target, k)
        return self.run(graph, query, config)


class IdxDfs(_IndexedAlgorithm):
    """Index-based depth-first search (the paper's IDX-DFS)."""

    name = "IDX-DFS"
    _force = "dfs"


class IdxJoin(_IndexedAlgorithm):
    """Index-based bushy join (the paper's IDX-JOIN)."""

    name = "IDX-JOIN"
    _force = "join"


class PathEnum(_IndexedAlgorithm):
    """The full PathEnum system with cost-based plan selection."""

    name = "PathEnum"
    _force = None

    def __init__(self, *, tau: float = DEFAULT_TAU) -> None:
        self._tau = tau

    def run(
        self,
        graph: DiGraph,
        query: Query,
        config: Optional[RunConfig] = None,
        *,
        dist_to_t: Optional[np.ndarray] = None,
        dist_from_s: Optional[np.ndarray] = None,
        index: Optional[LightWeightIndex] = None,
    ) -> QueryResult:
        config = config if config is not None else RunConfig()
        if config.tau == DEFAULT_TAU and self._tau != DEFAULT_TAU:
            config = config.replace(tau=self._tau)
        return super().run(
            graph, query, config,
            dist_to_t=dist_to_t, dist_from_s=dist_from_s, index=index,
        )

    def explain(self, graph: DiGraph, query: Query, *, tau: Optional[float] = None) -> Plan:
        """Return the plan PathEnum would choose for ``query`` without running it."""
        index = LightWeightIndex.build(graph, query)
        return choose_plan(index, tau=self._tau if tau is None else tau)


#: Algorithms whose ``run`` accepts injected distance arrays and can
#: therefore share the session / batch distance cache.
_DISTANCE_AWARE = (_IndexedAlgorithm, IdxDfsReverse)


def is_distance_aware(algorithm: Algorithm) -> bool:
    """Whether ``algorithm`` shares the session / batch distance cache.

    Distance-aware algorithms accept injected reverse-BFS arrays, so their
    results carry meaningful ``bfs_cache_hit`` flags; baselines do not.
    """
    return isinstance(algorithm, _DISTANCE_AWARE)


# --------------------------------------------------------------------- #
# batch execution
# --------------------------------------------------------------------- #
@dataclass
class BatchStats:
    """Aggregate statistics of a batch / session run."""

    #: Queries evaluated so far.
    queries_run: int = 0
    #: Reverse BFS traversals actually performed (== distance-cache misses).
    reverse_bfs_runs: int = 0
    #: Queries whose index was built from a cached distance array.
    bfs_cache_hits: int = 0
    #: Wall-clock seconds of the last :meth:`BatchExecutor.run` call.
    wall_seconds: float = 0.0

    @property
    def bfs_cache_misses(self) -> int:
        """Distance-cache misses (alias of :attr:`reverse_bfs_runs`)."""
        return self.reverse_bfs_runs

    @property
    def hit_rate(self) -> float:
        """Fraction of queries served from the distance cache."""
        if self.queries_run == 0:
            return 0.0
        return self.bfs_cache_hits / self.queries_run

    def as_row(self) -> Dict[str, object]:
        """Flat dict for the benchmark reporting layer."""
        return {
            "queries": self.queries_run,
            "reverse_bfs_runs": self.reverse_bfs_runs,
            "bfs_cache_hits": self.bfs_cache_hits,
            "hit_rate": round(self.hit_rate, 3),
            "wall_ms": round(self.wall_seconds * 1e3, 3),
        }


#: Cache key of a reverse-BFS distance array: the target vertex, the hop
#: constraint and the identity of the (optional) constraint object whose
#: edge filter shaped the traversal.
_DistanceKey = Tuple[int, int, Optional[int]]


class QuerySession:
    """Evaluates queries on one graph, sharing reverse-BFS distance arrays.

    The session is the unit of distance reuse: all queries submitted through
    :meth:`run` share one cache keyed by ``(target, k, constraint)``.  For
    workloads that hammer a small set of targets (fraud rings around a hub
    account, Figure 13/14-style sweeps) this removes the reverse half of
    every repeated index build.

    Sessions are cheap; create one per logical workload.  ``max_cached``
    bounds the number of retained distance arrays (each is O(|V|)); the
    oldest entry is evicted first.
    """

    def __init__(
        self,
        graph: DiGraph,
        *,
        algorithm: Optional[Algorithm] = None,
        max_cached: int = 256,
    ) -> None:
        self.graph = graph
        self.algorithm = algorithm if algorithm is not None else PathEnum()
        self.stats = BatchStats()
        self._max_cached = max(1, int(max_cached))
        #: Cache entries retain the constraint object alongside the distance
        #: array: keys embed ``id(constraint)``, and holding the reference
        #: prevents a freed constraint's address from being recycled into a
        #: false hit for a different constraint.
        self._distances: Dict[_DistanceKey, Tuple[Optional[PathConstraint], np.ndarray]] = {}
        #: Guards the cache and the counters; the BFS itself and the query
        #: evaluation run outside the lock.
        self._lock = threading.Lock()

    # -- distance cache ------------------------------------------------ #
    def _key(self, query: Query, constraint: Optional[PathConstraint]) -> _DistanceKey:
        return (query.target, query.k, None if constraint is None else id(constraint))

    def distances_to_target(
        self, target: int, k: int, constraint: Optional[PathConstraint] = None
    ) -> np.ndarray:
        """The (cached) bounded reverse-BFS distance array towards ``target``.

        The traversal is *not* restricted around any particular source, so
        one array serves every query that shares ``(target, k, constraint)``;
        see the module docstring for why this relaxation preserves results.
        """
        key = (int(target), int(k), None if constraint is None else id(constraint))
        with self._lock:
            cached = self._distances.get(key)
        if cached is not None and cached[0] is constraint:
            return cached[1]
        edge_filter = constraint.edge_filter() if constraint is not None else None
        distances = bfs_distances_bounded(
            self.graph, int(target), cutoff=int(k), reverse=True, edge_filter=edge_filter
        )
        with self._lock:
            self.stats.reverse_bfs_runs += 1
            while len(self._distances) >= self._max_cached and self._distances:
                self._distances.pop(next(iter(self._distances)))
            self._distances[key] = (constraint, distances)
        return distances

    def ensure_capacity(self, num_keys: int) -> None:
        """Grow the cache bound so ``num_keys`` entries can coexist.

        :class:`BatchExecutor` calls this before warming a workload: the
        warm-once guarantee (every reverse BFS runs exactly once, and the
        parallel phase never mutates the cache) only holds when no entry is
        evicted between :meth:`prepare` and the last query of the batch.
        """
        with self._lock:
            if num_keys > self._max_cached:
                self._max_cached = int(num_keys)

    def prepare(self, queries: Iterable[Query], constraint=None) -> List[_DistanceKey]:
        """Warm the distance cache for ``queries``.

        Returns the keys whose reverse BFS was actually computed (cache
        misses).  Used by :class:`BatchExecutor` before fanning out to
        threads — the cache is read-only during parallel execution, and the
        returned keys let the executor charge each fresh BFS to the first
        query that needed it instead of counting every pool query as a hit.
        """
        fresh: List[_DistanceKey] = []
        for query in queries:
            key = self._key(query, constraint)
            with self._lock:
                known = key in self._distances
            if not known:
                fresh.append(key)
            self.distances_to_target(query.target, query.k, constraint)
        return fresh

    def seed_distances(self, distances: Mapping[Tuple[int, int], np.ndarray]) -> None:
        """Install precomputed unconstrained reverse-BFS arrays.

        The inverse of :meth:`export_distances`: ``distances`` maps
        ``(target, k)`` to the array :meth:`distances_to_target` would have
        computed, and seeded entries are not charged to
        :attr:`BatchStats.reverse_bfs_runs`.  Use it to hand a warmed cache
        to a fresh session — e.g. one built against a shared-memory graph in
        another process, seeded with zero-copy views of a cache pack whose
        BFS cost was already accounted elsewhere.
        """
        with self._lock:
            needed = len(self._distances) + len(distances)
            if needed > self._max_cached:
                self._max_cached = needed
            for (target, k), array in distances.items():
                self._distances[(int(target), int(k), None)] = (None, array)

    def export_distances(self) -> Dict[Tuple[int, int], np.ndarray]:
        """The unconstrained cache entries as ``{(target, k): distances}``.

        Constrained entries are keyed by constraint object identity, which
        is meaningless in another process, so only the shareable
        (constraint-free) part of the cache is exported.
        """
        with self._lock:
            return {
                (key[0], key[1]): value[1]
                for key, value in self._distances.items()
                if key[2] is None
            }

    def refresh_graph(
        self,
        graph: DiGraph,
        *,
        added: Sequence[Tuple[int, int]] = (),
        removed: Sequence[Tuple[int, int]] = (),
        repair_budget: Optional[int] = None,
    ) -> Dict[str, int]:
        """Swap the session onto a new graph epoch, repairing the cache.

        Unconstrained distance arrays are repaired incrementally from the
        update batch (:func:`repro.live.repair.repair_reverse_distances`)
        instead of being dropped; entries whose affected region exceeds
        ``repair_budget`` fall back to a full bounded BFS, and constrained
        entries (whose edge filters may consult mutated attributes) are
        invalidated outright.  Returns the per-entry counts.
        """
        from repro.live.repair import repair_reverse_distances

        counts = {"repaired": 0, "recomputed": 0, "invalidated": 0}
        with self._lock:
            self.graph = graph
            entries = list(self._distances.items())
            self._distances = {}
            for key, (constraint, array) in entries:
                if key[2] is not None:
                    counts["invalidated"] += 1
                    continue
                target, k = key[0], key[1]
                repaired_array, incremental = repair_reverse_distances(
                    graph,
                    array,
                    target,
                    cutoff=k,
                    added=added,
                    removed=removed,
                    budget=repair_budget,
                )
                counts["repaired" if incremental else "recomputed"] += 1
                self._distances[key] = (constraint, repaired_array)
        return counts

    # -- evaluation ---------------------------------------------------- #
    def run(self, query: Query, config: Optional[RunConfig] = None) -> QueryResult:
        """Evaluate one query through the session cache."""
        config = config if config is not None else RunConfig()
        if not isinstance(self.algorithm, _DISTANCE_AWARE):
            # Baselines have no index build to share; run them untouched.
            with self._lock:
                self.stats.queries_run += 1
            return self.algorithm.run(self.graph, query, config)
        key = self._key(query, config.constraint)
        with self._lock:
            self.stats.queries_run += 1
            hit = key in self._distances
            if hit:
                self.stats.bfs_cache_hits += 1
        distances = self.distances_to_target(query.target, query.k, config.constraint)
        result = self.algorithm.run(self.graph, query, config, dist_to_t=distances)
        # The index builder flags every injected distance array as a cache
        # hit; only the session knows whether this query actually paid for
        # the reverse BFS (first sight of its target) or skipped it.
        result.stats.bfs_cache_hit = hit
        return result

    def run_external(
        self, source: Hashable, target: Hashable, k: int,
        config: Optional[RunConfig] = None,
    ) -> QueryResult:
        """Evaluate a query given external vertex ids."""
        query = Query.from_external(self.graph, source, target, k)
        return self.run(query, config)


@dataclass
class BatchResult:
    """Outcome of evaluating a workload through :class:`BatchExecutor`."""

    #: Per-query results, in workload order.
    results: List[QueryResult] = field(default_factory=list)
    #: Aggregate session statistics for the batch.
    stats: BatchStats = field(default_factory=BatchStats)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    @property
    def total_paths(self) -> int:
        """Sum of per-query result counts."""
        return sum(result.count for result in self.results)

    @property
    def throughput(self) -> float:
        """Paths per second over the batch wall clock."""
        if self.stats.wall_seconds <= 0.0:
            return float(self.total_paths)
        return self.total_paths / self.stats.wall_seconds


class BatchExecutor:
    """Evaluates a :class:`QueryWorkload` as one unit.

    Queries sharing a ``(target, k, constraint)`` key reuse one reverse-BFS
    distance array through the underlying :class:`QuerySession`.  With
    ``max_workers > 1`` independent queries additionally run on a thread
    pool: the distance cache is warmed up front (sequentially, so each BFS
    runs exactly once) and is read-only afterwards, which keeps the parallel
    phase lock-free.  Results always come back in workload order and are
    identical, query for query, to sequential :meth:`Algorithm.run` calls.
    """

    def __init__(
        self,
        graph: DiGraph,
        *,
        algorithm: Optional[Algorithm] = None,
        max_workers: int = 1,
        max_cached: int = 256,
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self.graph = graph
        self.max_workers = int(max_workers)
        self.session = QuerySession(graph, algorithm=algorithm, max_cached=max_cached)

    @property
    def stats(self) -> BatchStats:
        """Aggregate statistics of everything run through this executor."""
        return self.session.stats

    def run(
        self,
        workload: Sequence[Query],
        config: Optional[RunConfig] = None,
    ) -> BatchResult:
        """Evaluate every query of ``workload`` and return the batch result."""
        config = config if config is not None else RunConfig()
        queries = list(workload)
        # One cache slot per distinct key, so nothing is evicted mid-batch
        # (the warm-once guarantee of the parallel phase depends on it).
        distinct = {self.session._key(query, config.constraint) for query in queries}
        self.session.ensure_capacity(len(distinct))
        started = time.perf_counter()
        if self.max_workers > 1 and len(queries) > 1:
            fresh = set(self.session.prepare(queries, config.constraint))
            pool = ThreadPoolExecutor(max_workers=self.max_workers)
            try:
                futures = [
                    pool.submit(self.session.run, query, config) for query in queries
                ]
                # A failing query must not leave queued work running (or the
                # caller blocked on a half-consumed pool): the shutdown in
                # the finally cancels everything outstanding, and the
                # worker's exception re-raises with its original traceback
                # preserved by the futures machinery.
                results = [future.result() for future in futures]
            finally:
                pool.shutdown(wait=True, cancel_futures=True)
            # Pre-warming makes every pool query look like a cache hit;
            # charge each fresh BFS back to the first query that needed it
            # so hit counts match what a sequential run would report.
            charged = _charge_fresh_to_first_query(
                queries, results, fresh,
                lambda query: self.session._key(query, config.constraint),
            )
            self.stats.bfs_cache_hits -= charged
        else:
            results = [self.session.run(query, config) for query in queries]
        self.stats.wall_seconds = time.perf_counter() - started
        # Snapshot: the session keeps accumulating across run() calls, and a
        # returned BatchResult must not change under a later batch.
        return BatchResult(results=results, stats=replace(self.stats))


def _charge_fresh_to_first_query(
    queries: Sequence[Query],
    results: Sequence[QueryResult],
    fresh: set,
    key_of,
) -> int:
    """Charge each freshly computed distance key to its first query.

    Pre-warming makes every query of a batch look like a cache hit; this
    flags, in workload order, the first query of each ``fresh`` key as the
    one that paid for the reverse BFS (``bfs_cache_hit = False``) and every
    other query as served from the cache — exactly the flags a sequential
    session run would report.  Returns the number of queries charged.
    """
    charged: set = set()
    for query, result in zip(queries, results):
        key = key_of(query)
        paid = key in fresh and key not in charged
        if paid:
            charged.add(key)
        result.stats.bfs_cache_hit = not paid
    return len(charged)


# --------------------------------------------------------------------- #
# process-parallel sharded execution: worker side
# --------------------------------------------------------------------- #
#: Per-worker-process state installed by :func:`_process_worker_init` and
#: reused across every shard the worker evaluates.  ``ProcessPoolExecutor``
#: runs the initializer exactly once per worker, so the shared graph is
#: attached once per process, not once per shard.
_WORKER_STATE: Dict[str, object] = {}


def _reset_inherited_signal_state() -> None:
    """Detach a forked worker from the parent's signal plumbing.

    A fork taken while an asyncio loop is serving (``repro serve``) inherits
    two dangerous pieces of state: the loop's *signal wakeup fd* — which is
    the write end of a socketpair **shared with the parent** — and the
    Python-level handlers ``loop.add_signal_handler`` installed.  Left in
    place, any signal delivered to the worker (e.g. the SIGTERM that
    ``concurrent.futures`` sends surviving workers while cleaning up a
    broken pool) is echoed into the parent's self-pipe, and the parent's
    loop misreads it as a signal *to the parent* — a crashing worker then
    triggers a spurious clean shutdown of the whole server.  The inherited
    no-op SIGTERM handler also makes the worker ignore pool termination.
    Both resets are best-effort: restricted environments may refuse them.
    """
    try:
        signal.set_wakeup_fd(-1)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, signal.SIG_DFL)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass


def _process_worker_init(
    graph_handle: StoreHandle,
    algorithm: Algorithm,
    result_queue=None,
) -> None:
    """Attach the shared graph in a freshly spawned/forked worker.

    ``result_queue`` is the pool-wide multiprocessing queue result chunks
    are streamed over; it rides the initializer because queue objects can
    only cross the process boundary while a child is being spawned.
    """
    _reset_inherited_signal_state()
    _WORKER_STATE["graph"] = DiGraph.from_handle(graph_handle)
    _WORKER_STATE["algorithm"] = algorithm
    _WORKER_STATE["queue"] = result_queue
    _WORKER_STATE["cache_store"] = None
    _WORKER_STATE["cache_name"] = None
    _WORKER_STATE["distances"] = {}
    _WORKER_STATE["cancel_segments"] = {}
    # Epoch bookkeeping: the segment the worker's graph currently maps,
    # the init-time handle (epoch-less dispatches mean "the init graph"),
    # and the store of a re-attached epoch (closed on the next switch).
    _WORKER_STATE["graph_name"] = graph_handle.segment_name
    _WORKER_STATE["init_handle"] = graph_handle
    _WORKER_STATE["epoch_store"] = None


#: One-byte cancellation slots per :class:`ExecutorCore` segment; a run's
#: slot is ``run_id % _CANCEL_SLOTS``.  Slot reuse needs 4096 in-flight run
#: ids between a run and its successor, and the successor's dispatch clears
#: the slot anyway.
_CANCEL_SLOTS = 4096


def _cancel_probe(cancel_ref):
    """Build the worker-side ``should_stop`` poll for a dispatched shard.

    ``cancel_ref`` is ``(segment_name, slot)`` of the core's shared
    cancellation page, or ``None`` (inline/thread paths, or a core without
    the segment).  The segment is attached once per worker process and
    cached; attach failure (the parent already unlinked at close) degrades
    to no cancellation polling rather than failing the shard.
    """
    if cancel_ref is None:
        return None
    name, slot = cancel_ref
    segments = _WORKER_STATE.setdefault("cancel_segments", {})
    if name not in segments:
        try:
            segments[name] = _open_untracked(name)
        except (OSError, ValueError):
            segments[name] = None
    segment = segments[name]
    if segment is None:
        return None
    buf = segment.buf
    return lambda: buf[slot] != 0


def _attach_distance_cache(cache_handle: Optional[StoreHandle]) -> Mapping:
    """Map the shared distance cache, reusing the attachment across shards.

    Attach failure is survivable: a concurrent run may have repacked (and
    unlinked) the segment between this shard's dispatch and its execution.
    The cache is purely an optimisation — :func:`_iter_shard_results`
    recomputes any missing key — so a vanished segment degrades to
    per-group reverse BFS instead of failing the shard.
    """
    if cache_handle is None:
        return {}
    if cache_handle.segment_name != _WORKER_STATE["cache_name"]:
        previous = _WORKER_STATE["cache_store"]
        if previous is not None:
            previous.close()
        _WORKER_STATE["cache_store"] = None
        _WORKER_STATE["cache_name"] = cache_handle.segment_name
        _WORKER_STATE["distances"] = {}
        try:
            store = SharedMemoryStore.attach(cache_handle)
        except GraphError:
            return _WORKER_STATE["distances"]
        matrix = store.get("distances")
        _WORKER_STATE["cache_store"] = store
        _WORKER_STATE["distances"] = {
            (int(target), int(k)): matrix[row]
            for row, (target, k) in enumerate(store.meta["keys"])
        }
    return _WORKER_STATE["distances"]


def _attach_graph_epoch(epoch_ref) -> DiGraph:
    """Map the graph epoch a shard was dispatched against, switching lazily.

    ``epoch_ref`` is an :class:`repro.live.epochs.EpochHandle` (or ``None``
    for dispatches predating any mutation, which mean *the init graph*).
    The worker re-attaches only when the requested segment differs from the
    one currently mapped — an epoch change costs one page-table mapping,
    never a pool restart — and closes the previous epoch's mapping so a
    long-lived worker holds at most one historic segment.

    Unlike the distance cache, a failed attach here is **not** survivable:
    serving a query from the wrong epoch would silently return stale
    results, so the :class:`~repro.errors.GraphError` (segment already
    unlinked — the epoch was retired and drained) propagates and fails the
    shard.  The core only dispatches pinned (undrained) epochs, so this
    fires only on genuine lifecycle bugs.
    """
    wanted = (
        _WORKER_STATE["init_handle"]
        if epoch_ref is None
        else epoch_ref.store
    )
    if wanted.segment_name == _WORKER_STATE["graph_name"]:
        return _WORKER_STATE["graph"]
    graph = DiGraph.from_handle(wanted)
    previous = _WORKER_STATE["epoch_store"]
    if previous is not None:
        previous.close()
    _WORKER_STATE["graph"] = graph
    _WORKER_STATE["graph_name"] = wanted.segment_name
    _WORKER_STATE["epoch_store"] = (
        None if epoch_ref is None else graph.store
    )
    return graph


def _iter_shard_results(
    graph: DiGraph,
    algorithm: Algorithm,
    config: RunConfig,
    shard: Sequence[Tuple[int, Tuple[int, int, int]]],
    distances: Mapping[Tuple[int, int], np.ndarray],
) -> Iterator[Tuple[int, QueryResult]]:
    """:func:`_iter_shard_results_raw` behind the ``worker.task`` fault site.

    Every backend (process workers, the thread pool, the inline path) runs
    shards through this wrapper, so an installed
    :mod:`repro.testing.faults` plan can kill/crash/delay the task at a
    chosen workload position on any of them.  The fault fires *before* the
    position's result is delivered — a killed worker leaves that position
    (and the rest of its shard) undelivered, which is exactly what the
    pool-recovery bookkeeping has to replay.  Without a plan the overhead
    is one environment lookup per result.
    """
    for position, result in _iter_shard_results_raw(
        graph, algorithm, config, shard, distances
    ):
        maybe_fail_task(position)
        yield position, result


def _iter_shard_results_raw(
    graph: DiGraph,
    algorithm: Algorithm,
    config: RunConfig,
    shard: Sequence[Tuple[int, Tuple[int, int, int]]],
    distances: Mapping[Tuple[int, int], np.ndarray],
) -> Iterator[Tuple[int, QueryResult]]:
    """Evaluate ``shard`` (``(position, (s, t, k))`` tuples), yielding results.

    Queries are grouped by ``(target, k)``: the group shares one reverse-BFS
    array (from the shared cache, by construction warm for every key of the
    shard) and its forward BFS trees are grown together in one multi-source
    sweep.  Injected arrays equal the per-query ones exactly, so results —
    path lists included, in order — are identical to sequential session
    evaluation.  Being a generator is the streaming seam: the worker loops
    that drain it ship results as they appear instead of one blob per shard.
    Shared by the worker processes, the thread backend and the inline path,
    which is what makes the equivalence testable in-process.
    """
    if not isinstance(algorithm, _DISTANCE_AWARE):
        # Baselines: no index build, no distance reuse — plain evaluation.
        for position, (s, t, k) in shard:
            yield position, algorithm.run(graph, Query(s, t, k), config)
        return
    groups: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
    for position, (s, t, k) in shard:
        groups.setdefault((t, k), []).append((position, s))
    for (t, k), members in groups.items():
        dist_to_t = distances.get((t, k))
        if dist_to_t is None:
            dist_to_t = bfs_distances_bounded(graph, t, cutoff=k, reverse=True)
        # Sweep (and hold) the forward distance matrix one source chunk at a
        # time: peak extra memory stays at O(chunk * |V|) however many
        # queries share the target, and chunking cannot change any row.
        fuse_builds = isinstance(algorithm, _IndexedAlgorithm) and config.constraint is None
        for start in range(0, len(members), DEFAULT_SOURCE_CHUNK):
            chunk = members[start : start + DEFAULT_SOURCE_CHUNK]
            forward = None
            if len(chunk) > 1:
                forward = multi_source_bfs_distances_bounded(
                    graph, [s for _, s in chunk], cutoff=k, no_expand=t
                )
            if forward is not None and fuse_builds:
                # Group-fused index construction: one candidate sweep, one
                # edge sort for the whole chunk.  Each query's index — and
                # therefore its result — is byte-identical to a per-query
                # build from the same distance rows.
                chunk_queries = [Query(s, t, k) for _, s in chunk]
                indexes = LightWeightIndex.build_group(
                    graph, chunk_queries, dist_from_s_rows=forward, dist_to_t=dist_to_t
                )
                for (position, _), query, index in zip(chunk, chunk_queries, indexes):
                    yield position, algorithm.run(graph, query, config, index=index)
                continue
            for row, (position, s) in enumerate(chunk):
                result = algorithm.run(
                    graph,
                    Query(s, t, k),
                    config,
                    dist_to_t=dist_to_t,
                    dist_from_s=None if forward is None else forward[row],
                )
                yield position, result


def _run_shard_queries(
    graph: DiGraph,
    algorithm: Algorithm,
    config: RunConfig,
    shard: Sequence[Tuple[int, Tuple[int, int, int]]],
    distances: Mapping[Tuple[int, int], np.ndarray],
) -> List[Tuple[int, QueryResult]]:
    """Materialised form of :func:`_iter_shard_results` (tests, inline use)."""
    return list(_iter_shard_results(graph, algorithm, config, shard, distances))


#: Queries per streamed result chunk when nobody needs per-query latency:
#: one IPC message per 32 results keeps queue overhead negligible.  Streaming
#: consumers (``on_result``, the query service) use a chunk size of 1.
DEFAULT_CHUNK_QUERIES = 32


def _pump_chunks(
    results: Iterator[Tuple[int, QueryResult]],
    chunk_queries: int,
    emit,
    should_stop=None,
) -> Tuple[int, bool]:
    """Drain ``results`` into ``emit(chunk)`` calls of ``chunk_queries`` items.

    The one chunk-accumulation protocol shared by the process worker and
    the thread backend (only the emission target differs).  ``should_stop``
    is polled between queries; stopping discards the partial buffer.
    Returns ``(emitted, stopped)``.
    """
    emitted = 0
    buffer: List[Tuple[int, QueryResult]] = []
    while True:
        if should_stop is not None and should_stop():
            return emitted, True
        try:
            item = next(results)
        except StopIteration:
            break
        buffer.append(item)
        if len(buffer) >= chunk_queries:
            emit(buffer)
            emitted += len(buffer)
            buffer = []
    if buffer:
        emit(buffer)
        emitted += len(buffer)
    return emitted, False


def _process_worker_stream_shard(payload) -> int:
    """Worker entry point: evaluate one shard, streaming chunks as produced.

    Result chunks — lists of ``(position, QueryResult)`` pairs — are shipped
    over the pool's result queue (``("chunk", run_id, items)``) the moment
    they are complete, followed by one ``("done", run_id, None)`` marker.
    The queue is how partial results reach the parent *before* the shard
    future resolves; the future's return value is only the emitted count.
    On failure no marker is sent — the parent surfaces the future's
    exception instead of waiting for a marker that will never come.

    ``payload`` carries the run's cancellation reference: the shared flag is
    polled between queries, so a cancelled run stops emitting after at most
    one more query instead of running its whole shard to completion.  A
    stopped shard sends no marker either — the cancelling parent is no
    longer counting.
    """
    run_id, shard, config, cache_handle, chunk_queries, cancel_ref, epoch_ref = payload
    out_queue = _WORKER_STATE["queue"]
    results = _iter_shard_results(
        _attach_graph_epoch(epoch_ref),
        _WORKER_STATE["algorithm"],
        config,
        shard,
        _attach_distance_cache(cache_handle),
    )
    emitted, stopped = _pump_chunks(
        results,
        chunk_queries,
        lambda chunk: out_queue.put(("chunk", run_id, chunk)),
        _cancel_probe(cancel_ref),
    )
    if not stopped:
        out_queue.put(("done", run_id, None))
    return emitted


def _default_start_method() -> str:
    """``fork`` on Linux (cheap, copy-on-write), else ``spawn``.

    macOS lists ``fork`` as available but forking a multi-threaded parent
    (the pool's management thread, numpy's Accelerate backend) can deadlock
    in system frameworks — the same reason CPython switched the platform
    default to ``spawn``.
    """
    if sys.platform == "linux" and "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return "spawn"


class StreamRun:
    """One in-flight workload evaluation, streaming result chunks.

    Returned by :meth:`ExecutorCore.start`.  :meth:`chunks` yields lists of
    ``(position, QueryResult)`` pairs as workers complete them — positions
    within one shard arrive in shard order, chunks of different shards
    interleave by completion time.  A run is consumed exactly once; closing
    the generator (or :meth:`cancel`) cancels every shard that has not
    started and discards late chunks.
    """

    #: Seconds between worker-failure polls while waiting for chunks.
    _POLL_SECONDS = 0.05

    #: Consecutive empty polls with no shard in flight before the stream
    #: declares itself stalled (a backstop, not a timeout on real work).
    _STALL_POLLS = 100

    def __init__(
        self,
        core: "ExecutorCore",
        run_id: int,
        num_queries: int,
        num_shards: int,
        fresh: List[Tuple[int, int]],
    ) -> None:
        self._core = core
        self.run_id = run_id
        self.num_queries = num_queries
        self.num_shards = num_shards
        #: ``(target, k)`` keys whose reverse BFS this run's warm phase paid
        #: for (equivalently: the number of warm-phase BFS traversals).
        self.fresh = fresh
        self.cancelled = threading.Event()
        self._queue: "queue_module.Queue" = queue_module.Queue()
        self._futures: List = []
        self._inline: Optional[Iterator[Tuple[int, QueryResult]]] = None
        self._chunk_queries = DEFAULT_CHUNK_QUERIES
        self._consumed = False
        #: ``(shared_memory_segment, slot)`` of this run's cancellation
        #: byte, set by the core on process-backend dispatch.
        self._cancel_cell: Optional[Tuple[object, int]] = None
        #: Workload positions whose results reached the consumer.  Doubles
        #: as the completion criterion (generation-agnostic, so it survives
        #: pool regeneration) and as the dedup filter against late chunks.
        self._delivered: set = set()
        #: Redispatch inputs (process backend only): the original plain
        #: shards plus the run's config/cache handle, kept so a broken pool
        #: can resubmit exactly the undelivered positions.
        self._recovery: Optional[Dict[str, object]] = None
        #: The :class:`repro.live.epochs.Epoch` this run pinned at dispatch
        #: (``None`` before any mutation).  Released exactly once when the
        #: stream drains, keeping the epoch's segment attachable for
        #: broken-pool recovery until the last reader is gone.
        self._epoch = None
        #: Picklable handle of the pinned epoch, riding every shard payload
        #: (and any recovery redispatch) so workers map the right snapshot.
        self._epoch_ref = None
        self._retries_left = 0
        #: Pool regenerations this run survived / positions re-executed.
        self.recoveries = 0
        self.recovered_queries = 0

    def cancel(self) -> None:
        """Stop the run as soon as possible.

        Shards that have not started are cancelled outright; thread-backend
        shards stop between queries; a process-backend shard already
        executing observes the shared cancellation byte between queries and
        abandons the rest of its shard (the query being enumerated still
        runs to completion — enumeration is cooperative only towards its own
        deadline) and any late chunks are discarded.
        """
        self.cancelled.set()
        cell = self._cancel_cell
        if cell is not None:
            segment, slot = cell
            try:
                segment.buf[slot] = 1
            except (ValueError, TypeError):  # pragma: no cover - core closed
                pass
        for future in self._futures:
            future.cancel()

    def chunks(self) -> Iterator[List[Tuple[int, QueryResult]]]:
        """Yield result chunks until every shard finished (or cancellation).

        Re-raises the original exception of a failing shard.  Always drives
        this generator to exhaustion (or close it) — the ``finally`` block
        is what unregisters the run and cancels outstanding work.
        """
        if self._consumed:
            raise RuntimeError("a StreamRun can only be consumed once")
        self._consumed = True
        try:
            if self._inline is not None:
                yield from self._inline_chunks()
                return
            # Completion is counted by *delivered position*, not by shard
            # done markers: after a pool regeneration, markers from the dead
            # generation are indistinguishable from live ones (the router
            # strips the run id), whereas the delivered set is correct
            # across any number of regenerations and deduplicates chunks a
            # dying worker raced onto the queue.
            pending = set(self._futures)
            delivered = self._delivered
            idle_polls = 0
            while len(delivered) < self.num_queries and not self.cancelled.is_set():
                try:
                    kind, payload = self._queue.get(timeout=self._POLL_SECONDS)
                except queue_module.Empty:
                    # No chunk in flight: surface a shard that died without
                    # ever sending its done marker (worker exception, broken
                    # pool) instead of waiting forever.
                    broken = None
                    for future in [f for f in pending if f.done()]:
                        pending.discard(future)
                        error = None if future.cancelled() else future.exception()
                        if error is None:
                            continue
                        if isinstance(error, BrokenProcessPool):
                            # Every future of the dead pool breaks at once;
                            # collect them all, then recover in one shot.
                            broken = error
                            continue
                        raise error
                    if broken is not None:
                        self._core._discard_broken_pool()
                        replacement = self._try_recover()
                        if replacement is None:
                            raise broken
                        pending = set(replacement)
                        idle_polls = 0
                        continue
                    if not pending and self._queue.empty():
                        idle_polls += 1
                        if idle_polls >= self._STALL_POLLS:
                            missing = self.num_queries - len(delivered)
                            raise RuntimeError(
                                f"stream stalled with {missing} of "
                                f"{self.num_queries} results missing and no "
                                "shard in flight"
                            )
                    continue
                idle_polls = 0
                if kind == "done":
                    # Advisory only (see above) — completion is positional.
                    continue
                fresh = [(p, r) for p, r in payload if p not in delivered]
                if fresh:
                    delivered.update(p for p, _ in fresh)
                    yield fresh
        finally:
            self.cancelled.set()
            for future in self._futures:
                future.cancel()
            self._core._unregister_run(self.run_id)
            self._release_epoch()

    def _release_epoch(self) -> None:
        """Drop the run's epoch pin (idempotent)."""
        epoch = self._epoch
        self._epoch = None
        if epoch is not None:
            epoch.release()

    def results(self) -> List[QueryResult]:
        """Drain the stream and return results in workload order."""
        out: List[Optional[QueryResult]] = [None] * self.num_queries
        for chunk in self.chunks():
            for position, result in chunk:
                out[position] = result
        missing = sum(1 for result in out if result is None)
        if missing:
            raise RuntimeError(
                f"stream ended with {missing} of {self.num_queries} results "
                "missing (run cancelled?)"
            )
        return out  # type: ignore[return-value]

    def _try_recover(self) -> Optional[List]:
        """Respawn the pool and resubmit undelivered work after a break.

        Returns the replacement futures, or ``None`` when the run cannot
        (thread backend, retries exhausted, redispatch failed) — the caller
        then surfaces the original :class:`BrokenProcessPool`.  Only shards
        filtered down to positions the consumer never received are
        redispatched, so work a healthy worker already finished is not
        re-executed; duplicates a dying worker still raced onto the queue
        are dropped by the delivered-set filter in :meth:`chunks`.
        """
        if self._recovery is None or self._retries_left <= 0 or self.cancelled.is_set():
            return None
        self._retries_left -= 1
        shards = []
        for shard in self._recovery["shards"]:
            rest = [entry for entry in shard if entry[0] not in self._delivered]
            if rest:
                shards.append(rest)
        if not shards:
            return []
        try:
            futures = self._core._resubmit(
                self, shards, self._recovery["config"], self._recovery["cache_handle"]
            )
        except Exception:  # noqa: BLE001 - recovery is best-effort
            return None
        self.recoveries += 1
        self.recovered_queries += sum(len(shard) for shard in shards)
        self._futures = list(futures)
        return futures

    def _inline_chunks(self) -> Iterator[List[Tuple[int, QueryResult]]]:
        buffer: List[Tuple[int, QueryResult]] = []
        for item in self._inline:
            if self.cancelled.is_set():
                return
            buffer.append(item)
            if len(buffer) >= self._chunk_queries:
                yield buffer
                buffer = []
        if buffer:
            yield buffer


class ExecutorCore:
    """Shard dispatch, pool lifecycle and result streaming — the shared core.

    Every parallel execution mode (the process batch executor, the thread
    backend, the async query service) runs through this object:

    1. the workload is partitioned by target with
       :func:`~repro.workloads.queries.partition_by_target` — every query of
       a ``(target, k)`` key lands in the same shard, so no distance array
       is ever computed twice across workers;
    2. the distinct reverse-BFS arrays are warmed in the parent session;
    3. shards are dispatched to a *persistent* worker pool, and results
       stream back chunk by chunk while later shards are still running.

    Two pool backends:

    * ``"process"`` — real worker processes.  The graph is published once
      into shared memory (:meth:`~repro.graph.digraph.DiGraph.share`), the
      warmed distance cache is packed into a second read-mostly segment, and
      chunks cross the process boundary over one multiprocessing queue that
      a router thread demultiplexes to the per-run streams (concurrent runs
      share the pool).  With ``workers == 1`` shards are evaluated inline in
      the caller's thread — no pool, no segments.
    * ``"thread"`` — a thread pool against the caller's own graph.  GIL-bound
      but free of process setup cost; shards stop between queries on
      cancellation.  This is the synchronous precursor mode the async
      service uses for single-process deployments.

    Constraints are rejected on both backends (their edge filters are
    process-local closures, and the shard loop would fall back to
    unconstrained distance arrays); route constrained workloads through
    :class:`BatchExecutor`.  ``on_result`` callbacks never enter the core —
    callers replay the streamed chunks into the callback parent-side
    (:meth:`ProcessBatchExecutor.run`).

    The core owns shared segments and the pool; call :meth:`close` (or use
    it as a context manager) so they are released deterministically.
    ``close()`` is idempotent.
    """

    def __init__(
        self,
        graph: DiGraph,
        *,
        algorithm: Optional[Algorithm] = None,
        backend: str = "process",
        workers: Optional[int] = None,
        shards: Optional[int] = None,
        start_method: Optional[str] = None,
        max_cached: int = 1024,
        pool_retries: object = "auto",
    ) -> None:
        if backend not in ("process", "thread"):
            raise ValueError(f"unknown backend {backend!r}: use 'process' or 'thread'")
        if workers is not None and workers < 1:
            raise ValueError("workers must be at least 1")
        if shards is not None and shards < 1:
            raise ValueError("shards must be at least 1")
        if pool_retries == "auto":
            resolved_retries = 2
        else:
            resolved_retries = int(pool_retries)  # type: ignore[arg-type]
            if resolved_retries < 0:
                raise ValueError("pool_retries must be 'auto' or a non-negative int")
        #: Pool regenerations one run may attempt after ``BrokenProcessPool``
        #: before the break is surfaced (``"auto"`` resolves to 2: a
        #: deterministically-crashing query fails on its second replay, one
        #: spare regeneration absorbs an unrelated coincident death).
        self.pool_retries = resolved_retries
        self.graph = graph
        self.algorithm = algorithm if algorithm is not None else PathEnum()
        self.backend = backend
        self.workers = int(workers) if workers else (os.cpu_count() or 1)
        self.shards = None if shards is None else int(shards)
        self.start_method = start_method or _default_start_method()
        #: Parent-side distance cache — a :class:`QuerySession`, so warm /
        #: evict / charge semantics live in exactly one place.  It persists
        #: across runs, letting later workloads against the same targets
        #: skip the warm phase entirely.
        self.session = QuerySession(graph, algorithm=self.algorithm, max_cached=max_cached)
        self._cache_store: Optional[SharedMemoryStore] = None
        self._packed_keys: Tuple[Tuple[int, int], ...] = ()
        #: Shared page of per-run cancellation bytes (process backend).
        self._cancel_shm = None
        self._pool = None
        self._mp_queue = None
        self._drainer: Optional[threading.Thread] = None
        self._runs: Dict[int, StreamRun] = {}
        self._runs_lock = threading.Lock()
        #: Serialises warm + pack + dispatch (and close) across submitters.
        self._submit_lock = threading.Lock()
        self._run_ids = itertools.count()
        self._graph_published_here = False
        #: The exact graph whose segment this core published at pool
        #: creation; after mutations ``self.graph`` moves on to newer
        #: epochs, but close() must unlink the segment it published.
        self._published_graph: Optional[DiGraph] = None
        #: Live-update state, created lazily on the first :meth:`mutate`.
        self._live = None
        #: Handle of the current epoch's shared segment (``None`` before
        #: the first mutation — shards then run on the init graph).
        self._epoch_ref = None
        #: Serialises mutations; the expensive rebuild runs under this lock
        #: alone, so concurrent reads keep dispatching old-epoch runs.
        self._mutate_lock = threading.Lock()
        #: Live counters, updated under ``_submit_lock`` at publish time.
        self.live_stats: Dict[str, int] = {
            "epochs_published": 0,
            "compactions": 0,
            "updates_applied": 0,
            "distance_repairs_incremental": 0,
            "distance_repairs_full": 0,
            "distance_entries_invalidated": 0,
        }
        #: Affected-region bound for incremental distance repair before the
        #: session falls back to a full recompute for that entry.
        self.repair_budget: Optional[int] = None
        self._closed = False

    # -- lifecycle ----------------------------------------------------- #
    @property
    def closed(self) -> bool:
        """``True`` once :meth:`close` ran; further :meth:`start` calls fail."""
        return self._closed

    @property
    def distance_aware(self) -> bool:
        """Whether the algorithm shares the session's distance cache."""
        return isinstance(self.algorithm, _DISTANCE_AWARE)

    def __enter__(self) -> "ExecutorCore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Cancel active runs, shut the pool down, unlink owned segments.

        Idempotent.  The graph segment is unlinked only when this core
        published it; the parent's (and any still-attached worker's) mapping
        stays valid until closed — unlinking merely removes the name so
        nothing leaks past process exit.
        """
        with self._submit_lock:
            if self._closed:
                return
            self._closed = True
        with self._runs_lock:
            active = list(self._runs.values())
        for run in active:
            run.cancel()
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        if self._drainer is not None:
            try:
                self._mp_queue.put(("stop", None, None))
            except Exception:  # pragma: no cover - queue already broken
                pass
            self._drainer.join(timeout=5.0)
            self._drainer = None
        if self._mp_queue is not None:
            self._mp_queue.close()
            self._mp_queue.cancel_join_thread()
            self._mp_queue = None
        if self._cache_store is not None:
            self._cache_store.close(unlink=True)
            self._cache_store = None
        if self._cancel_shm is not None:
            segment = self._cancel_shm
            self._cancel_shm = None
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        if self._live is not None:
            # Retires the current epoch; epoch-owned segments unlink as
            # their last pinned readers drain (cancelled above).
            self._live.close()
            self._live = None
        published = self._published_graph if self._published_graph is not None else self.graph
        store = published.store
        if self._graph_published_here and store is not None and store.shareable:
            if store.is_owner:
                store.unlink()

    def __del__(self):  # pragma: no cover - best-effort safety net
        try:
            self.close()
        except Exception:
            pass

    # -- submission ---------------------------------------------------- #
    def start(
        self,
        workload: Sequence[Query],
        config: Optional[RunConfig] = None,
        *,
        chunk_queries: int = DEFAULT_CHUNK_QUERIES,
    ) -> StreamRun:
        """Warm, partition and dispatch ``workload``; return its stream.

        The call itself performs the (sequential) warm phase; enumeration
        happens as the returned run's :meth:`StreamRun.chunks` is consumed
        concurrently with the workers.  ``chunk_queries`` bounds how many
        results ride one chunk — use 1 when the consumer needs per-query
        streaming latency.
        """
        from repro.workloads.queries import partition_by_target

        config = config if config is not None else RunConfig()
        self._check_config(config)
        queries = list(workload)
        with self._submit_lock:
            if self._closed:
                raise RuntimeError("ExecutorCore is closed")
            num_shards = self.shards if self.shards is not None else self.workers
            shards = partition_by_target(queries, num_shards) if queries else []
            plain = [
                [(position, (q.source, q.target, q.k)) for position, q in shard]
                for shard in shards
            ]
            distance_aware = self.distance_aware
            fresh: List[Tuple[int, int]] = []
            if distance_aware and queries:
                fresh = self._warm_distances(queries)
            run = StreamRun(self, next(self._run_ids), len(queries), len(plain), fresh)
            run._chunk_queries = max(1, int(chunk_queries))
            # MVCC read side: capture the graph *now* and pin its epoch.
            # A mutation published while this run is in flight swaps
            # ``self.graph`` for new submissions, but this run keeps
            # reading the snapshot it started on until it drains.
            graph = self.graph
            if self._live is not None:
                run._epoch = self._live.pin()
                run._epoch_ref = self._epoch_ref
            # Every run registers (not just process-backend ones): close()
            # walks the registry to cancel whatever is in flight, whichever
            # backend carries it.  chunks() unregisters on exhaustion.
            self._register_run(run)
            try:
                if not queries:
                    run._inline = iter(())
                elif self.backend == "thread":
                    pool = self._ensure_thread_pool()
                    distances = self.session.export_distances()
                    run._futures = [
                        pool.submit(
                            self._thread_stream_shard, run, graph, shard, config, distances
                        )
                        for shard in plain
                    ]
                elif self.workers > 1:
                    # Even a single shard goes to the pool: with a persistent
                    # service, cross-job parallelism (every job one shard)
                    # matters as much as intra-job sharding, and inline
                    # evaluation would pin it all to the GIL-bound parent.
                    cache_handle = None
                    if distance_aware:
                        cache_handle = self._pack_distances(
                            {(q.target, q.k) for q in queries}
                        )
                    pool = self._ensure_process_pool()
                    segment = self._ensure_cancel_segment()
                    slot = run.run_id % _CANCEL_SLOTS
                    segment.buf[slot] = 0
                    run._cancel_cell = (segment, slot)
                    cancel_ref = (segment.name, slot)
                    run._futures = [
                        pool.submit(
                            _process_worker_stream_shard,
                            (
                                run.run_id,
                                shard,
                                config,
                                cache_handle,
                                run._chunk_queries,
                                cancel_ref,
                                run._epoch_ref,
                            ),
                        )
                        for shard in plain
                    ]
                    # Everything a broken-pool recovery needs to redispatch
                    # just the undelivered positions.
                    run._recovery = {
                        "shards": plain,
                        "config": config,
                        "cache_handle": cache_handle,
                    }
                    run._retries_left = self.pool_retries
                else:
                    distances = self.session.export_distances()
                    run._inline = itertools.chain.from_iterable(
                        _iter_shard_results(graph, self.algorithm, config, shard, distances)
                        for shard in plain
                    )
            except BaseException:
                run.cancel()
                self._unregister_run(run.run_id)
                run._release_epoch()
                raise
            return run

    # -- mutation ------------------------------------------------------ #
    def mutate(
        self,
        add: Sequence[Tuple[int, int]] = (),
        remove: Sequence[Tuple[int, int]] = (),
    ) -> Dict[str, object]:
        """Apply an edge batch and publish the next graph epoch.

        The expensive part — folding the delta overlay into a fresh CSR
        (and, on the process backend, packing it into a new shared-memory
        segment) — runs under the mutation lock only, so concurrent
        :meth:`start` calls keep dispatching against the current epoch
        without stalling.  Only the final pointer swap (graph, epoch
        handle, repaired distance cache, packed-cache invalidation) takes
        the submit lock.

        In-flight runs pinned to older epochs are untouched: their workers
        keep the retired segment mapped until the run drains, and the
        distance arrays they were handed describe their own epoch.  New
        runs see the new epoch and a cache repaired incrementally by
        :func:`repro.live.repair.repair_reverse_distances` (full recompute
        per entry when the affected region exceeds :attr:`repair_budget`).
        """
        from repro.live.epochs import LiveGraph

        with self._mutate_lock:
            with self._submit_lock:
                if self._closed:
                    raise RuntimeError("ExecutorCore is closed")
                if self._live is None:
                    live_store = (
                        "shared_memory"
                        if self.backend == "process" and self.workers > 1
                        else "heap"
                    )
                    self._live = LiveGraph(
                        self.graph,
                        store=live_store,
                        repair_budget=self.repair_budget,
                    )
            info = self._live.apply(add=add, remove=remove)
            if not info["published"]:
                with self._submit_lock:
                    stats = dict(self.live_stats)
                return {
                    "epoch": info["epoch"],
                    "added": 0,
                    "removed": 0,
                    "repair": {"repaired": 0, "recomputed": 0, "invalidated": 0},
                    "stats": stats,
                }
            new_graph = self._live.graph
            epoch_ref = self._live.epoch.handle()
            with self._submit_lock:
                self.graph = new_graph
                self._epoch_ref = epoch_ref
                repair = self.session.refresh_graph(
                    new_graph,
                    added=info["added"],
                    removed=info["removed"],
                    repair_budget=self.repair_budget,
                )
                # The packed distance segment describes the previous epoch;
                # retire it.  In-flight runs that already attached keep
                # their mapping, late attaches degrade to per-group BFS.
                if self._cache_store is not None:
                    self._cache_store.close(unlink=True)
                    self._cache_store = None
                self._packed_keys = ()
                live = self._live.stats()
                self.live_stats["epochs_published"] = live["epochs_published"]
                self.live_stats["compactions"] = live["compactions"]
                self.live_stats["updates_applied"] = live["updates_applied"]
                self.live_stats["distance_repairs_incremental"] += repair["repaired"]
                self.live_stats["distance_repairs_full"] += repair["recomputed"]
                self.live_stats["distance_entries_invalidated"] += repair["invalidated"]
                stats = dict(self.live_stats)
        return {
            "epoch": info["epoch"],
            "added": len(info["added"]),
            "removed": len(info["removed"]),
            "repair": repair,
            "stats": stats,
        }

    @property
    def current_epoch(self) -> int:
        """Id of the epoch new runs dispatch against (0 before any mutation)."""
        live = self._live
        return 0 if live is None else live.epoch_id

    # -- internals ----------------------------------------------------- #
    def _check_config(self, config: RunConfig) -> None:
        if config.constraint is not None:
            raise ValueError(
                "path constraints hold process-local state (their edge "
                "filters are closures) and cannot cross a process boundary; "
                "use BatchExecutor for constrained workloads"
            )
        if config.on_result is not None:
            raise ValueError(
                "on_result callbacks never enter the executor core; strip "
                "the callback and replay the streamed chunks parent-side "
                "(as ProcessBatchExecutor.run does)"
            )

    def _warm_distances(self, queries: Sequence[Query]) -> List[Tuple[int, int]]:
        """Run the reverse BFS once per distinct ``(target, k)`` key.

        Delegates to :meth:`QuerySession.prepare` (after growing the cache
        bound, as :class:`BatchExecutor` does) and returns the keys that
        were actually computed, so per-query hit flags can be charged
        exactly as a sequential session would.
        """
        distinct = {self.session._key(query, None) for query in queries}
        self.session.ensure_capacity(len(distinct))
        fresh_keys = self.session.prepare(queries)
        return [(key[0], key[1]) for key in fresh_keys]

    def _pack_distances(
        self, required: Optional[set] = None
    ) -> Optional[StoreHandle]:
        """Publish the parent distance cache as one shared ``(keys, n)`` matrix.

        ``required`` is the set of ``(target, k)`` keys the submitting run
        actually needs: as long as the existing pack covers them, its handle
        is reused — no O(cache × |V|) re-stack and, crucially on the
        serving path, no unlink of a segment that concurrent in-flight runs
        were handed.  A repack (covering the whole exported cache, so it
        amortises) happens only when genuinely new keys appeared; racing
        shards that still hold the retired handle fall back to per-group
        BFS via :func:`_attach_distance_cache`.
        """
        distances = self.session.export_distances()
        if not distances:
            return None
        if self._cache_store is not None:
            packed = set(self._packed_keys)
            needed = set(distances) if required is None else required
            if needed <= packed:
                return self._cache_store.handle()
            self._cache_store.close(unlink=True)
        keys = tuple(distances)
        matrix = np.stack([distances[key] for key in keys])
        self._cache_store = SharedMemoryStore.pack(
            {"distances": matrix}, meta={"keys": list(keys)}
        )
        self._packed_keys = keys
        return self._cache_store.handle()

    def _ensure_process_pool(self) -> ProcessPoolExecutor:
        if self._pool is not None:
            return self._pool
        store = self.graph.store
        already_shared = (
            store is not None
            and store.shareable
            and not getattr(store, "is_unlinked", False)
        )
        graph_handle = self.graph.share()
        if not already_shared:
            # Only unlink at close() what this core itself published.
            self._graph_published_here = True
            self._published_graph = self.graph
        context = multiprocessing.get_context(self.start_method)
        if self._mp_queue is None:
            # One queue and one router thread outlive pool regenerations;
            # the router demultiplexes chunks to per-run streams by run id
            # and silently drops chunks of unregistered (finished or
            # cancelled) runs.
            self._mp_queue = context.Queue()
            self._drainer = threading.Thread(
                target=self._drain_loop, name="repro-stream-router", daemon=True
            )
            self._drainer.start()
        # Always size the pool at full strength: a persistent pool serves
        # runs of different shapes, and resizing it mid-flight would tear
        # workers out from under a concurrent run.
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=context,
            initializer=_process_worker_init,
            initargs=(graph_handle, self.algorithm, self._mp_queue),
        )
        return self._pool

    def _ensure_cancel_segment(self):
        """The core's shared page of per-run cancellation bytes.

        Created lazily with the first process-backend dispatch and unlinked
        at :meth:`close`; workers attach it once per process (untracked, so
        a child's exit never unlinks the parent's page).
        """
        if self._cancel_shm is None:
            self._cancel_shm = shared_memory.SharedMemory(
                create=True, size=_CANCEL_SLOTS
            )
        return self._cancel_shm

    def _ensure_thread_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-shard"
            )
        return self._pool

    def _discard_broken_pool(self) -> None:
        """Drop a pool whose worker died; the next start() builds a fresh one."""
        with self._submit_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=False, cancel_futures=True)
                self._pool = None

    def _resubmit(
        self,
        run: StreamRun,
        shards: List,
        config: RunConfig,
        cache_handle: Optional[StoreHandle],
    ) -> List:
        """Redispatch ``shards`` of ``run`` on a freshly built process pool.

        The recovery half of broken-pool handling: the mp queue and its
        router thread survived the old pool (they are created once per
        core), so the fresh workers stream into the same per-run queue.  A
        stale ``cache_handle`` (a concurrent run repacked the distance
        segment meanwhile) is survivable — workers degrade to per-group
        reverse BFS.
        """
        with self._submit_lock:
            if self._closed:
                raise RuntimeError("ExecutorCore is closed")
            pool = self._ensure_process_pool()
            segment = self._ensure_cancel_segment()
            slot = run.run_id % _CANCEL_SLOTS
            segment.buf[slot] = 1 if run.cancelled.is_set() else 0
            run._cancel_cell = (segment, slot)
            cancel_ref = (segment.name, slot)
            return [
                pool.submit(
                    _process_worker_stream_shard,
                    (
                        run.run_id,
                        shard,
                        config,
                        cache_handle,
                        run._chunk_queries,
                        cancel_ref,
                        # The run's epoch pin is still held (chunks() has
                        # not drained), so the segment is attachable even
                        # if newer epochs have since retired it.
                        run._epoch_ref,
                    ),
                )
                for shard in shards
            ]

    def _thread_stream_shard(
        self,
        run: StreamRun,
        graph: DiGraph,
        shard: Sequence[Tuple[int, Tuple[int, int, int]]],
        config: RunConfig,
        distances: Mapping[Tuple[int, int], np.ndarray],
    ) -> int:
        """Thread-backend worker: same streaming contract, direct queue.

        ``graph`` is the epoch snapshot captured at dispatch — reading it
        through ``self.graph`` here would tear a run across epochs when a
        mutation publishes mid-flight.
        """
        results = _iter_shard_results(
            graph, self.algorithm, config, shard, distances
        )
        emitted, stopped = _pump_chunks(
            results,
            run._chunk_queries,
            lambda chunk: run._queue.put(("chunk", chunk)),
            run.cancelled.is_set,
        )
        if not stopped:
            run._queue.put(("done", None))
        return emitted

    def _register_run(self, run: StreamRun) -> None:
        with self._runs_lock:
            self._runs[run.run_id] = run

    def _unregister_run(self, run_id: int) -> None:
        with self._runs_lock:
            self._runs.pop(run_id, None)

    def _drain_loop(self) -> None:
        """Router thread: demultiplex the shared queue to per-run streams."""
        while True:
            try:
                kind, run_id, payload = self._mp_queue.get()
            except (EOFError, OSError):  # pragma: no cover - queue torn down
                return
            if kind == "stop":
                return
            with self._runs_lock:
                run = self._runs.get(run_id)
            if run is not None:
                run._queue.put((kind, payload))


class ProcessBatchExecutor:
    """Target-sharded batch evaluation across worker processes.

    The GIL caps :class:`BatchExecutor`'s thread pool at one core of useful
    work; this executor fans out to real processes through a persistent
    :class:`ExecutorCore` (process backend): the graph and the warmed
    distance cache live in shared memory, each worker evaluates whole
    target shards (growing the forward BFS trees of a target group in one
    multi-source sweep), and results stream back chunk by chunk.

    Results come back in workload order and are identical, path lists
    included, to evaluating the same workload through a sequential
    :class:`QuerySession`.  ``RunConfig.on_result`` callbacks are supported:
    workers stream result chunks to the parent, which replays every path
    into the callback *in workload order* (the exact sequence a sequential
    session run would produce).  The ordering guarantee costs memory:
    workers must materialise each query's paths to ship them (even under
    ``store_paths=False``), and out-of-order arrivals buffer parent-side
    until the workload-order prefix is contiguous — worst case the whole
    batch's paths at once.  For bounded-memory streaming of huge result
    sets, use :class:`BatchExecutor`, whose callback fires in-process
    without materialisation (at the cost of cross-query ordering when its
    thread pool is enabled).  Constraints hold process-local state and
    are still rejected — use :class:`BatchExecutor` for those.

    The executor owns two shared-memory segments; call :meth:`close` (or use
    it as a context manager) so they are unlinked deterministically instead
    of at interpreter teardown.  ``close()`` is idempotent.
    """

    def __init__(
        self,
        graph: DiGraph,
        *,
        algorithm: Optional[Algorithm] = None,
        processes: Optional[int] = None,
        shards: Optional[int] = None,
        start_method: Optional[str] = None,
        max_cached: int = 1024,
    ) -> None:
        if processes is not None and processes < 1:
            raise ValueError("processes must be at least 1")
        self._core = ExecutorCore(
            graph,
            algorithm=algorithm,
            backend="process",
            workers=processes,
            shards=shards,
            start_method=start_method,
            max_cached=max_cached,
        )
        self.graph = graph
        self.algorithm = self._core.algorithm
        self.stats = BatchStats()

    # Introspection attributes of the pre-core API, kept for callers.
    @property
    def processes(self) -> int:
        return self._core.workers

    @property
    def shards(self) -> Optional[int]:
        return self._core.shards

    @property
    def start_method(self) -> str:
        return self._core.start_method

    # -- lifecycle ----------------------------------------------------- #
    def __enter__(self) -> "ProcessBatchExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Shut the worker pool down and unlink owned shared segments."""
        self._core.close()

    def __del__(self):  # pragma: no cover - best-effort safety net
        try:
            self.close()
        except Exception:
            pass

    # -- execution ----------------------------------------------------- #
    def run(
        self,
        workload: Sequence[Query],
        config: Optional[RunConfig] = None,
    ) -> BatchResult:
        """Evaluate every query of ``workload`` and return the batch result."""
        config = config if config is not None else RunConfig()
        if self._core.closed:
            raise RuntimeError("ProcessBatchExecutor is closed")
        queries = list(workload)
        started = time.perf_counter()
        if not queries:
            self.stats.wall_seconds = time.perf_counter() - started
            return BatchResult(results=[], stats=replace(self.stats))

        # The callback stays parent-side: workers get a config without it
        # (but with path storage, so the paths to replay come back) and the
        # parent releases queries to the callback in workload order.
        stream_callback = config.on_result
        worker_config = config
        if stream_callback is not None:
            worker_config = config.replace(on_result=None, store_paths=True)
        run = self._core.start(
            queries,
            worker_config,
            chunk_queries=1 if stream_callback is not None else DEFAULT_CHUNK_QUERIES,
        )
        self.stats.reverse_bfs_runs += len(run.fresh)

        results: List[Optional[QueryResult]] = [None] * len(queries)
        next_position = 0

        def release_ready() -> None:
            # Replay the contiguous ready prefix so the callback observes
            # the exact path sequence of a sequential session run.
            nonlocal next_position
            while next_position < len(results) and results[next_position] is not None:
                result = results[next_position]
                for path in result.paths or ():
                    stream_callback(path)
                if not config.store_paths:
                    result.paths = None
                next_position += 1

        for chunk in run.chunks():
            for position, result in chunk:
                results[position] = result
            if stream_callback is not None:
                release_ready()
        missing = sum(1 for result in results if result is None)
        if missing:
            # chunks() exits cleanly when the run is cancelled under it
            # (e.g. a concurrent close()); a partial batch must not escape
            # as a BatchResult full of holes.
            raise RuntimeError(
                f"stream ended with {missing} of {len(queries)} results "
                "missing (executor closed mid-run?)"
            )

        self.stats.queries_run += len(queries)
        if isinstance(self.algorithm, _DISTANCE_AWARE):
            charged = _charge_fresh_to_first_query(
                queries, results, set(run.fresh), lambda q: (q.target, q.k)
            )
            self.stats.bfs_cache_hits += len(queries) - charged
        self.stats.wall_seconds = time.perf_counter() - started
        return BatchResult(results=list(results), stats=replace(self.stats))


# --------------------------------------------------------------------- #
# module-level convenience functions (the quickstart API)
# --------------------------------------------------------------------- #
def enumerate_paths(
    graph: DiGraph,
    source: Hashable,
    target: Hashable,
    k: int,
    *,
    external_ids: bool = False,
    constraint: Optional[PathConstraint] = None,
    result_limit: Optional[int] = None,
    time_limit_seconds: Optional[float] = None,
) -> List[Tuple[int, ...]]:
    """Enumerate all hop-constrained s-t paths with PathEnum.

    This is the one-call API used by the examples: it builds the query (from
    external ids when requested), runs the full PathEnum pipeline and returns
    the list of paths (as internal-id tuples, or external ids when
    ``external_ids`` is set).
    """
    engine = PathEnum()
    query = (
        Query.from_external(graph, source, target, k)
        if external_ids
        else Query(int(source), int(target), k)
    )
    config = RunConfig(
        store_paths=True,
        constraint=constraint,
        result_limit=result_limit,
        time_limit_seconds=time_limit_seconds,
    )
    result = engine.run(graph, query, config)
    paths = result.paths or []
    if external_ids:
        return [graph.translate_path(p) for p in paths]
    return paths


def count_paths(
    graph: DiGraph,
    source: Hashable,
    target: Hashable,
    k: int,
    *,
    external_ids: bool = False,
    time_limit_seconds: Optional[float] = None,
) -> int:
    """Count hop-constrained s-t paths without materialising them."""
    engine = PathEnum()
    query = (
        Query.from_external(graph, source, target, k)
        if external_ids
        else Query(int(source), int(target), k)
    )
    config = RunConfig(store_paths=False, time_limit_seconds=time_limit_seconds)
    return engine.run(graph, query, config).count
