"""The PathEnum engine, its fixed-plan variants (Figure 2) and the batch layer.

Three single-query algorithms are defined here:

* :class:`IdxDfs` — always evaluates with the index DFS (Algorithm 4); the
  paper's IDX-DFS.
* :class:`IdxJoin` — always runs the full-fledged optimizer and evaluates
  with the bushy join (Algorithms 5 and 6); the paper's IDX-JOIN.
* :class:`PathEnum` — the complete system: light-weight index, preliminary
  estimation, optional full optimization and cost-based selection between
  the two evaluation strategies.

All three accept the uniform :class:`~repro.core.listener.RunConfig` and can
therefore be driven by the same benchmark harness as the baselines.

On top of them sits the batch execution layer:

* :class:`QuerySession` — evaluates queries one by one against a single
  graph while caching reverse-BFS distance arrays keyed by
  ``(target, k, constraint)``.  The light-weight index of a query whose
  target was already visited is built from the cached distances, skipping
  roughly half of the per-query preprocessing (the reverse BFS of
  Algorithm 3).  The cached distances omit the ``no-intermediate-s``
  restriction, which only *under*-approximates ``v.t`` — the index becomes a
  superset of the per-query one, so the enumerated path sets are identical
  (pruning is a performance device, never a correctness device).
* :class:`BatchExecutor` — evaluates a whole
  :class:`~repro.workloads.queries.QueryWorkload` as a unit through a
  session, optionally fanning independent queries out over a thread pool,
  and reports aggregate :class:`BatchStats` (BFS cache hits, wall clock,
  throughput).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.algorithm import Algorithm, timed_run
from repro.core.constraints import PathConstraint
from repro.core.dfs import run_idx_dfs
from repro.core.index import LightWeightIndex
from repro.core.join import run_idx_join
from repro.core.listener import RunConfig
from repro.core.optimizer import DEFAULT_TAU, Plan, choose_plan
from repro.core.query import Query
from repro.core.result import Phase, QueryResult
from repro.graph.digraph import DiGraph
from repro.graph.traversal import bfs_distances_bounded

__all__ = [
    "PathEnum",
    "IdxDfs",
    "IdxJoin",
    "QuerySession",
    "BatchExecutor",
    "BatchResult",
    "BatchStats",
    "enumerate_paths",
    "count_paths",
]


class _IndexedAlgorithm(Algorithm):
    """Shared machinery of the three index-based algorithms."""

    #: Plan forcing: ``None`` (cost-based), ``"dfs"`` or ``"join"``.
    _force: Optional[str] = None

    def run(
        self,
        graph: DiGraph,
        query: Query,
        config: Optional[RunConfig] = None,
        *,
        dist_to_t: Optional[np.ndarray] = None,
    ) -> QueryResult:
        """Evaluate ``query`` on ``graph``.

        ``dist_to_t`` optionally injects a precomputed reverse-BFS distance
        array (the :class:`QuerySession` cache path); single-query callers
        leave it unset.
        """
        config = config if config is not None else RunConfig()
        constraint = config.constraint
        if constraint is not None and not isinstance(constraint, PathConstraint):
            raise TypeError("config.constraint must be a PathConstraint instance")

        def body(collector, deadline, stats) -> None:
            edge_filter = constraint.edge_filter() if constraint is not None else None
            index = LightWeightIndex.build(
                graph,
                query,
                edge_filter=edge_filter,
                deadline=deadline,
                stats=stats,
                dist_to_t=dist_to_t,
            )
            plan = choose_plan(
                index, tau=config.tau, deadline=deadline, stats=stats, force=self._force
            )
            stats.plan = plan.kind
            # The enumeration phase is recorded in a ``finally`` block so that
            # queries interrupted by the deadline or a result limit still
            # report how long they enumerated (Figure 7 / Figure 17 depend on
            # this for timed-out queries).
            enumeration_started = time.perf_counter()
            if plan.kind == "join":
                cut = plan.cut_position if plan.cut_position is not None else max(1, query.k // 2)
                try:
                    run_idx_join(
                        index,
                        cut,
                        collector,
                        deadline=deadline,
                        stats=stats,
                        constraint=constraint,
                    )
                finally:
                    stats.add_phase(Phase.JOIN, time.perf_counter() - enumeration_started)
            else:
                try:
                    run_idx_dfs(
                        index,
                        collector,
                        deadline=deadline,
                        stats=stats,
                        constraint=constraint,
                    )
                finally:
                    stats.add_phase(
                        Phase.ENUMERATION, time.perf_counter() - enumeration_started
                    )

        return timed_run(self.name, query, config, body)

    # ------------------------------------------------------------------ #
    # convenience entry points accepting external ids
    # ------------------------------------------------------------------ #
    def run_external(
        self,
        graph: DiGraph,
        source: Hashable,
        target: Hashable,
        k: int,
        config: Optional[RunConfig] = None,
    ) -> QueryResult:
        """Evaluate a query given external vertex ids."""
        query = Query.from_external(graph, source, target, k)
        return self.run(graph, query, config)


class IdxDfs(_IndexedAlgorithm):
    """Index-based depth-first search (the paper's IDX-DFS)."""

    name = "IDX-DFS"
    _force = "dfs"


class IdxJoin(_IndexedAlgorithm):
    """Index-based bushy join (the paper's IDX-JOIN)."""

    name = "IDX-JOIN"
    _force = "join"


class PathEnum(_IndexedAlgorithm):
    """The full PathEnum system with cost-based plan selection."""

    name = "PathEnum"
    _force = None

    def __init__(self, *, tau: float = DEFAULT_TAU) -> None:
        self._tau = tau

    def run(
        self,
        graph: DiGraph,
        query: Query,
        config: Optional[RunConfig] = None,
        *,
        dist_to_t: Optional[np.ndarray] = None,
    ) -> QueryResult:
        config = config if config is not None else RunConfig()
        if config.tau == DEFAULT_TAU and self._tau != DEFAULT_TAU:
            config = config.replace(tau=self._tau)
        return super().run(graph, query, config, dist_to_t=dist_to_t)

    def explain(self, graph: DiGraph, query: Query, *, tau: Optional[float] = None) -> Plan:
        """Return the plan PathEnum would choose for ``query`` without running it."""
        index = LightWeightIndex.build(graph, query)
        return choose_plan(index, tau=self._tau if tau is None else tau)


# --------------------------------------------------------------------- #
# batch execution
# --------------------------------------------------------------------- #
@dataclass
class BatchStats:
    """Aggregate statistics of a batch / session run."""

    #: Queries evaluated so far.
    queries_run: int = 0
    #: Reverse BFS traversals actually performed (== distance-cache misses).
    reverse_bfs_runs: int = 0
    #: Queries whose index was built from a cached distance array.
    bfs_cache_hits: int = 0
    #: Wall-clock seconds of the last :meth:`BatchExecutor.run` call.
    wall_seconds: float = 0.0

    @property
    def bfs_cache_misses(self) -> int:
        """Distance-cache misses (alias of :attr:`reverse_bfs_runs`)."""
        return self.reverse_bfs_runs

    @property
    def hit_rate(self) -> float:
        """Fraction of queries served from the distance cache."""
        if self.queries_run == 0:
            return 0.0
        return self.bfs_cache_hits / self.queries_run

    def as_row(self) -> Dict[str, object]:
        """Flat dict for the benchmark reporting layer."""
        return {
            "queries": self.queries_run,
            "reverse_bfs_runs": self.reverse_bfs_runs,
            "bfs_cache_hits": self.bfs_cache_hits,
            "hit_rate": round(self.hit_rate, 3),
            "wall_ms": round(self.wall_seconds * 1e3, 3),
        }


#: Cache key of a reverse-BFS distance array: the target vertex, the hop
#: constraint and the identity of the (optional) constraint object whose
#: edge filter shaped the traversal.
_DistanceKey = Tuple[int, int, Optional[int]]


class QuerySession:
    """Evaluates queries on one graph, sharing reverse-BFS distance arrays.

    The session is the unit of distance reuse: all queries submitted through
    :meth:`run` share one cache keyed by ``(target, k, constraint)``.  For
    workloads that hammer a small set of targets (fraud rings around a hub
    account, Figure 13/14-style sweeps) this removes the reverse half of
    every repeated index build.

    Sessions are cheap; create one per logical workload.  ``max_cached``
    bounds the number of retained distance arrays (each is O(|V|)); the
    oldest entry is evicted first.
    """

    def __init__(
        self,
        graph: DiGraph,
        *,
        algorithm: Optional[Algorithm] = None,
        max_cached: int = 256,
    ) -> None:
        self.graph = graph
        self.algorithm = algorithm if algorithm is not None else PathEnum()
        self.stats = BatchStats()
        self._max_cached = max(1, int(max_cached))
        #: Cache entries retain the constraint object alongside the distance
        #: array: keys embed ``id(constraint)``, and holding the reference
        #: prevents a freed constraint's address from being recycled into a
        #: false hit for a different constraint.
        self._distances: Dict[_DistanceKey, Tuple[Optional[PathConstraint], np.ndarray]] = {}
        #: Guards the cache and the counters; the BFS itself and the query
        #: evaluation run outside the lock.
        self._lock = threading.Lock()

    # -- distance cache ------------------------------------------------ #
    def _key(self, query: Query, constraint: Optional[PathConstraint]) -> _DistanceKey:
        return (query.target, query.k, None if constraint is None else id(constraint))

    def distances_to_target(
        self, target: int, k: int, constraint: Optional[PathConstraint] = None
    ) -> np.ndarray:
        """The (cached) bounded reverse-BFS distance array towards ``target``.

        The traversal is *not* restricted around any particular source, so
        one array serves every query that shares ``(target, k, constraint)``;
        see the module docstring for why this relaxation preserves results.
        """
        key = (int(target), int(k), None if constraint is None else id(constraint))
        with self._lock:
            cached = self._distances.get(key)
        if cached is not None and cached[0] is constraint:
            return cached[1]
        edge_filter = constraint.edge_filter() if constraint is not None else None
        distances = bfs_distances_bounded(
            self.graph, int(target), cutoff=int(k), reverse=True, edge_filter=edge_filter
        )
        with self._lock:
            self.stats.reverse_bfs_runs += 1
            while len(self._distances) >= self._max_cached and self._distances:
                self._distances.pop(next(iter(self._distances)))
            self._distances[key] = (constraint, distances)
        return distances

    def ensure_capacity(self, num_keys: int) -> None:
        """Grow the cache bound so ``num_keys`` entries can coexist.

        :class:`BatchExecutor` calls this before warming a workload: the
        warm-once guarantee (every reverse BFS runs exactly once, and the
        parallel phase never mutates the cache) only holds when no entry is
        evicted between :meth:`prepare` and the last query of the batch.
        """
        with self._lock:
            if num_keys > self._max_cached:
                self._max_cached = int(num_keys)

    def prepare(self, queries: Iterable[Query], constraint=None) -> List[_DistanceKey]:
        """Warm the distance cache for ``queries``.

        Returns the keys whose reverse BFS was actually computed (cache
        misses).  Used by :class:`BatchExecutor` before fanning out to
        threads — the cache is read-only during parallel execution, and the
        returned keys let the executor charge each fresh BFS to the first
        query that needed it instead of counting every pool query as a hit.
        """
        fresh: List[_DistanceKey] = []
        for query in queries:
            key = self._key(query, constraint)
            with self._lock:
                known = key in self._distances
            if not known:
                fresh.append(key)
            self.distances_to_target(query.target, query.k, constraint)
        return fresh

    # -- evaluation ---------------------------------------------------- #
    def run(self, query: Query, config: Optional[RunConfig] = None) -> QueryResult:
        """Evaluate one query through the session cache."""
        config = config if config is not None else RunConfig()
        if not isinstance(self.algorithm, _IndexedAlgorithm):
            # Baselines have no index build to share; run them untouched.
            with self._lock:
                self.stats.queries_run += 1
            return self.algorithm.run(self.graph, query, config)
        key = self._key(query, config.constraint)
        with self._lock:
            self.stats.queries_run += 1
            hit = key in self._distances
            if hit:
                self.stats.bfs_cache_hits += 1
        distances = self.distances_to_target(query.target, query.k, config.constraint)
        result = self.algorithm.run(self.graph, query, config, dist_to_t=distances)
        # The index builder flags every injected distance array as a cache
        # hit; only the session knows whether this query actually paid for
        # the reverse BFS (first sight of its target) or skipped it.
        result.stats.bfs_cache_hit = hit
        return result

    def run_external(
        self, source: Hashable, target: Hashable, k: int,
        config: Optional[RunConfig] = None,
    ) -> QueryResult:
        """Evaluate a query given external vertex ids."""
        query = Query.from_external(self.graph, source, target, k)
        return self.run(query, config)


@dataclass
class BatchResult:
    """Outcome of evaluating a workload through :class:`BatchExecutor`."""

    #: Per-query results, in workload order.
    results: List[QueryResult] = field(default_factory=list)
    #: Aggregate session statistics for the batch.
    stats: BatchStats = field(default_factory=BatchStats)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    @property
    def total_paths(self) -> int:
        """Sum of per-query result counts."""
        return sum(result.count for result in self.results)

    @property
    def throughput(self) -> float:
        """Paths per second over the batch wall clock."""
        if self.stats.wall_seconds <= 0.0:
            return float(self.total_paths)
        return self.total_paths / self.stats.wall_seconds


class BatchExecutor:
    """Evaluates a :class:`QueryWorkload` as one unit.

    Queries sharing a ``(target, k, constraint)`` key reuse one reverse-BFS
    distance array through the underlying :class:`QuerySession`.  With
    ``max_workers > 1`` independent queries additionally run on a thread
    pool: the distance cache is warmed up front (sequentially, so each BFS
    runs exactly once) and is read-only afterwards, which keeps the parallel
    phase lock-free.  Results always come back in workload order and are
    identical, query for query, to sequential :meth:`Algorithm.run` calls.
    """

    def __init__(
        self,
        graph: DiGraph,
        *,
        algorithm: Optional[Algorithm] = None,
        max_workers: int = 1,
        max_cached: int = 256,
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self.graph = graph
        self.max_workers = int(max_workers)
        self.session = QuerySession(graph, algorithm=algorithm, max_cached=max_cached)

    @property
    def stats(self) -> BatchStats:
        """Aggregate statistics of everything run through this executor."""
        return self.session.stats

    def run(
        self,
        workload: Sequence[Query],
        config: Optional[RunConfig] = None,
    ) -> BatchResult:
        """Evaluate every query of ``workload`` and return the batch result."""
        config = config if config is not None else RunConfig()
        queries = list(workload)
        # One cache slot per distinct key, so nothing is evicted mid-batch
        # (the warm-once guarantee of the parallel phase depends on it).
        distinct = {self.session._key(query, config.constraint) for query in queries}
        self.session.ensure_capacity(len(distinct))
        started = time.perf_counter()
        if self.max_workers > 1 and len(queries) > 1:
            fresh = set(self.session.prepare(queries, config.constraint))
            with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                results = list(
                    pool.map(lambda query: self.session.run(query, config), queries)
                )
            # Pre-warming makes every pool query look like a cache hit;
            # charge each fresh BFS back to the first query that needed it
            # so hit counts match what a sequential run would report.
            charged: set = set()
            for query, result in zip(queries, results):
                key = self.session._key(query, config.constraint)
                if key in fresh and key not in charged:
                    charged.add(key)
                    result.stats.bfs_cache_hit = False
            self.stats.bfs_cache_hits -= len(charged)
        else:
            results = [self.session.run(query, config) for query in queries]
        self.stats.wall_seconds = time.perf_counter() - started
        # Snapshot: the session keeps accumulating across run() calls, and a
        # returned BatchResult must not change under a later batch.
        return BatchResult(results=results, stats=replace(self.stats))


# --------------------------------------------------------------------- #
# module-level convenience functions (the quickstart API)
# --------------------------------------------------------------------- #
def enumerate_paths(
    graph: DiGraph,
    source: Hashable,
    target: Hashable,
    k: int,
    *,
    external_ids: bool = False,
    constraint: Optional[PathConstraint] = None,
    result_limit: Optional[int] = None,
    time_limit_seconds: Optional[float] = None,
) -> List[Tuple[int, ...]]:
    """Enumerate all hop-constrained s-t paths with PathEnum.

    This is the one-call API used by the examples: it builds the query (from
    external ids when requested), runs the full PathEnum pipeline and returns
    the list of paths (as internal-id tuples, or external ids when
    ``external_ids`` is set).
    """
    engine = PathEnum()
    query = (
        Query.from_external(graph, source, target, k)
        if external_ids
        else Query(int(source), int(target), k)
    )
    config = RunConfig(
        store_paths=True,
        constraint=constraint,
        result_limit=result_limit,
        time_limit_seconds=time_limit_seconds,
    )
    result = engine.run(graph, query, config)
    paths = result.paths or []
    if external_ids:
        return [graph.translate_path(p) for p in paths]
    return paths


def count_paths(
    graph: DiGraph,
    source: Hashable,
    target: Hashable,
    k: int,
    *,
    external_ids: bool = False,
    time_limit_seconds: Optional[float] = None,
) -> int:
    """Count hop-constrained s-t paths without materialising them."""
    engine = PathEnum()
    query = (
        Query.from_external(graph, source, target, k)
        if external_ids
        else Query(int(source), int(target), k)
    )
    config = RunConfig(store_paths=False, time_limit_seconds=time_limit_seconds)
    return engine.run(graph, query, config).count
