"""The PathEnum engine, its fixed-plan variants (Figure 2) and the batch layer.

Three single-query algorithms are defined here:

* :class:`IdxDfs` — always evaluates with the index DFS (Algorithm 4); the
  paper's IDX-DFS.
* :class:`IdxJoin` — always runs the full-fledged optimizer and evaluates
  with the bushy join (Algorithms 5 and 6); the paper's IDX-JOIN.
* :class:`PathEnum` — the complete system: light-weight index, preliminary
  estimation, optional full optimization and cost-based selection between
  the two evaluation strategies.

All three accept the uniform :class:`~repro.core.listener.RunConfig` and can
therefore be driven by the same benchmark harness as the baselines.

On top of them sits the batch execution layer:

* :class:`QuerySession` — evaluates queries one by one against a single
  graph while caching reverse-BFS distance arrays keyed by
  ``(target, k, constraint)``.  The light-weight index of a query whose
  target was already visited is built from the cached distances, skipping
  roughly half of the per-query preprocessing (the reverse BFS of
  Algorithm 3).  The cached distances omit the ``no-intermediate-s``
  restriction, which only *under*-approximates ``v.t`` — the index becomes a
  superset of the per-query one, so the enumerated path sets are identical
  (pruning is a performance device, never a correctness device).
* :class:`BatchExecutor` — evaluates a whole
  :class:`~repro.workloads.queries.QueryWorkload` as a unit through a
  session, optionally fanning independent queries out over a thread pool,
  and reports aggregate :class:`BatchStats` (BFS cache hits, wall clock,
  throughput).
* :class:`ProcessBatchExecutor` — the process-parallel variant: the graph is
  published once into shared memory (:meth:`~repro.graph.digraph.DiGraph.share`),
  the workload is partitioned by target (the distance-cache key) and each
  shard is evaluated in a worker process that attaches the shared graph and
  a shared read-mostly distance cache.  Because a shard holds *every* query
  of its targets, workers additionally grow all forward BFS trees of a
  target group in one multi-source sweep — per-query results stay identical
  to sequential session runs while both halves of the per-query
  preprocessing are amortised.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple

import multiprocessing
import os
import sys

import numpy as np

from repro.core.algorithm import Algorithm, timed_run
from repro.core.constraints import PathConstraint
from repro.core.dfs import run_idx_dfs
from repro.core.index import LightWeightIndex
from repro.core.join import run_idx_join
from repro.core.listener import RunConfig
from repro.core.optimizer import DEFAULT_TAU, Plan, choose_plan
from repro.core.query import Query
from repro.core.result import Phase, QueryResult
from repro.core.reverse import IdxDfsReverse
from repro.graph.digraph import DiGraph
from repro.graph.store import SharedMemoryStore, StoreHandle
from repro.graph.traversal import (
    DEFAULT_SOURCE_CHUNK,
    bfs_distances_bounded,
    multi_source_bfs_distances_bounded,
)

__all__ = [
    "PathEnum",
    "IdxDfs",
    "IdxJoin",
    "QuerySession",
    "BatchExecutor",
    "ProcessBatchExecutor",
    "BatchResult",
    "BatchStats",
    "enumerate_paths",
    "count_paths",
]


class _IndexedAlgorithm(Algorithm):
    """Shared machinery of the three index-based algorithms."""

    #: Plan forcing: ``None`` (cost-based), ``"dfs"`` or ``"join"``.
    _force: Optional[str] = None

    def run(
        self,
        graph: DiGraph,
        query: Query,
        config: Optional[RunConfig] = None,
        *,
        dist_to_t: Optional[np.ndarray] = None,
        dist_from_s: Optional[np.ndarray] = None,
    ) -> QueryResult:
        """Evaluate ``query`` on ``graph``.

        ``dist_to_t`` optionally injects a precomputed reverse-BFS distance
        array (the :class:`QuerySession` cache path); ``dist_from_s`` a
        precomputed forward array (the sharded executor's multi-source
        sweep).  Single-query callers leave both unset.
        """
        config = config if config is not None else RunConfig()
        constraint = config.constraint
        if constraint is not None and not isinstance(constraint, PathConstraint):
            raise TypeError("config.constraint must be a PathConstraint instance")

        def body(collector, deadline, stats) -> None:
            edge_filter = constraint.edge_filter() if constraint is not None else None
            index = LightWeightIndex.build(
                graph,
                query,
                edge_filter=edge_filter,
                deadline=deadline,
                stats=stats,
                dist_to_t=dist_to_t,
                dist_from_s=dist_from_s,
            )
            plan = choose_plan(
                index, tau=config.tau, deadline=deadline, stats=stats, force=self._force
            )
            stats.plan = plan.kind
            # The enumeration phase is recorded in a ``finally`` block so that
            # queries interrupted by the deadline or a result limit still
            # report how long they enumerated (Figure 7 / Figure 17 depend on
            # this for timed-out queries).
            enumeration_started = time.perf_counter()
            if plan.kind == "join":
                cut = plan.cut_position if plan.cut_position is not None else max(1, query.k // 2)
                try:
                    run_idx_join(
                        index,
                        cut,
                        collector,
                        deadline=deadline,
                        stats=stats,
                        constraint=constraint,
                    )
                finally:
                    stats.add_phase(Phase.JOIN, time.perf_counter() - enumeration_started)
            else:
                try:
                    run_idx_dfs(
                        index,
                        collector,
                        deadline=deadline,
                        stats=stats,
                        constraint=constraint,
                    )
                finally:
                    stats.add_phase(
                        Phase.ENUMERATION, time.perf_counter() - enumeration_started
                    )

        return timed_run(self.name, query, config, body)

    # ------------------------------------------------------------------ #
    # convenience entry points accepting external ids
    # ------------------------------------------------------------------ #
    def run_external(
        self,
        graph: DiGraph,
        source: Hashable,
        target: Hashable,
        k: int,
        config: Optional[RunConfig] = None,
    ) -> QueryResult:
        """Evaluate a query given external vertex ids."""
        query = Query.from_external(graph, source, target, k)
        return self.run(graph, query, config)


class IdxDfs(_IndexedAlgorithm):
    """Index-based depth-first search (the paper's IDX-DFS)."""

    name = "IDX-DFS"
    _force = "dfs"


class IdxJoin(_IndexedAlgorithm):
    """Index-based bushy join (the paper's IDX-JOIN)."""

    name = "IDX-JOIN"
    _force = "join"


class PathEnum(_IndexedAlgorithm):
    """The full PathEnum system with cost-based plan selection."""

    name = "PathEnum"
    _force = None

    def __init__(self, *, tau: float = DEFAULT_TAU) -> None:
        self._tau = tau

    def run(
        self,
        graph: DiGraph,
        query: Query,
        config: Optional[RunConfig] = None,
        *,
        dist_to_t: Optional[np.ndarray] = None,
        dist_from_s: Optional[np.ndarray] = None,
    ) -> QueryResult:
        config = config if config is not None else RunConfig()
        if config.tau == DEFAULT_TAU and self._tau != DEFAULT_TAU:
            config = config.replace(tau=self._tau)
        return super().run(
            graph, query, config, dist_to_t=dist_to_t, dist_from_s=dist_from_s
        )

    def explain(self, graph: DiGraph, query: Query, *, tau: Optional[float] = None) -> Plan:
        """Return the plan PathEnum would choose for ``query`` without running it."""
        index = LightWeightIndex.build(graph, query)
        return choose_plan(index, tau=self._tau if tau is None else tau)


#: Algorithms whose ``run`` accepts injected distance arrays and can
#: therefore share the session / batch distance cache.
_DISTANCE_AWARE = (_IndexedAlgorithm, IdxDfsReverse)


# --------------------------------------------------------------------- #
# batch execution
# --------------------------------------------------------------------- #
@dataclass
class BatchStats:
    """Aggregate statistics of a batch / session run."""

    #: Queries evaluated so far.
    queries_run: int = 0
    #: Reverse BFS traversals actually performed (== distance-cache misses).
    reverse_bfs_runs: int = 0
    #: Queries whose index was built from a cached distance array.
    bfs_cache_hits: int = 0
    #: Wall-clock seconds of the last :meth:`BatchExecutor.run` call.
    wall_seconds: float = 0.0

    @property
    def bfs_cache_misses(self) -> int:
        """Distance-cache misses (alias of :attr:`reverse_bfs_runs`)."""
        return self.reverse_bfs_runs

    @property
    def hit_rate(self) -> float:
        """Fraction of queries served from the distance cache."""
        if self.queries_run == 0:
            return 0.0
        return self.bfs_cache_hits / self.queries_run

    def as_row(self) -> Dict[str, object]:
        """Flat dict for the benchmark reporting layer."""
        return {
            "queries": self.queries_run,
            "reverse_bfs_runs": self.reverse_bfs_runs,
            "bfs_cache_hits": self.bfs_cache_hits,
            "hit_rate": round(self.hit_rate, 3),
            "wall_ms": round(self.wall_seconds * 1e3, 3),
        }


#: Cache key of a reverse-BFS distance array: the target vertex, the hop
#: constraint and the identity of the (optional) constraint object whose
#: edge filter shaped the traversal.
_DistanceKey = Tuple[int, int, Optional[int]]


class QuerySession:
    """Evaluates queries on one graph, sharing reverse-BFS distance arrays.

    The session is the unit of distance reuse: all queries submitted through
    :meth:`run` share one cache keyed by ``(target, k, constraint)``.  For
    workloads that hammer a small set of targets (fraud rings around a hub
    account, Figure 13/14-style sweeps) this removes the reverse half of
    every repeated index build.

    Sessions are cheap; create one per logical workload.  ``max_cached``
    bounds the number of retained distance arrays (each is O(|V|)); the
    oldest entry is evicted first.
    """

    def __init__(
        self,
        graph: DiGraph,
        *,
        algorithm: Optional[Algorithm] = None,
        max_cached: int = 256,
    ) -> None:
        self.graph = graph
        self.algorithm = algorithm if algorithm is not None else PathEnum()
        self.stats = BatchStats()
        self._max_cached = max(1, int(max_cached))
        #: Cache entries retain the constraint object alongside the distance
        #: array: keys embed ``id(constraint)``, and holding the reference
        #: prevents a freed constraint's address from being recycled into a
        #: false hit for a different constraint.
        self._distances: Dict[_DistanceKey, Tuple[Optional[PathConstraint], np.ndarray]] = {}
        #: Guards the cache and the counters; the BFS itself and the query
        #: evaluation run outside the lock.
        self._lock = threading.Lock()

    # -- distance cache ------------------------------------------------ #
    def _key(self, query: Query, constraint: Optional[PathConstraint]) -> _DistanceKey:
        return (query.target, query.k, None if constraint is None else id(constraint))

    def distances_to_target(
        self, target: int, k: int, constraint: Optional[PathConstraint] = None
    ) -> np.ndarray:
        """The (cached) bounded reverse-BFS distance array towards ``target``.

        The traversal is *not* restricted around any particular source, so
        one array serves every query that shares ``(target, k, constraint)``;
        see the module docstring for why this relaxation preserves results.
        """
        key = (int(target), int(k), None if constraint is None else id(constraint))
        with self._lock:
            cached = self._distances.get(key)
        if cached is not None and cached[0] is constraint:
            return cached[1]
        edge_filter = constraint.edge_filter() if constraint is not None else None
        distances = bfs_distances_bounded(
            self.graph, int(target), cutoff=int(k), reverse=True, edge_filter=edge_filter
        )
        with self._lock:
            self.stats.reverse_bfs_runs += 1
            while len(self._distances) >= self._max_cached and self._distances:
                self._distances.pop(next(iter(self._distances)))
            self._distances[key] = (constraint, distances)
        return distances

    def ensure_capacity(self, num_keys: int) -> None:
        """Grow the cache bound so ``num_keys`` entries can coexist.

        :class:`BatchExecutor` calls this before warming a workload: the
        warm-once guarantee (every reverse BFS runs exactly once, and the
        parallel phase never mutates the cache) only holds when no entry is
        evicted between :meth:`prepare` and the last query of the batch.
        """
        with self._lock:
            if num_keys > self._max_cached:
                self._max_cached = int(num_keys)

    def prepare(self, queries: Iterable[Query], constraint=None) -> List[_DistanceKey]:
        """Warm the distance cache for ``queries``.

        Returns the keys whose reverse BFS was actually computed (cache
        misses).  Used by :class:`BatchExecutor` before fanning out to
        threads — the cache is read-only during parallel execution, and the
        returned keys let the executor charge each fresh BFS to the first
        query that needed it instead of counting every pool query as a hit.
        """
        fresh: List[_DistanceKey] = []
        for query in queries:
            key = self._key(query, constraint)
            with self._lock:
                known = key in self._distances
            if not known:
                fresh.append(key)
            self.distances_to_target(query.target, query.k, constraint)
        return fresh

    def seed_distances(self, distances: Mapping[Tuple[int, int], np.ndarray]) -> None:
        """Install precomputed unconstrained reverse-BFS arrays.

        The inverse of :meth:`export_distances`: ``distances`` maps
        ``(target, k)`` to the array :meth:`distances_to_target` would have
        computed, and seeded entries are not charged to
        :attr:`BatchStats.reverse_bfs_runs`.  Use it to hand a warmed cache
        to a fresh session — e.g. one built against a shared-memory graph in
        another process, seeded with zero-copy views of a cache pack whose
        BFS cost was already accounted elsewhere.
        """
        with self._lock:
            needed = len(self._distances) + len(distances)
            if needed > self._max_cached:
                self._max_cached = needed
            for (target, k), array in distances.items():
                self._distances[(int(target), int(k), None)] = (None, array)

    def export_distances(self) -> Dict[Tuple[int, int], np.ndarray]:
        """The unconstrained cache entries as ``{(target, k): distances}``.

        Constrained entries are keyed by constraint object identity, which
        is meaningless in another process, so only the shareable
        (constraint-free) part of the cache is exported.
        """
        with self._lock:
            return {
                (key[0], key[1]): value[1]
                for key, value in self._distances.items()
                if key[2] is None
            }

    # -- evaluation ---------------------------------------------------- #
    def run(self, query: Query, config: Optional[RunConfig] = None) -> QueryResult:
        """Evaluate one query through the session cache."""
        config = config if config is not None else RunConfig()
        if not isinstance(self.algorithm, _DISTANCE_AWARE):
            # Baselines have no index build to share; run them untouched.
            with self._lock:
                self.stats.queries_run += 1
            return self.algorithm.run(self.graph, query, config)
        key = self._key(query, config.constraint)
        with self._lock:
            self.stats.queries_run += 1
            hit = key in self._distances
            if hit:
                self.stats.bfs_cache_hits += 1
        distances = self.distances_to_target(query.target, query.k, config.constraint)
        result = self.algorithm.run(self.graph, query, config, dist_to_t=distances)
        # The index builder flags every injected distance array as a cache
        # hit; only the session knows whether this query actually paid for
        # the reverse BFS (first sight of its target) or skipped it.
        result.stats.bfs_cache_hit = hit
        return result

    def run_external(
        self, source: Hashable, target: Hashable, k: int,
        config: Optional[RunConfig] = None,
    ) -> QueryResult:
        """Evaluate a query given external vertex ids."""
        query = Query.from_external(self.graph, source, target, k)
        return self.run(query, config)


@dataclass
class BatchResult:
    """Outcome of evaluating a workload through :class:`BatchExecutor`."""

    #: Per-query results, in workload order.
    results: List[QueryResult] = field(default_factory=list)
    #: Aggregate session statistics for the batch.
    stats: BatchStats = field(default_factory=BatchStats)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    @property
    def total_paths(self) -> int:
        """Sum of per-query result counts."""
        return sum(result.count for result in self.results)

    @property
    def throughput(self) -> float:
        """Paths per second over the batch wall clock."""
        if self.stats.wall_seconds <= 0.0:
            return float(self.total_paths)
        return self.total_paths / self.stats.wall_seconds


class BatchExecutor:
    """Evaluates a :class:`QueryWorkload` as one unit.

    Queries sharing a ``(target, k, constraint)`` key reuse one reverse-BFS
    distance array through the underlying :class:`QuerySession`.  With
    ``max_workers > 1`` independent queries additionally run on a thread
    pool: the distance cache is warmed up front (sequentially, so each BFS
    runs exactly once) and is read-only afterwards, which keeps the parallel
    phase lock-free.  Results always come back in workload order and are
    identical, query for query, to sequential :meth:`Algorithm.run` calls.
    """

    def __init__(
        self,
        graph: DiGraph,
        *,
        algorithm: Optional[Algorithm] = None,
        max_workers: int = 1,
        max_cached: int = 256,
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self.graph = graph
        self.max_workers = int(max_workers)
        self.session = QuerySession(graph, algorithm=algorithm, max_cached=max_cached)

    @property
    def stats(self) -> BatchStats:
        """Aggregate statistics of everything run through this executor."""
        return self.session.stats

    def run(
        self,
        workload: Sequence[Query],
        config: Optional[RunConfig] = None,
    ) -> BatchResult:
        """Evaluate every query of ``workload`` and return the batch result."""
        config = config if config is not None else RunConfig()
        queries = list(workload)
        # One cache slot per distinct key, so nothing is evicted mid-batch
        # (the warm-once guarantee of the parallel phase depends on it).
        distinct = {self.session._key(query, config.constraint) for query in queries}
        self.session.ensure_capacity(len(distinct))
        started = time.perf_counter()
        if self.max_workers > 1 and len(queries) > 1:
            fresh = set(self.session.prepare(queries, config.constraint))
            pool = ThreadPoolExecutor(max_workers=self.max_workers)
            try:
                futures = [
                    pool.submit(self.session.run, query, config) for query in queries
                ]
                # A failing query must not leave queued work running (or the
                # caller blocked on a half-consumed pool): the shutdown in
                # the finally cancels everything outstanding, and the
                # worker's exception re-raises with its original traceback
                # preserved by the futures machinery.
                results = [future.result() for future in futures]
            finally:
                pool.shutdown(wait=True, cancel_futures=True)
            # Pre-warming makes every pool query look like a cache hit;
            # charge each fresh BFS back to the first query that needed it
            # so hit counts match what a sequential run would report.
            charged: set = set()
            for query, result in zip(queries, results):
                key = self.session._key(query, config.constraint)
                if key in fresh and key not in charged:
                    charged.add(key)
                    result.stats.bfs_cache_hit = False
            self.stats.bfs_cache_hits -= len(charged)
        else:
            results = [self.session.run(query, config) for query in queries]
        self.stats.wall_seconds = time.perf_counter() - started
        # Snapshot: the session keeps accumulating across run() calls, and a
        # returned BatchResult must not change under a later batch.
        return BatchResult(results=results, stats=replace(self.stats))


# --------------------------------------------------------------------- #
# process-parallel sharded batch execution
# --------------------------------------------------------------------- #
#: Per-worker-process state installed by :func:`_process_worker_init` and
#: reused across every shard the worker evaluates.  ``ProcessPoolExecutor``
#: runs the initializer exactly once per worker, so the shared graph is
#: attached once per process, not once per shard.
_WORKER_STATE: Dict[str, object] = {}


def _process_worker_init(graph_handle: StoreHandle, algorithm: Algorithm) -> None:
    """Attach the shared graph in a freshly spawned/forked worker."""
    _WORKER_STATE["graph"] = DiGraph.from_handle(graph_handle)
    _WORKER_STATE["algorithm"] = algorithm
    _WORKER_STATE["cache_store"] = None
    _WORKER_STATE["cache_name"] = None
    _WORKER_STATE["distances"] = {}


def _attach_distance_cache(cache_handle: Optional[StoreHandle]) -> Mapping:
    """Map the shared distance cache, reusing the attachment across shards."""
    if cache_handle is None:
        return {}
    if cache_handle.segment_name != _WORKER_STATE["cache_name"]:
        previous = _WORKER_STATE["cache_store"]
        if previous is not None:
            previous.close()
        store = SharedMemoryStore.attach(cache_handle)
        matrix = store.get("distances")
        _WORKER_STATE["cache_store"] = store
        _WORKER_STATE["cache_name"] = cache_handle.segment_name
        _WORKER_STATE["distances"] = {
            (int(target), int(k)): matrix[row]
            for row, (target, k) in enumerate(store.meta["keys"])
        }
    return _WORKER_STATE["distances"]


def _process_worker_run_shard(payload) -> List[Tuple[int, QueryResult]]:
    """Worker entry point: evaluate one target shard against the shared graph."""
    shard, config, cache_handle = payload
    return _run_shard_queries(
        _WORKER_STATE["graph"],
        _WORKER_STATE["algorithm"],
        config,
        shard,
        _attach_distance_cache(cache_handle),
    )


def _run_shard_queries(
    graph: DiGraph,
    algorithm: Algorithm,
    config: RunConfig,
    shard: Sequence[Tuple[int, Tuple[int, int, int]]],
    distances: Mapping[Tuple[int, int], np.ndarray],
) -> List[Tuple[int, QueryResult]]:
    """Evaluate ``shard`` (``(position, (s, t, k))`` tuples) sequentially.

    Queries are grouped by ``(target, k)``: the group shares one reverse-BFS
    array (from the shared cache, by construction warm for every key of the
    shard) and its forward BFS trees are grown together in one multi-source
    sweep.  Injected arrays equal the per-query ones exactly, so results —
    path lists included, in order — are identical to sequential session
    evaluation.  Shared by the worker processes and the ``processes=1``
    inline path, which is what makes the equivalence testable in-process.
    """
    out: List[Tuple[int, QueryResult]] = []
    if not isinstance(algorithm, _DISTANCE_AWARE):
        # Baselines: no index build, no distance reuse — plain evaluation.
        for position, (s, t, k) in shard:
            out.append((position, algorithm.run(graph, Query(s, t, k), config)))
        return out
    groups: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
    for position, (s, t, k) in shard:
        groups.setdefault((t, k), []).append((position, s))
    for (t, k), members in groups.items():
        dist_to_t = distances.get((t, k))
        if dist_to_t is None:
            dist_to_t = bfs_distances_bounded(graph, t, cutoff=k, reverse=True)
        # Sweep (and hold) the forward distance matrix one source chunk at a
        # time: peak extra memory stays at O(chunk * |V|) however many
        # queries share the target, and chunking cannot change any row.
        for start in range(0, len(members), DEFAULT_SOURCE_CHUNK):
            chunk = members[start : start + DEFAULT_SOURCE_CHUNK]
            forward = None
            if len(chunk) > 1:
                forward = multi_source_bfs_distances_bounded(
                    graph, [s for _, s in chunk], cutoff=k, no_expand=t
                )
            for row, (position, s) in enumerate(chunk):
                result = algorithm.run(
                    graph,
                    Query(s, t, k),
                    config,
                    dist_to_t=dist_to_t,
                    dist_from_s=None if forward is None else forward[row],
                )
                out.append((position, result))
    return out


def _default_start_method() -> str:
    """``fork`` on Linux (cheap, copy-on-write), else ``spawn``.

    macOS lists ``fork`` as available but forking a multi-threaded parent
    (the pool's management thread, numpy's Accelerate backend) can deadlock
    in system frameworks — the same reason CPython switched the platform
    default to ``spawn``.
    """
    if sys.platform == "linux" and "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return "spawn"


class ProcessBatchExecutor:
    """Target-sharded batch evaluation across worker processes.

    The GIL caps :class:`BatchExecutor`'s thread pool at one core of useful
    work; this executor fans out to real processes instead:

    1. the workload is partitioned by target with
       :func:`~repro.workloads.queries.partition_by_target` — every query of
       a ``(target, k)`` key lands in the same shard, so no distance array
       is ever computed twice across workers;
    2. the graph is published once into shared memory
       (:meth:`~repro.graph.digraph.DiGraph.share`) and the distinct
       reverse-BFS arrays are warmed in the parent and packed into a second
       read-mostly segment — workers attach both zero-copy;
    3. each worker evaluates its shards sequentially, growing the forward
       BFS trees of a target group in one multi-source sweep.

    Results come back in workload order and are identical, path lists
    included, to evaluating the same workload through a sequential
    :class:`QuerySession`.  Constraints and streaming callbacks hold
    process-local state and are rejected — use :class:`BatchExecutor` for
    those.

    The executor owns two shared-memory segments; call :meth:`close` (or use
    it as a context manager) so they are unlinked deterministically instead
    of at interpreter teardown.
    """

    def __init__(
        self,
        graph: DiGraph,
        *,
        algorithm: Optional[Algorithm] = None,
        processes: Optional[int] = None,
        shards: Optional[int] = None,
        start_method: Optional[str] = None,
        max_cached: int = 1024,
    ) -> None:
        if processes is not None and processes < 1:
            raise ValueError("processes must be at least 1")
        if shards is not None and shards < 1:
            raise ValueError("shards must be at least 1")
        self.graph = graph
        self.algorithm = algorithm if algorithm is not None else PathEnum()
        self.processes = int(processes) if processes else (os.cpu_count() or 1)
        self.shards = None if shards is None else int(shards)
        self.start_method = start_method or _default_start_method()
        self.stats = BatchStats()
        #: Parent-side distance cache — a :class:`QuerySession`, so warm /
        #: evict / charge semantics live in exactly one place.  It persists
        #: across run() calls, letting later batches against the same
        #: targets skip the warm phase entirely.
        self._session = QuerySession(
            graph, algorithm=self.algorithm, max_cached=max_cached
        )
        self._cache_store: Optional[SharedMemoryStore] = None
        self._packed_keys: Tuple[Tuple[int, int], ...] = ()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_workers = 0
        self._graph_published_here = False
        self._closed = False

    # -- lifecycle ----------------------------------------------------- #
    def __enter__(self) -> "ProcessBatchExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Shut the worker pool down and unlink owned shared segments.

        The graph segment is unlinked only when this executor published it;
        the parent's (and any still-attached worker's) mapping stays valid
        until closed — unlinking merely removes the name so nothing leaks
        past process exit.
        """
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        if self._cache_store is not None:
            self._cache_store.close(unlink=True)
            self._cache_store = None
        store = self.graph.store
        if self._graph_published_here and store is not None and store.shareable:
            if store.is_owner:
                store.unlink()

    def __del__(self):  # pragma: no cover - best-effort safety net
        try:
            self.close()
        except Exception:
            pass

    # -- internals ----------------------------------------------------- #
    def _check_config(self, config: RunConfig) -> None:
        if config.constraint is not None:
            raise ValueError(
                "path constraints hold process-local state (their edge "
                "filters are closures) and cannot cross a process boundary; "
                "use BatchExecutor for constrained workloads"
            )
        if config.on_result is not None:
            raise ValueError(
                "streaming callbacks cannot cross a process boundary; "
                "use BatchExecutor for on_result workloads"
            )

    def _warm_distances(self, queries: Sequence[Query]) -> List[Tuple[int, int]]:
        """Run the reverse BFS once per distinct ``(target, k)`` key.

        Delegates to :meth:`QuerySession.prepare` (after growing the cache
        bound, as :class:`BatchExecutor` does) and returns the keys that
        were actually computed, so per-query hit flags can be charged
        exactly as a sequential session would.
        """
        distinct = {self._session._key(query, None) for query in queries}
        self._session.ensure_capacity(len(distinct))
        before = self._session.stats.reverse_bfs_runs
        fresh_keys = self._session.prepare(queries)
        self.stats.reverse_bfs_runs += self._session.stats.reverse_bfs_runs - before
        return [(key[0], key[1]) for key in fresh_keys]

    def _pack_distances(self) -> Optional[StoreHandle]:
        """Publish the parent distance cache as one shared ``(keys, n)`` matrix."""
        distances = self._session.export_distances()
        if not distances:
            return None
        keys = tuple(distances)
        if self._cache_store is not None and keys == self._packed_keys:
            return self._cache_store.handle()
        if self._cache_store is not None:
            self._cache_store.close(unlink=True)
        matrix = np.stack([distances[key] for key in keys])
        self._cache_store = SharedMemoryStore.pack(
            {"distances": matrix}, meta={"keys": list(keys)}
        )
        self._packed_keys = keys
        return self._cache_store.handle()

    def _ensure_pool(self, num_workers: int) -> ProcessPoolExecutor:
        if self._pool is not None and self._pool_workers >= num_workers:
            return self._pool
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        store = self.graph.store
        already_shared = (
            store is not None
            and store.shareable
            and not getattr(store, "is_unlinked", False)
        )
        graph_handle = self.graph.share()
        if not already_shared:
            # Only unlink at close() what this executor itself published.
            self._graph_published_here = True
        self._pool_workers = num_workers
        self._pool = ProcessPoolExecutor(
            max_workers=num_workers,
            mp_context=multiprocessing.get_context(self.start_method),
            initializer=_process_worker_init,
            initargs=(graph_handle, self.algorithm),
        )
        return self._pool

    # -- execution ----------------------------------------------------- #
    def run(
        self,
        workload: Sequence[Query],
        config: Optional[RunConfig] = None,
    ) -> BatchResult:
        """Evaluate every query of ``workload`` and return the batch result."""
        from repro.workloads.queries import partition_by_target

        config = config if config is not None else RunConfig()
        self._check_config(config)
        if self._closed:
            raise RuntimeError("ProcessBatchExecutor is closed")
        queries = list(workload)
        started = time.perf_counter()
        if not queries:
            self.stats.wall_seconds = time.perf_counter() - started
            return BatchResult(results=[], stats=replace(self.stats))

        distance_aware = isinstance(self.algorithm, _DISTANCE_AWARE)
        fresh: List[Tuple[int, int]] = []
        cache_handle: Optional[StoreHandle] = None
        num_shards = self.shards if self.shards is not None else self.processes
        shards = partition_by_target(queries, num_shards)
        plain = [
            [(position, (q.source, q.target, q.k)) for position, q in shard]
            for shard in shards
        ]
        if distance_aware:
            fresh = self._warm_distances(queries)

        if self.processes > 1 and len(shards) > 1:
            if distance_aware:
                cache_handle = self._pack_distances()
            pool = self._ensure_pool(min(self.processes, len(shards)))
            futures = [
                pool.submit(_process_worker_run_shard, (shard, config, cache_handle))
                for shard in plain
            ]
            try:
                shard_results = [future.result() for future in futures]
            except BaseException:
                # Same contract as the thread pool: a failing shard cancels
                # everything outstanding (shutdown does the cancelling) and
                # surfaces the worker's original traceback, chained by the
                # futures machinery.
                self._pool.shutdown(wait=True, cancel_futures=True)
                self._pool = None
                raise
        else:
            inline_distances = self._session.export_distances()
            shard_results = [
                _run_shard_queries(
                    self.graph, self.algorithm, config, shard, inline_distances
                )
                for shard in plain
            ]

        results: List[Optional[QueryResult]] = [None] * len(queries)
        for shard_result in shard_results:
            for position, result in shard_result:
                results[position] = result

        self.stats.queries_run += len(queries)
        if distance_aware:
            # Charge each fresh reverse BFS to the first query that needed
            # it (in workload order), exactly as a sequential session does.
            fresh_set = set(fresh)
            charged: set = set()
            for position, query in enumerate(queries):
                key = (query.target, query.k)
                paid = key in fresh_set and key not in charged
                if paid:
                    charged.add(key)
                results[position].stats.bfs_cache_hit = not paid
            self.stats.bfs_cache_hits += len(queries) - len(charged)
        self.stats.wall_seconds = time.perf_counter() - started
        return BatchResult(results=list(results), stats=replace(self.stats))


# --------------------------------------------------------------------- #
# module-level convenience functions (the quickstart API)
# --------------------------------------------------------------------- #
def enumerate_paths(
    graph: DiGraph,
    source: Hashable,
    target: Hashable,
    k: int,
    *,
    external_ids: bool = False,
    constraint: Optional[PathConstraint] = None,
    result_limit: Optional[int] = None,
    time_limit_seconds: Optional[float] = None,
) -> List[Tuple[int, ...]]:
    """Enumerate all hop-constrained s-t paths with PathEnum.

    This is the one-call API used by the examples: it builds the query (from
    external ids when requested), runs the full PathEnum pipeline and returns
    the list of paths (as internal-id tuples, or external ids when
    ``external_ids`` is set).
    """
    engine = PathEnum()
    query = (
        Query.from_external(graph, source, target, k)
        if external_ids
        else Query(int(source), int(target), k)
    )
    config = RunConfig(
        store_paths=True,
        constraint=constraint,
        result_limit=result_limit,
        time_limit_seconds=time_limit_seconds,
    )
    result = engine.run(graph, query, config)
    paths = result.paths or []
    if external_ids:
        return [graph.translate_path(p) for p in paths]
    return paths


def count_paths(
    graph: DiGraph,
    source: Hashable,
    target: Hashable,
    k: int,
    *,
    external_ids: bool = False,
    time_limit_seconds: Optional[float] = None,
) -> int:
    """Count hop-constrained s-t paths without materialising them."""
    engine = PathEnum()
    query = (
        Query.from_external(graph, source, target, k)
        if external_ids
        else Query(int(source), int(target), k)
    )
    config = RunConfig(store_paths=False, time_limit_seconds=time_limit_seconds)
    return engine.run(graph, query, config).count
