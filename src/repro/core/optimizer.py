"""Two-phase, cost-based plan selection (Section 6.1, Figure 2).

The optimizer first runs the cheap preliminary estimator.  Queries whose
estimated search space is below the threshold ``tau`` go straight to the
index DFS — for them the few milliseconds the full optimizer would take can
dominate the query time.  Heavier queries pay for the full-fledged
estimator, which yields the best cut position and the modelled costs of the
left-deep (DFS) and bushy (join) plans; the cheaper plan wins.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.core.estimator import (
    CardinalityEstimate,
    dfs_cost,
    find_cut_position,
    full_estimate,
    join_cost,
    preliminary_estimate,
)
from repro.core.index import LightWeightIndex
from repro.core.listener import Deadline
from repro.core.result import EnumerationStats, Phase

__all__ = ["Plan", "choose_plan", "DEFAULT_TAU"]

#: Threshold used in the paper's experiments (Section 6.2): queries whose
#: preliminary search-space estimate is below this value skip optimization.
DEFAULT_TAU = 1e5


@dataclass(frozen=True)
class Plan:
    """The evaluation plan chosen for one query."""

    #: ``"dfs"`` for the left-deep plan, ``"join"`` for the bushy plan.
    kind: str
    #: Cut position ``i*`` (only meaningful for join plans).
    cut_position: Optional[int]
    #: Search-space size predicted by the preliminary estimator.
    preliminary: float
    #: Whether the full-fledged estimator ran.
    used_full_estimator: bool
    #: Modelled cost of the left-deep plan (``None`` when not computed).
    dfs_cost: Optional[float] = None
    #: Modelled cost of the bushy plan (``None`` when not computed).
    join_cost: Optional[float] = None
    #: The DP tables of the full estimator (``None`` when it did not run).
    estimate: Optional[CardinalityEstimate] = None

    @property
    def is_join(self) -> bool:
        """``True`` when the bushy join plan was selected."""
        return self.kind == "join"


def choose_plan(
    index: LightWeightIndex,
    *,
    tau: float = DEFAULT_TAU,
    deadline: Optional[Deadline] = None,
    stats: Optional[EnumerationStats] = None,
    force: Optional[str] = None,
) -> Plan:
    """Select the evaluation plan for the indexed query.

    ``force`` can pin the decision to ``"dfs"`` or ``"join"`` — that is how
    the standalone IDX-DFS and IDX-JOIN algorithms of the evaluation are
    expressed — while still recording the estimator outputs in ``stats``.
    """
    # An empty index (t unreachable within k) implies an empty partition set
    # and therefore a zero estimate; skip both estimators outright.  Forced
    # join plans keep the full path so their stats stay comparable.
    if force != "join" and index.is_empty:
        if stats is not None:
            stats.preliminary_estimate = 0.0
            stats.add_phase(Phase.PRELIMINARY, 0.0)
        return Plan(kind="dfs", cut_position=None, preliminary=0.0, used_full_estimator=False)

    started = time.perf_counter()
    preliminary = preliminary_estimate(index)
    preliminary_seconds = time.perf_counter() - started
    if stats is not None:
        stats.preliminary_estimate = preliminary
        stats.add_phase(Phase.PRELIMINARY, preliminary_seconds)

    if force == "dfs":
        return Plan(kind="dfs", cut_position=None, preliminary=preliminary, used_full_estimator=False)

    needs_full = force == "join" or preliminary > tau
    if not needs_full:
        return Plan(kind="dfs", cut_position=None, preliminary=preliminary, used_full_estimator=False)

    optimization_started = time.perf_counter()
    estimate = full_estimate(index, deadline=deadline)
    cut = find_cut_position(estimate)
    cost_dfs = dfs_cost(estimate)
    cost_join = join_cost(estimate, cut)
    optimization_seconds = time.perf_counter() - optimization_started
    if stats is not None:
        stats.full_estimate = float(estimate.walk_count)
        stats.add_phase(Phase.OPTIMIZATION, optimization_seconds)

    if force == "join":
        kind = "join"
    else:
        kind = "dfs" if cost_dfs < cost_join else "join"
    return Plan(
        kind=kind,
        cut_position=cut if kind == "join" else cut,
        preliminary=preliminary,
        used_full_estimator=True,
        dfs_cost=cost_dfs,
        join_cost=cost_join,
        estimate=estimate,
    )
