"""HcPE query objects.

A query ``q(s, t, k)`` asks for every simple path from ``s`` to ``t`` whose
length (number of edges) is at most ``k``.  The paper assumes ``k >= 2`` and
``s != t``; :class:`Query` enforces both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.errors import InvalidQueryError
from repro.graph.digraph import DiGraph

__all__ = ["Query", "MIN_HOP_CONSTRAINT"]

#: The paper's problem statement assumes a hop constraint of at least two.
MIN_HOP_CONSTRAINT = 2


@dataclass(frozen=True)
class Query:
    """A hop-constrained s-t path enumeration query ``q(s, t, k)``.

    ``source`` and ``target`` are internal vertex ids; use
    :meth:`Query.from_external` to construct a query from external ids.
    """

    source: int
    target: int
    k: int

    def __post_init__(self) -> None:
        if self.source == self.target:
            raise InvalidQueryError("source and target must be distinct vertices")
        if self.k < MIN_HOP_CONSTRAINT:
            raise InvalidQueryError(
                f"hop constraint must be at least {MIN_HOP_CONSTRAINT}, got {self.k}"
            )

    def validate(self, graph: DiGraph) -> None:
        """Check that both endpoints exist in ``graph``."""
        if not graph.has_vertex(self.source):
            raise InvalidQueryError(f"source vertex {self.source} is not in the graph")
        if not graph.has_vertex(self.target):
            raise InvalidQueryError(f"target vertex {self.target} is not in the graph")

    @classmethod
    def from_external(
        cls, graph: DiGraph, source: Hashable, target: Hashable, k: int
    ) -> "Query":
        """Build a query from external vertex ids using the graph's mapping."""
        return cls(graph.to_internal(source), graph.to_internal(target), k)

    def with_k(self, k: int) -> "Query":
        """Return a copy of this query with a different hop constraint."""
        return Query(self.source, self.target, k)

    def __str__(self) -> str:
        return f"q({self.source}, {self.target}, {self.k})"
