"""Reverse-direction enumeration on the light-weight index.

Section 7.5 of the paper notes that its optimizer only searches left-deep
plans that extend partial results *from s towards t*, and that the optimal
plan can fall outside that space.  This module adds the mirror plan — a
left-deep enumeration that grows partial results *from t towards s* using
the ``I_s`` lookup of the index — as a standalone algorithm
(:class:`IdxDfsReverse`).  On queries whose branching is much denser around
``s`` than around ``t`` the reverse direction explores fewer partial
results, which is exactly the asymmetry the forward plan cannot exploit.

The reverse search mirrors Algorithm 4:

* the partial result is a *suffix* ``(v, ..., t)`` of the final path;
* extending it prepends an in-neighbour ``u`` of its first vertex with
  ``S(s, u | G - {t}) <= k - L(M) - 1``, obtained in O(1) from
  ``I_s(v, b)``;
* a result is emitted when the prepended vertex is ``s``.

Correctness follows the same argument as Proposition C.1 with the roles of
``s`` and ``t`` swapped.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.core.algorithm import Algorithm, timed_run
from repro.core.index import LightWeightIndex
from repro.core.listener import Deadline, ResultCollector, RunConfig
from repro.core.query import Query
from repro.core.result import EnumerationStats, Phase, QueryResult
from repro.graph.digraph import DiGraph

__all__ = ["run_idx_dfs_reverse", "IdxDfsReverse"]


def run_idx_dfs_reverse(
    index: LightWeightIndex,
    collector: ResultCollector,
    *,
    deadline: Optional[Deadline] = None,
    stats: Optional[EnumerationStats] = None,
) -> int:
    """Enumerate all hop-constrained s-t paths by a backwards DFS on ``index``.

    Returns the number of results emitted.  Constraint extensions are not
    supported in the reverse direction (their state is defined left to
    right); the engine keeps using the forward enumerators for constrained
    queries.
    """
    stats = stats if stats is not None else EnumerationStats()
    query = index.query
    s, t, k = query.source, query.target, query.k
    if index.is_empty:
        return 0

    suffix = [t]
    on_path = {t}
    emitted = _search_backwards(index, s, k, suffix, on_path, collector, deadline, stats)
    stats.results_emitted += emitted
    return emitted


def _search_backwards(
    index: LightWeightIndex,
    s: int,
    k: int,
    suffix: list,
    on_path: set,
    collector: ResultCollector,
    deadline: Optional[Deadline],
    stats: EnumerationStats,
) -> int:
    """Recursive backwards Search; returns the number of results in this subtree."""
    if deadline is not None:
        deadline.check()
    first = suffix[0]
    budget = k - (len(suffix) - 1) - 1
    candidates = index.in_neighbors_within(first, budget)
    stats.edges_accessed += len(candidates)
    found = 0
    for u in candidates:
        if u == s:
            collector.emit([s, *suffix])
            found += 1
            continue
        if u in on_path:
            continue
        stats.partial_results_generated += 1
        suffix.insert(0, u)
        on_path.add(u)
        try:
            sub_found = _search_backwards(
                index, s, k, suffix, on_path, collector, deadline, stats
            )
        finally:
            suffix.pop(0)
            on_path.discard(u)
        if sub_found == 0:
            stats.invalid_partial_results += 1
        found += sub_found
    return found


class IdxDfsReverse(Algorithm):
    """Index DFS that grows partial results from ``t`` towards ``s``.

    An extension beyond the paper's plan space (its Section 7.5 future-work
    discussion); included for plan-space experiments and as an additional
    cross-check of the index's ``I_s`` lookup.
    """

    name = "IDX-DFS-REV"

    def run(
        self,
        graph: DiGraph,
        query: Query,
        config: Optional[RunConfig] = None,
        *,
        dist_to_t: Optional[np.ndarray] = None,
        dist_from_s: Optional[np.ndarray] = None,
        index: Optional[LightWeightIndex] = None,
    ) -> QueryResult:
        """Evaluate ``query`` backwards.

        ``dist_to_t`` / ``dist_from_s`` optionally inject precomputed
        distance arrays, and ``index`` a fully prebuilt light-weight index,
        mirroring the forward algorithms — this is what lets a
        :class:`~repro.core.engine.QuerySession` (and therefore the batch
        executors, including the sharded group-fused build path) drive the
        reverse plan through the same shared distance cache.
        """
        config = config if config is not None else RunConfig()
        if config.constraint is not None:
            raise ValueError(
                "IDX-DFS-REV does not support path constraints; use IDX-DFS or PathEnum"
            )
        query.validate(graph)
        prebuilt = index

        def body(collector, deadline, stats) -> None:
            if prebuilt is not None:
                index = prebuilt
                index.record_stats(stats)
            else:
                index = LightWeightIndex.build(
                    graph,
                    query,
                    deadline=deadline,
                    stats=stats,
                    dist_to_t=dist_to_t,
                    dist_from_s=dist_from_s,
                )
            enumeration_started = time.perf_counter()
            try:
                run_idx_dfs_reverse(index, collector, deadline=deadline, stats=stats)
            finally:
                stats.add_phase(Phase.ENUMERATION, time.perf_counter() - enumeration_started)
            stats.plan = "dfs-reverse"

        return timed_run(self.name, query, config, body)
